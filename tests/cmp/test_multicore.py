"""Tests for the shared-LLC CMP and multi-threaded offloads."""

import pytest

from repro.cmp import ChipMultiprocessor, run_multicore_offload
from repro.config import DEFAULT_CONFIG
from repro.errors import ConfigError, WidxFault
from tests.conftest import build_direct_index, materialized_probe_column


@pytest.fixture
def workload(space):
    index, keys, truth = build_direct_index(space, num_keys=30_000,
                                            nodes_per_bucket=2.0)
    column = materialized_probe_column(space, keys, count=800)
    return index, column


class TestChipMultiprocessor:
    def test_cores_share_llc_and_dram(self):
        cmp_system = ChipMultiprocessor(DEFAULT_CONFIG, 4)
        assert len(cmp_system.cores) == 4
        for core in cmp_system.cores:
            assert core.llc is cmp_system.shared_llc
            assert core.dram is cmp_system.shared_dram

    def test_l1_and_tlb_are_private(self):
        cmp_system = ChipMultiprocessor(DEFAULT_CONFIG, 2)
        a, b = cmp_system.cores
        assert a.l1d is not b.l1d
        assert a.tlb is not b.tlb

    def test_default_core_count_from_table2(self):
        assert ChipMultiprocessor(DEFAULT_CONFIG).num_cores == 4

    def test_core_count_validated(self):
        with pytest.raises(ConfigError):
            ChipMultiprocessor(DEFAULT_CONFIG, 0)

    def test_one_core_fill_is_visible_to_another(self):
        cmp_system = ChipMultiprocessor(DEFAULT_CONFIG, 2)
        addr = 0x1_0000
        first = cmp_system.core(0).load(addr, 0.0)
        assert first.level == "DRAM"
        # Core 1 misses its private L1 but hits the now-shared LLC line.
        second = cmp_system.core(1).load(addr, first.complete + 10)
        assert second.level == "LLC"


class TestMulticoreOffload:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_every_thread_count_validates(self, workload, threads):
        index, column = workload
        result = run_multicore_offload(index, column, threads=threads,
                                       probes=800)
        assert result.validated is True
        assert result.matches == 800
        assert len(result.per_core) == threads

    def test_threads_increase_aggregate_throughput(self, workload):
        index, column = workload
        single = run_multicore_offload(index, column, threads=1, probes=800)
        quad = run_multicore_offload(index, column, threads=4, probes=800)
        assert quad.cycles_per_tuple < 0.5 * single.cycles_per_tuple

    def test_scaling_is_sublinear_under_bandwidth_contention(self, space):
        """Four cores x four walkers approach the two controllers' limit,
        so 4-thread scaling lands below 4x (the Figure 4c wall, end to
        end)."""
        index, keys, truth = build_direct_index(space, num_keys=400_000,
                                                nodes_per_bucket=2.0)
        column = materialized_probe_column(space, keys, count=1600)
        single = run_multicore_offload(index, column, threads=1,
                                       probes=1600)
        quad = run_multicore_offload(index, column, threads=4, probes=1600)
        speedup = single.cycles_per_tuple / quad.cycles_per_tuple
        assert 2.0 < speedup < 3.9
        assert quad.dram_utilization > 2.5 * single.dram_utilization

    def test_probe_chunks_cover_stream_exactly(self, workload):
        index, column = workload
        result = run_multicore_offload(index, column, threads=3, probes=799)
        assert sum(r.tuples for r in result.per_core.values()) == 799

    def test_requires_enough_probes(self, workload):
        index, column = workload
        with pytest.raises(WidxFault):
            run_multicore_offload(index, column, threads=4, probes=2)

    def test_only_shared_mode_supported(self, workload):
        index, column = workload
        config = DEFAULT_CONFIG.with_widx(mode="coupled")
        with pytest.raises(WidxFault, match="shared"):
            run_multicore_offload(index, column, config=config, probes=100)


class TestMulticoreBaseline:
    def test_baseline_runs_and_scales(self, workload):
        from repro.cmp import run_multicore_baseline
        index, column = workload
        single = run_multicore_baseline(index, column, threads=1,
                                        probes=800)
        quad = run_multicore_baseline(index, column, threads=4, probes=800)
        assert single.tuples == quad.tuples == 800
        assert quad.cycles_per_tuple < 0.4 * single.cycles_per_tuple
        assert len(quad.per_core_cycles) == 4

    def test_inorder_chip_slower_than_ooo_chip(self, workload):
        from repro.cmp import run_multicore_baseline
        index, column = workload
        ooo = run_multicore_baseline(index, column, threads=2, probes=400,
                                     core="ooo")
        ino = run_multicore_baseline(index, column, threads=2, probes=400,
                                     core="inorder")
        assert ino.cycles_per_tuple > ooo.cycles_per_tuple

    def test_unknown_core_rejected(self, workload):
        from repro.cmp import run_multicore_baseline
        from repro.errors import WidxFault
        index, column = workload
        with pytest.raises(WidxFault):
            run_multicore_baseline(index, column, threads=2, probes=100,
                                   core="vliw")

    def test_widx_chip_beats_baseline_chip(self, workload):
        from repro.cmp import run_multicore_baseline, run_multicore_offload
        index, column = workload
        baseline = run_multicore_baseline(index, column, threads=2,
                                          probes=600)
        accelerated = run_multicore_offload(index, column, threads=2,
                                            probes=600)
        assert accelerated.cycles_per_tuple < baseline.cycles_per_tuple
