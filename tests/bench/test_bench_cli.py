"""Smoke tests for the micro-benchmark CLI (``python -m repro.bench``).

The full suite (all benchmarks, floor enforcement) runs in CI's bench
job; these cover the command paths quickly with one benchmark and one
repeat.
"""

import json

import pytest

from repro.bench import SCHEMA, run_benchmarks
from repro.bench.__main__ import main


def test_table_run_prints_every_selected_benchmark(capsys):
    code = main(["--only", "engine_dispatch", "--repeats", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "engine_dispatch" in out
    assert "speedup" in out


def test_check_passes_when_fingerprints_match(tmp_path, capsys):
    """The CI guard's happy path, made wall-clock-independent: the
    baseline carries this run's own (machine-independent) fingerprint
    and a speedup low enough that timing noise cannot trip the
    regression check — only a fingerprint mismatch could fail."""
    result = run_benchmarks(repeats=1, only=["engine_dispatch"])[0]
    entry = result.to_dict()
    entry["speedup"] = 0.01
    baseline = {"schema": SCHEMA, "repeats": 1,
                "benchmarks": {result.name: entry}}
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    code = main(["--only", "engine_dispatch", "--repeats", "1",
                 "--check", str(path)])
    assert code == 0
    assert "within tolerance" in capsys.readouterr().out


def test_committed_baseline_fingerprints_match(capsys):
    """The committed BENCH_sim.json's simulated-result fingerprints are
    machine-independent and must match a fresh run exactly.  (Speedups
    are wall-clock and only checked in the CI bench job.)"""
    result = run_benchmarks(repeats=1, only=["engine_dispatch"])[0]
    baseline = json.load(open("BENCH_sim.json"))
    assert baseline["schema"] == SCHEMA
    entry = baseline["benchmarks"][result.name]
    assert entry["fingerprint"] == result.fingerprint


def test_committed_bulk_sweep_fingerprint_matches(capsys):
    """Same contract for the bulk-mode serve sweep: the benchmark only
    reports a speedup after proving the array replay bit-identical to
    the serving DES, and its fingerprint must match the baseline."""
    result = run_benchmarks(repeats=1, only=["bulk_serve_sweep"])[0]
    baseline = json.load(open("BENCH_sim.json"))
    entry = baseline["benchmarks"][result.name]
    assert entry["fingerprint"] == result.fingerprint


def test_check_fails_on_fingerprint_drift(tmp_path, capsys):
    result = run_benchmarks(repeats=1, only=["engine_dispatch"])[0]
    entry = result.to_dict()
    entry["fingerprint"] = "0" * len(entry["fingerprint"])
    baseline = {"schema": SCHEMA, "repeats": 1,
                "benchmarks": {result.name: entry}}
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    code = main(["--only", "engine_dispatch", "--repeats", "1",
                 "--check", str(path)])
    assert code == 1
    assert "fingerprint changed" in capsys.readouterr().err


def test_check_rejects_wrong_schema(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "bogus/9", "benchmarks": {}}))
    code = main(["--only", "engine_dispatch", "--repeats", "1",
                 "--check", str(path)])
    assert code == 1
    assert "schema" in capsys.readouterr().err


def test_output_and_check_are_mutually_exclusive(tmp_path):
    with pytest.raises(SystemExit):
        main(["--output", "a.json", "--check", "b.json"])
    with pytest.raises(SystemExit):
        main(["--repeats", "0"])
