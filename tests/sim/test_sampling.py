"""Tests for the SMARTS-style sampling helpers."""

import pytest

from repro.sim.sampling import BatchStats, confidence_interval


def test_confidence_interval_of_constant_series():
    mean, half = confidence_interval([5.0] * 10)
    assert mean == 5.0
    assert half == 0.0


def test_confidence_interval_single_sample_is_unbounded():
    mean, half = confidence_interval([3.0])
    assert mean == 3.0
    assert half == float("inf")


def test_confidence_interval_known_case():
    # Two samples, variance 2, t(df=1, 97.5%) = 12.706.
    mean, half = confidence_interval([1.0, 3.0])
    assert mean == 2.0
    assert half == pytest.approx(12.706 * (2 / 2) ** 0.5, rel=1e-3)


def test_confidence_interval_tightens_with_more_samples():
    wide = confidence_interval([1.0, 3.0] * 2)[1]
    narrow = confidence_interval([1.0, 3.0] * 50)[1]
    assert narrow < wide


def test_confidence_interval_rejects_empty():
    with pytest.raises(ValueError):
        confidence_interval([])


def test_batch_stats_mean():
    stats = BatchStats(batch_size=4)
    stats.extend([1, 2, 3, 4, 5, 6, 7, 8])
    assert stats.mean == 4.5
    assert stats.count == 8


def test_batch_stats_interval_uses_batch_means():
    stats = BatchStats(batch_size=2)
    stats.extend([1, 3, 1, 3, 1, 3])   # every batch mean is exactly 2
    mean, half = stats.interval()
    assert mean == pytest.approx(2.0)
    assert half == pytest.approx(0.0)


def test_batch_stats_partial_batch_included():
    stats = BatchStats(batch_size=4)
    stats.extend([2.0] * 9)  # two full batches + one partial
    mean, half = stats.interval()
    assert mean == pytest.approx(2.0)
    assert half == pytest.approx(0.0)


def test_batch_stats_relative_error_small_for_steady_stream():
    stats = BatchStats(batch_size=16)
    stats.extend([10.0 + (i % 3) for i in range(640)])
    # The paper reports <5% error at 95% confidence; a steady stream
    # should be far inside that.
    assert stats.relative_error() < 0.05


def test_batch_stats_requires_samples():
    stats = BatchStats()
    with pytest.raises(ValueError):
        _ = stats.mean


def test_batch_stats_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        BatchStats(batch_size=0)
