"""Tests for the simulation progress watchdog and hang diagnostics."""

import pytest

from repro.errors import SimulationHang
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import OccupancyPool
from repro.sim.watchdog import Watchdog, WatchdogLimits


def test_deadlock_detected_with_process_names():
    engine = Engine()
    never = Event()

    def stuck():
        yield never

    engine.process(stuck(), "stuck-walker")
    with pytest.raises(SimulationHang) as excinfo:
        engine.run()
    message = str(excinfo.value)
    assert "deadlock" in message
    assert "stuck-walker" in message          # diagnostics name the process
    assert excinfo.value.diagnostics


def test_deadlock_detection_can_be_disabled():
    engine = Engine(detect_deadlock=False)

    def stuck():
        yield Event()

    engine.process(stuck(), "stuck")
    engine.run()  # finishes quietly; sanitizer would catch the live process


def test_livelock_raises_after_stall_threshold():
    engine = Engine()
    Watchdog(WatchdogLimits(max_stall_events=50)).attach(engine)

    def spinner():
        while True:
            yield 0  # clock never advances

    engine.process(spinner(), "spinner")
    with pytest.raises(SimulationHang) as excinfo:
        engine.run()
    assert "livelock" in str(excinfo.value)
    assert "spinner" in str(excinfo.value)


def test_livelock_counter_resets_when_clock_advances():
    engine = Engine()
    Watchdog(WatchdogLimits(max_stall_events=10)).attach(engine)

    def maker():
        # 8 zero-delay events, then a real advance, repeatedly: each burst
        # stays under the stall threshold.
        for _round in range(20):
            for _ in range(8):
                yield 0
            yield 1

    engine.process(maker(), "maker")
    assert engine.run() == 20.0


def test_cycle_budget_enforced():
    engine = Engine()
    Watchdog(WatchdogLimits(max_cycles=100.0)).attach(engine)

    def crawler():
        while True:
            yield 10

    engine.process(crawler(), "crawler")
    with pytest.raises(SimulationHang) as excinfo:
        engine.run()
    assert "cycle budget" in str(excinfo.value)
    assert engine.now <= 120.0


def test_wall_clock_budget_enforced():
    engine = Engine()
    Watchdog(WatchdogLimits(max_wall_seconds=0.02,
                            wall_check_interval=1)).attach(engine)

    def endless():
        while True:
            yield 1

    engine.process(endless(), "endless")
    with pytest.raises(SimulationHang) as excinfo:
        engine.run()
    assert "wall-clock budget" in str(excinfo.value)


def test_diagnostics_include_monitored_resources():
    engine = Engine()
    pool = OccupancyPool(capacity=4)
    pool.acquire(0.0)
    engine.monitor_resource("L1-D MSHRs", pool)
    never = Event()

    def stuck():
        yield never

    engine.process(stuck(), "walker0")
    with pytest.raises(SimulationHang) as excinfo:
        engine.run()
    assert "L1-D MSHRs" in str(excinfo.value)


def test_monitor_resource_uniquifies_names():
    engine = Engine()
    engine.monitor_resource("q", object())
    engine.monitor_resource("q", object())
    assert set(engine.monitored_resources) == {"q", "q#2"}


def test_limits_validate():
    with pytest.raises(ValueError):
        WatchdogLimits(max_stall_events=0)
    with pytest.raises(ValueError):
        WatchdogLimits(max_cycles=0)
    with pytest.raises(ValueError):
        WatchdogLimits(max_wall_seconds=-1)
    with pytest.raises(ValueError):
        WatchdogLimits(wall_check_interval=0)


def test_clean_run_unbothered_by_watchdog():
    engine = Engine()
    Watchdog().attach(engine)
    log = []

    def proc():
        yield 5
        log.append(engine.now)

    engine.process(proc())
    engine.run()
    assert log == [5.0]
