"""Differential tests: bulk-mode replay vs the discrete-event reference.

The bulk path's whole contract is *bit identity* — not approximation —
so every test here compares complete results: all CoreTimingResult
fields, the latency distribution snapshot, and the full stats-registry
dict (every counter, occupancy sample and engine event count).
"""

import numpy as np
import pytest

from repro.cpu.timing import measure_indexing
from repro.db.column import Column
from repro.db.datagen import make_rng, probe_keys, unique_keys
from repro.db.hashfn import ROBUST_HASH_32, ROBUST_HASH_64
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT, MONETDB_LAYOUT
from repro.db.types import DataType
from repro.mem.bulk import bulk_hash
from repro.mem.layout import AddressSpace
from repro.sim.bulk import bulk_measure_indexing


def build_workload(layout, num_keys=4_000, num_probes=900):
    space = AddressSpace()
    keys = unique_keys(num_keys, 4, make_rng(11))
    base = None
    if layout.indirect:
        base = Column("base", DataType.for_key_bytes(4), np.asarray(keys))
        base.materialize(space)
    index = HashIndex(space, layout, choose_num_buckets(num_keys, 1.0),
                      ROBUST_HASH_32, capacity=num_keys, key_column=base)
    for row, key in enumerate(keys):
        index.insert(int(key), row if layout.indirect else row + 1)
    probes = probe_keys(np.asarray(keys), num_probes, 1.0, 4, make_rng(13))
    column = Column("probes", DataType.for_key_bytes(4), probes)
    column.materialize(space)
    return index, column


@pytest.fixture(scope="module")
def kernel_workload():
    return build_workload(KERNEL_LAYOUT)


@pytest.fixture(scope="module")
def monetdb_workload():
    return build_workload(MONETDB_LAYOUT)


def assert_identical(des, bulk):
    for name in des.__dataclass_fields__:
        if name == "stats":
            continue
        assert getattr(des, name) == getattr(bulk, name), name
    assert des.stats == bulk.stats


# ---------------------------------------------------------------------------
# differential twin: every layout x core combination, full-state equality
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("core", ["ooo", "inorder"])
def test_kernel_layout_bit_identical(kernel_workload, core):
    index, column = kernel_workload
    des = measure_indexing(index, column, core=core, warmup_probes=256)
    bulk = bulk_measure_indexing(index, column, core=core, warmup_probes=256)
    assert_identical(des, bulk)


@pytest.mark.parametrize("core", ["ooo", "inorder"])
def test_indirect_layout_bit_identical(monetdb_workload, core):
    index, column = monetdb_workload
    des = measure_indexing(index, column, core=core, warmup_probes=256)
    bulk = bulk_measure_indexing(index, column, core=core, warmup_probes=256)
    assert_identical(des, bulk)


def test_explicit_row_subset_matches(kernel_workload):
    index, column = kernel_workload
    rows = list(range(0, 800, 2))
    des = measure_indexing(index, column, core="ooo", warmup_probes=64,
                           rows=rows)
    bulk = bulk_measure_indexing(index, column, core="ooo", warmup_probes=64,
                                 rows=rows)
    assert_identical(des, bulk)


def test_cold_index_matches(kernel_workload):
    index, column = kernel_workload
    des = measure_indexing(index, column, core="ooo", warmup_probes=128,
                           measure_probes=300, warm_index=False)
    bulk = bulk_measure_indexing(index, column, core="ooo", warmup_probes=128,
                                 measure_probes=300, warm_index=False)
    assert_identical(des, bulk)


def test_measure_indexing_bulk_flag_dispatches(kernel_workload):
    index, column = kernel_workload
    des = measure_indexing(index, column, core="ooo", warmup_probes=256)
    via_flag = measure_indexing(index, column, core="ooo", warmup_probes=256,
                                bulk=True)
    assert_identical(des, via_flag)


def test_bulk_rejects_unknown_core(kernel_workload):
    index, column = kernel_workload
    with pytest.raises(ValueError):
        bulk_measure_indexing(index, column, core="vliw")


# ---------------------------------------------------------------------------
# bulk_hash: vectorized hashing is bit-identical to the scalar spec
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", [ROBUST_HASH_32, ROBUST_HASH_64],
                         ids=lambda s: s.name)
def test_bulk_hash_matches_scalar_spec(spec):
    rng = make_rng(5)
    keys = rng.integers(0, 2 ** 64, size=2_000, dtype=np.uint64)
    hashed = bulk_hash(spec, keys)
    assert hashed.dtype == np.uint64
    reference = [spec(int(key)) for key in keys]
    assert hashed.tolist() == reference


def test_bulk_hash_edge_keys():
    edges = np.array([0, 1, 2 ** 32 - 1, 2 ** 63, 2 ** 64 - 1],
                     dtype=np.uint64)
    assert bulk_hash(ROBUST_HASH_32, edges).tolist() == [
        ROBUST_HASH_32(int(key)) for key in edges]
