"""Differential tests: optimized Engine vs the naive ReferenceEngine.

Identical seeded random process graphs — a mix of delays, same-cycle
event wakeups, event waits and injected failures — run on both engines,
and every externally observable artifact must match event-for-event:
the resume trace (who ran, at what simulated time, in what order), the
final clock, the dispatch counter, and failure attribution.  The
reference engine dispatches by a literal min-scan over a plain list, so
any heap/batch/pool bug in the optimized engine shows up as a trace
divergence here.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationHang
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.reference import ReferenceEngine

SEEDS = [3, 17, 29, 101, 4242]


def run_graph(engine_cls, seed, workers=8, steps=25, failing=None):
    """One seeded random process graph; returns (trace, now, dispatched).

    Workers randomly sleep, park on fresh events, or wake other workers'
    parked events in the same cycle (exercising the optimized engine's
    same-cycle batch).  A drainer keeps firing parked events until every
    worker has finished, so no graph deadlocks by construction.
    """
    engine = engine_cls()
    trace = []
    parked = []          # events workers are currently waiting on
    live = [workers]

    def worker(name, worker_seed):
        rng = random.Random(worker_seed)
        try:
            for step in range(steps):
                trace.append(("step", name, step, engine.now))
                if failing == name and step == steps // 2:
                    raise RuntimeError(f"injected fault in {name}")
                choice = rng.random()
                if choice < 0.45:
                    yield rng.choice((0.0, 0.25, 1.0, 1.0, 2.5))
                elif choice < 0.70 and parked:
                    # Same-cycle wakeup of another worker.
                    event = parked.pop(rng.randrange(len(parked)))
                    event.succeed((name, step))
                    yield 0.0
                else:
                    event = Event()
                    parked.append(event)
                    value = yield event
                    trace.append(("woke", name, engine.now, value))
        finally:
            live[0] -= 1
            trace.append(("done", name, engine.now))

    def drainer():
        while live[0] > 0:
            yield 1.0
            while parked:
                parked.pop().succeed(("drainer", None))

    for index in range(workers):
        name = f"w{index}"
        engine.process(worker(name, seed * 1000 + index), name=name)
    engine.process(drainer(), name="drainer")
    engine.run()
    return trace, engine.now, engine.dispatched.value


@pytest.mark.parametrize("seed", SEEDS)
def test_traces_and_stats_identical(seed):
    optimized = run_graph(Engine, seed)
    reference = run_graph(ReferenceEngine, seed)
    assert optimized[0] == reference[0], "resume traces diverged"
    assert optimized[1] == reference[1], "final clocks diverged"
    assert optimized[2] == reference[2], "dispatch counts diverged"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_failure_attribution_identical(seed):
    outcomes = []
    for engine_cls in (Engine, ReferenceEngine):
        with pytest.raises(RuntimeError) as excinfo:
            run_graph(engine_cls, seed, failing="w3")
        outcomes.append((str(excinfo.value),
                         getattr(excinfo.value, "__notes__", None)))
    assert outcomes[0] == outcomes[1]
    assert "w3" in str(outcomes[0])


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("until", [5.0, 12.5, 20.0])
def test_bounded_run_reaches_identical_state(seed, until):
    """Stopping at ``until`` then resuming matches an unbounded run."""
    states = []
    for engine_cls in (Engine, ReferenceEngine):
        engine = engine_cls()
        trace = []

        def ticker(name, ticker_seed):
            rng = random.Random(ticker_seed)
            for step in range(30):
                trace.append((name, step, engine.now))
                yield rng.choice((0.5, 1.0, 1.0, 2.0))

        for index in range(4):
            engine.process(ticker(f"t{index}", seed * 100 + index),
                           name=f"t{index}")
        paused_at = engine.run(until=until)
        prefix = list(trace)
        pending = engine.pending_events
        engine.run()
        states.append((paused_at, prefix, pending, engine.now, trace,
                       engine.dispatched.value))
    assert states[0] == states[1]


def test_deadlock_reported_identically():
    messages = []
    for engine_cls in (Engine, ReferenceEngine):
        engine = engine_cls()

        def stuck():
            yield Event()   # nobody will ever fire this

        engine.process(stuck(), name="stuck")
        with pytest.raises(SimulationHang) as excinfo:
            engine.run()
        messages.append(str(excinfo.value).splitlines()[0])
    assert messages[0] == messages[1]
