"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import CompositeEvent, Event


def test_timeout_advances_clock():
    engine = Engine()
    log = []

    def proc():
        yield 5
        log.append(engine.now)
        yield 2.5
        log.append(engine.now)

    engine.process(proc())
    engine.run()
    assert log == [5.0, 7.5]


def test_processes_interleave_in_time_order():
    engine = Engine()
    log = []

    def proc(name, delay):
        yield delay
        log.append((engine.now, name))
        yield delay
        log.append((engine.now, name))

    engine.process(proc("a", 3))
    engine.process(proc("b", 2))
    engine.run()
    assert log == [(2.0, "b"), (3.0, "a"), (4.0, "b"), (6.0, "a")]


def test_event_wait_delivers_value():
    engine = Engine()
    event = Event()
    got = []

    def waiter():
        value = yield event
        got.append((engine.now, value))

    def firer():
        yield 4
        event.succeed("payload")

    engine.process(waiter())
    engine.process(firer())
    engine.run()
    assert got == [(4.0, "payload")]


def test_event_double_trigger_raises():
    event = Event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_event_callback_after_trigger_runs_immediately():
    event = Event()
    event.succeed(7)
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_process_completion_is_an_event():
    engine = Engine()

    def child():
        yield 3
        return "done"

    def parent():
        result = yield engine.process(child())
        assert result == "done"
        assert engine.now == 3.0

    engine.process(parent())
    engine.run()


def test_negative_delay_rejected():
    engine = Engine()

    def proc():
        yield -1

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_bad_yield_type_rejected():
    engine = Engine()

    def proc():
        yield "nonsense"

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_run_until_stops_early():
    engine = Engine()
    log = []

    def proc():
        for _ in range(10):
            yield 10
            log.append(engine.now)

    engine.process(proc())
    engine.run(until=35)
    assert log == [10.0, 20.0, 30.0]
    assert engine.now == 35


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule_at(5, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1, lambda: None)


def test_composite_event_waits_for_all():
    engine = Engine()
    children = [Event(), Event()]
    combined = CompositeEvent(children)
    fired = []

    def waiter():
        yield combined
        fired.append(engine.now)

    def firer():
        yield 2
        children[0].succeed()
        yield 3
        children[1].succeed()

    engine.process(waiter())
    engine.process(firer())
    engine.run()
    assert fired == [5.0]


def test_composite_of_nothing_fires_immediately():
    assert CompositeEvent([]).triggered


def test_run_all_convenience():
    engine = Engine()
    log = []

    def proc(n):
        yield n
        log.append(n)

    engine.run_all([proc(1), proc(2)])
    assert sorted(log) == [1, 2]


def test_unhandled_process_failure_surfaces_with_name():
    engine = Engine()

    def faulty():
        yield 3
        raise ValueError("bad register")

    engine.process(faulty(), "walker2")
    with pytest.raises(ValueError, match="bad register") as excinfo:
        engine.run()
    assert any("walker2" in note
               for note in getattr(excinfo.value, "__notes__", []))


def test_waiting_parent_catches_child_failure():
    engine = Engine()
    caught = []

    def child():
        yield 2
        raise ValueError("child died")

    def parent():
        try:
            yield engine.process(child(), "child")
        except ValueError as exc:
            caught.append((engine.now, str(exc)))
        yield 1

    engine.process(parent(), "parent")
    engine.run()  # handled failure: nothing re-raised
    assert caught == [(2.0, "child died")]
    assert engine.now == 3.0


def test_failure_takes_precedence_over_deadlock():
    # A fault that starves the rest of the pipeline must report the fault,
    # not the resulting deadlock.
    engine = Engine()

    def faulty():
        yield 1
        raise ValueError("the actual fault")

    def starved():
        yield Event()  # never fires once faulty dies

    engine.process(faulty(), "faulty")
    engine.process(starved(), "starved")
    with pytest.raises(ValueError, match="the actual fault"):
        engine.run()


def test_failed_event_thrown_into_waiter():
    engine = Engine()
    event = Event()
    caught = []

    def firer():
        yield 2
        event.fail(RuntimeError("upstream broke"))

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    engine.process(firer())
    engine.process(waiter())
    engine.run()
    assert caught == ["upstream broke"]


# ---------------------------------------------------------------------------
# fault-injection primitives: terminate and suspend
# ---------------------------------------------------------------------------

def test_terminate_stops_a_process_and_runs_its_finally():
    engine = Engine()
    log = []

    def victim():
        try:
            log.append("start")
            yield 100
            log.append("never")
        finally:
            log.append("cleanup")

    proc = engine.process(victim())
    engine.schedule_at(5.0, proc.terminate)
    engine.run()
    assert log == ["start", "cleanup"]
    assert proc.triggered


def test_terminate_is_idempotent_and_safe_after_completion():
    engine = Engine()

    def quick():
        yield 1

    proc = engine.process(quick())
    engine.run()
    proc.terminate()           # already complete: a no-op
    proc.terminate()
    assert proc.triggered


def test_terminated_process_does_not_wake_from_stale_events():
    """A timeout scheduled before the kill must not resume the corpse."""
    engine = Engine()
    log = []

    def victim():
        log.append("start")
        yield 100              # the stale wakeup lands at t=100
        log.append("woke")

    proc = engine.process(victim())
    engine.schedule_at(5.0, proc.terminate)
    engine.run()
    assert log == ["start"]


def test_suspend_halts_without_completing_and_trips_the_hang_check():
    from repro.errors import SimulationHang
    engine = Engine()

    def stuck():
        yield 100
        yield 100

    proc = engine.process(stuck())
    engine.schedule_at(5.0, proc.suspend)
    with pytest.raises(SimulationHang, match="deadlock") as excinfo:
        engine.run()
    assert not proc.triggered
    # The diagnostics name the suspension so a chaos-injected stall is
    # distinguishable from a real deadlock.
    assert "suspended (stalled by fault injection)" in str(excinfo.value)


def test_suspend_after_completion_is_a_no_op():
    engine = Engine()

    def quick():
        yield 1

    proc = engine.process(quick())
    engine.run()
    proc.suspend()
    assert proc.triggered
