"""Tests for the end-of-run invariant sanitizer."""

import pytest

from repro.errors import InvariantViolation
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import BoundedQueue, OccupancyPool
from repro.sim.sanitize import (check_engine_drained, check_pool_released,
                                check_queue_drained, sanitize_run)


def _drained_engine():
    engine = Engine()

    def proc():
        yield 1

    engine.process(proc())
    engine.run()
    return engine


def test_clean_engine_passes():
    check_engine_drained(_drained_engine())


def test_live_process_detected():
    engine = Engine(detect_deadlock=False)

    def stuck():
        yield Event()

    engine.process(stuck(), "wedged-unit")
    engine.run()
    with pytest.raises(InvariantViolation, match="wedged-unit"):
        check_engine_drained(engine)


def test_pool_leak_detected():
    pool = OccupancyPool(capacity=4)
    pool.acquire(0.0)
    pool.acquire(0.0)
    pool.release_at(1.0)
    with pytest.raises(InvariantViolation, match="leaked 1 slot"):
        check_pool_released("L1-D MSHRs", pool)


def test_balanced_pool_passes():
    pool = OccupancyPool(capacity=4)
    pool.acquire(0.0)
    pool.release_at(1.0)
    check_pool_released("L1-D MSHRs", pool)


def test_undrained_queue_detected():
    engine = Engine()
    queue = BoundedQueue(engine, capacity=2, name="hashed-keys")

    def putter():
        yield queue.put("tuple")

    engine.process(putter())
    engine.run()
    with pytest.raises(InvariantViolation, match="hashed-keys"):
        check_queue_drained(queue)


def test_blocked_getter_detected():
    engine = Engine(detect_deadlock=False)
    queue = BoundedQueue(engine, capacity=2, name="to-producer")

    def getter():
        yield queue.get()

    engine.process(getter())
    engine.run()
    with pytest.raises(InvariantViolation, match="blocked getter"):
        check_queue_drained(queue)


def test_sanitize_run_happy_path():
    engine = Engine()
    queue = BoundedQueue(engine, capacity=2, name="q")

    def putter():
        yield queue.put("x")

    def getter():
        yield queue.get()

    engine.process(putter())
    engine.process(getter())
    engine.run()

    class Hierarchy:
        pass  # duck-typed: no l1d/llc/tlb attributes -> no pools

    sanitize_run(engine, queues=[queue, None], hierarchy=Hierarchy())
