"""Tests for analytic resources and bounded queues."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.resources import (BoundedQueue, OccupancyPool,
                                 PipelinedResource, QUEUE_CLOSED)


class TestPipelinedResource:
    def test_single_server_serializes(self):
        res = PipelinedResource(servers=1, service=2.0)
        assert res.request(0.0) == 0.0
        assert res.request(0.0) == 2.0
        assert res.request(0.0) == 4.0

    def test_two_servers_grant_pairwise(self):
        res = PipelinedResource(servers=2, service=1.0)
        grants = [res.request(0.0) for _ in range(4)]
        assert grants == [0.0, 0.0, 1.0, 1.0]

    def test_idle_gap_resets(self):
        res = PipelinedResource(servers=1, service=1.0)
        res.request(0.0)
        assert res.request(10.0) == 10.0

    def test_busy_accounting(self):
        res = PipelinedResource(servers=1, service=3.0)
        res.request(0.0)
        res.request(0.0)
        assert res.grants == 2
        assert res.busy_cycles == 6.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            PipelinedResource(servers=0, service=1.0)
        with pytest.raises(SimulationError):
            PipelinedResource(servers=1, service=0.0)


class TestOccupancyPool:
    def test_free_slot_grants_immediately(self):
        pool = OccupancyPool(capacity=2)
        assert pool.acquire(5.0) == 5.0
        pool.release_at(10.0)

    def test_full_pool_waits_for_release(self):
        pool = OccupancyPool(capacity=1)
        start = pool.acquire(0.0)
        pool.release_at(8.0)
        assert pool.acquire(1.0) == 8.0
        pool.release_at(12.0)

    def test_expired_slots_are_reusable(self):
        pool = OccupancyPool(capacity=1)
        pool.acquire(0.0)
        pool.release_at(3.0)
        assert pool.acquire(5.0) == 5.0
        pool.release_at(6.0)

    def test_peak_occupancy_tracked(self):
        pool = OccupancyPool(capacity=3)
        for _ in range(3):
            pool.acquire(0.0)
            pool.release_at(10.0)
        assert pool.peak == 3

    def test_occupancy_query(self):
        pool = OccupancyPool(capacity=4)
        pool.acquire(0.0)
        pool.release_at(5.0)
        assert pool.occupancy(1.0) == 1
        assert pool.occupancy(6.0) == 0

    def test_wait_cycles_accumulate(self):
        pool = OccupancyPool(capacity=1)
        pool.acquire(0.0)
        pool.release_at(10.0)
        pool.acquire(2.0)
        pool.release_at(11.0)
        assert pool.wait_cycles == 8.0


class TestBoundedQueue:
    def _run(self, body):
        engine = Engine()
        engine.process(body(engine))
        engine.run()

    def test_put_get_roundtrip(self):
        def body(engine):
            queue = BoundedQueue(engine, capacity=2)
            yield queue.put("x")
            value = yield queue.get()
            assert value == "x"
        self._run(body)

    def test_get_blocks_until_put(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=1)
        got = []

        def consumer():
            value = yield queue.get()
            got.append((engine.now, value))

        def producer():
            yield 7
            yield queue.put("late")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert got == [(7.0, "late")]

    def test_put_blocks_when_full(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=1)
        timeline = []

        def producer():
            yield queue.put(1)
            timeline.append(("put1", engine.now))
            yield queue.put(2)
            timeline.append(("put2", engine.now))

        def consumer():
            yield 5
            yield queue.get()

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert timeline == [("put1", 0.0), ("put2", 5.0)]

    def test_close_releases_waiting_getters(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=1)
        seen = []

        def consumer():
            value = yield queue.get()
            seen.append(value)

        def closer():
            yield 3
            queue.close()

        engine.process(consumer())
        engine.process(closer())
        engine.run()
        assert seen == [QUEUE_CLOSED]

    def test_closed_queue_drains_remaining_items_first(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=2)
        seen = []

        def body():
            yield queue.put("a")
            queue.close()
            seen.append((yield queue.get()))
            seen.append((yield queue.get()))

        engine.process(body())
        engine.run()
        assert seen == ["a", QUEUE_CLOSED]

    def test_fifo_order(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=4)
        order = []

        def body():
            for i in range(4):
                yield queue.put(i)
            for _ in range(4):
                order.append((yield queue.get()))

        engine.process(body())
        engine.run()
        assert order == [0, 1, 2, 3]

    def test_capacity_validated(self):
        with pytest.raises(SimulationError):
            BoundedQueue(Engine(), capacity=0)

    def test_put_after_close_raises(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=2)
        queue.close()
        with pytest.raises(SimulationError):
            queue.put("dropped")

    def test_put_after_close_raises_inside_process(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=2)
        failures = []

        def producer():
            yield queue.put("ok")
            queue.close()
            try:
                yield queue.put("late")
            except SimulationError:
                failures.append(engine.now)

        engine.process(producer())
        engine.run()
        assert failures == [0.0]

    def test_close_wakes_blocked_putters_with_sentinel(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=1)
        outcomes = []

        def producer():
            yield queue.put(1)           # fills the queue
            outcomes.append((yield queue.put(2)))  # blocks until close

        def closer():
            yield 4
            queue.close()

        engine.process(producer())
        engine.process(closer())
        engine.run()
        # The producer was woken (no hang) and told its item was rejected.
        assert outcomes == [QUEUE_CLOSED]
        # The rejected item must not linger in the queue or putter list.
        assert len(queue) == 1

    def test_close_is_idempotent(self):
        engine = Engine()
        queue = BoundedQueue(engine, capacity=1)
        queue.close()
        queue.close()
        assert queue.closed


class TestQueueSalvage:
    """cancel_get and restore: the dispatcher-side primitives for
    salvaging a dead walker's in-flight work."""

    def test_cancel_get_removes_a_parked_getter(self):
        engine = Engine()
        queue = BoundedQueue(engine, 4)
        got = []

        def getter():
            item = yield queue.get()
            got.append(item)

        proc = engine.process(getter())
        target = None

        def canceller():
            yield 1
            # The getter is parked; cancel its wait, then feed the queue.
            event = proc.waiting_on
            assert queue.cancel_get(event)
            assert not queue.cancel_get(event)   # already removed
            proc.terminate()
            yield queue.put("x")

        engine.process(canceller())
        engine.run()
        assert got == []
        assert len(queue) == 1                   # 'x' was never consumed

    def test_restore_hands_off_to_a_waiting_getter(self):
        engine = Engine()
        queue = BoundedQueue(engine, 4)
        got = []

        def getter():
            item = yield queue.get()
            got.append(item)

        def restorer():
            yield 1
            queue.restore("salvaged")

        engine.process(getter())
        engine.process(restorer())
        engine.run()
        assert got == ["salvaged"]

    def test_restore_requeues_at_the_front(self):
        engine = Engine()
        queue = BoundedQueue(engine, 4)
        order = []

        def filler():
            yield queue.put("a")
            yield queue.put("b")
            queue.restore("front")
            queue.close()

        def drainer():
            yield 0.5
            while True:
                item = yield queue.get()
                if item is QUEUE_CLOSED:
                    return
                order.append(item)

        engine.process(filler())
        engine.process(drainer())
        engine.run()
        assert order == ["front", "a", "b"]

    def test_restore_may_transiently_exceed_capacity(self):
        """Salvage must never lose the item, even into a full queue."""
        engine = Engine()
        queue = BoundedQueue(engine, 1)

        def filler():
            yield queue.put("a")
            queue.restore("rescued")

        engine.process(filler())
        engine.run()
        assert len(queue) == 2
