"""Tests for the memory-stats bundles and their invariants."""

import pytest

from repro.errors import InvariantViolation
from repro.mem.stats import LevelStats, MemoryStats, TlbStats
from repro.obs import StatsRegistry


def test_level_stats_check_passes_when_consistent():
    stats = LevelStats(accesses=10, hits=6, misses=3, combined_misses=1)
    stats.check()


def test_level_stats_check_raises_typed_error():
    stats = LevelStats(accesses=10, hits=6, misses=3)
    with pytest.raises(InvariantViolation, match="cache accounting broken"):
        stats.check()


def test_miss_ratio_counts_only_fresh_misses():
    stats = LevelStats(accesses=10, hits=6, misses=3, combined_misses=1)
    assert stats.miss_ratio == pytest.approx(0.3)


def test_demand_miss_ratio_includes_combined_misses():
    stats = LevelStats(accesses=10, hits=6, misses=3, combined_misses=1)
    assert stats.demand_miss_ratio == pytest.approx(0.4)


def test_ratios_on_untouched_level_are_zero():
    stats = LevelStats()
    assert stats.miss_ratio == 0.0
    assert stats.demand_miss_ratio == 0.0


def test_memory_stats_check_raises_on_broken_level():
    stats = MemoryStats()
    stats.llc.accesses += 1  # no matching hit/miss
    with pytest.raises(InvariantViolation):
        stats.check()


def test_level_stats_register_into_publishes_live_counters():
    stats = LevelStats()
    registry = StatsRegistry()
    stats.register_into(registry, "mem.l1d")
    stats.misses += 2
    assert registry.get("mem.l1d.misses") == 2
    assert set(registry.paths()) == {
        "mem.l1d.accesses", "mem.l1d.hits", "mem.l1d.misses",
        "mem.l1d.combined_misses", "mem.l1d.prefetches"}


def test_tlb_stats_miss_ratio():
    stats = TlbStats(accesses=4, misses=1)
    assert stats.miss_ratio == 0.25
    assert TlbStats().miss_ratio == 0.0


def test_memory_stats_register_into_publishes_only_its_own_counters():
    stats = MemoryStats()
    registry = StatsRegistry()
    stats.register_into(registry, "mem")
    # Levels register via their owners; only hierarchy-wide counters here.
    assert registry.paths() == ["mem.dram_blocks", "mem.loads", "mem.stores"]


def test_memory_stats_summary_is_one_line():
    stats = MemoryStats()
    stats.loads += 3
    text = stats.summary()
    assert "loads=3" in text and "\n" not in text
