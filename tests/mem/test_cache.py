"""Tests for the set-associative cache model."""

import pytest

from repro.config import CacheConfig
from repro.mem.cache import CacheArray, CacheLevel


def small_cache(**overrides):
    params = dict(size_bytes=1024, block_bytes=64, associativity=2,
                  latency_cycles=2, ports=2, mshrs=4)
    params.update(overrides)
    return CacheConfig(**params)


class TestCacheArray:
    def test_miss_then_hit(self):
        array = CacheArray(small_cache())
        block = array.block_of(0x1000)
        assert not array.lookup(block)
        array.insert(block)
        assert array.lookup(block)

    def test_lru_eviction_order(self):
        cfg = small_cache()
        array = CacheArray(cfg)
        sets = cfg.num_sets
        # Three blocks mapping to set 0 in a 2-way cache.
        b0, b1, b2 = 0, sets, 2 * sets
        array.insert(b0)
        array.insert(b1)
        victim = array.insert(b2)
        assert victim == b0  # least recently used

    def test_lookup_refreshes_lru(self):
        cfg = small_cache()
        array = CacheArray(cfg)
        sets = cfg.num_sets
        b0, b1, b2 = 0, sets, 2 * sets
        array.insert(b0)
        array.insert(b1)
        array.lookup(b0)          # b0 becomes MRU
        victim = array.insert(b2)
        assert victim == b1

    def test_present_does_not_touch_lru(self):
        cfg = small_cache()
        array = CacheArray(cfg)
        sets = cfg.num_sets
        b0, b1, b2 = 0, sets, 2 * sets
        array.insert(b0)
        array.insert(b1)
        assert array.present(b0)
        victim = array.insert(b2)
        assert victim == b0       # presence check did not refresh b0

    def test_reinsert_is_idempotent(self):
        array = CacheArray(small_cache())
        assert array.insert(7) is None
        assert array.insert(7) is None
        assert array.resident_blocks() == 1

    def test_invalidate(self):
        array = CacheArray(small_cache())
        array.insert(9)
        array.invalidate(9)
        assert not array.present(9)

    def test_different_sets_do_not_conflict(self):
        cfg = small_cache()
        array = CacheArray(cfg)
        for block in range(cfg.num_sets):
            array.insert(block)
        assert array.resident_blocks() == cfg.num_sets


class TestCacheLevel:
    def test_hit_miss_accounting(self):
        level = CacheLevel(small_cache(), "L1")
        block = 42
        outcome = level.probe(block, 0.0)
        assert outcome == -1.0  # fresh miss
        start = level.begin_miss(0.0)
        level.finish_miss(block, start + 100.0)
        assert level.probe(block, 200.0) is None  # hit after fill
        level.stats.check()
        assert level.stats.misses == 1 and level.stats.hits == 1

    def test_combined_miss_shares_fill(self):
        level = CacheLevel(small_cache(), "L1")
        block = 42
        level.probe(block, 0.0)
        start = level.begin_miss(0.0)
        level.finish_miss(block, start + 100.0)
        pending = level.probe(block, 10.0)
        assert pending == start + 100.0
        assert level.stats.combined_misses == 1
        level.stats.check()

    def test_access_after_fill_time_is_a_hit(self):
        level = CacheLevel(small_cache(), "L1")
        block = 42
        level.probe(block, 0.0)
        level.finish_miss(block, 50.0)
        assert level.probe(block, 60.0) is None

    def test_mshr_exhaustion_delays_miss(self):
        level = CacheLevel(small_cache(mshrs=1), "L1")
        level.probe(1, 0.0)
        first = level.begin_miss(0.0)
        level.finish_miss(1, first + 100.0)
        level.probe(2, 5.0)
        second = level.begin_miss(5.0)
        assert second == first + 100.0  # waited for the only MSHR

    def test_ports_serialize_same_cycle_accesses(self):
        level = CacheLevel(small_cache(ports=1), "L1")
        assert level.port_grant(0.0) == 0.0
        assert level.port_grant(0.0) == 1.0

    def test_warm_installs_without_stats(self):
        level = CacheLevel(small_cache(), "L1")
        level.warm(5)
        assert level.probe(5, 0.0) is None
        assert level.stats.accesses == 1 and level.stats.hits == 1

    def test_mshr_peak_tracked(self):
        level = CacheLevel(small_cache(mshrs=4), "L1")
        for block in range(3):
            level.probe(block, 0.0)
            level.begin_miss(0.0)
            level.finish_miss(block, 100.0)
        assert level.mshrs.peak == 3


def test_cache_config_validation():
    with pytest.raises(Exception):
        CacheConfig(size_bytes=1000, block_bytes=48)  # not a power of two
    with pytest.raises(Exception):
        CacheConfig(size_bytes=1024, block_bytes=64, associativity=3)
