"""Tests for the crossbar."""

import pytest

from repro.mem.interconnect import Crossbar


def test_fixed_latency():
    xbar = Crossbar(4)
    assert xbar.traverse(10.0) == 14.0


def test_traversals_counted():
    xbar = Crossbar(4)
    xbar.traverse(0.0)
    xbar.traverse(1.0)
    assert xbar.traversals == 2


def test_zero_latency_allowed():
    assert Crossbar(0).traverse(5.0) == 5.0


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        Crossbar(-1)
