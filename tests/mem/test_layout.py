"""Tests for the named-region allocator."""

import pytest

from repro.mem.layout import AddressSpace


def test_allocate_and_find():
    space = AddressSpace()
    region = space.allocate("buckets", 1024)
    assert region.size == 1024
    assert space.find(region.base) == region
    assert space.find(region.end - 1) == region
    assert space.find(region.end) is None


def test_duplicate_names_rejected():
    space = AddressSpace()
    space.allocate("x", 64)
    with pytest.raises(ValueError):
        space.allocate("x", 64)


def test_regions_do_not_overlap():
    space = AddressSpace()
    regions = [space.allocate(f"r{i}", 100) for i in range(5)]
    for a, b in zip(regions, regions[1:]):
        assert a.end <= b.base


def test_region_lookup_by_name():
    space = AddressSpace()
    region = space.allocate("nodes", 256)
    assert space.region("nodes") == region


def test_footprint_sums_regions():
    space = AddressSpace()
    space.allocate("a", 100)
    space.allocate("b", 200)
    assert space.footprint_bytes == 300


def test_allocations_are_backed_by_memory():
    space = AddressSpace()
    region = space.allocate("data", 64)
    space.memory.write_u64(region.base, 0xFEED)
    assert space.memory.read_u64(region.base) == 0xFEED


def test_regions_listing_in_order():
    space = AddressSpace()
    names = ["one", "two", "three"]
    for name in names:
        space.allocate(name, 64)
    assert [r.name for r in space.regions()] == names
