"""Differential tests: flat tick-LRU cache vs the naive recency-list model.

Identical seeded op streams drive :class:`repro.mem.cache.CacheArray`
(one flat block->tick dict, min-tick victim scan) and
:class:`repro.mem.reference.ReferenceCacheArray` (per-set Python list,
``pop(0)`` victim) and must produce the same hit/miss answer and the
same victim on every single operation — the optimized array's cheaper
recency scheme is only admissible because it is bit-identical here.
A second layer drives whole :class:`CacheLevel`/:class:`ReferenceCacheLevel`
objects through probe/miss/fill streams and compares timing outcomes and
every stats counter.
"""

from __future__ import annotations

import random

import pytest

from repro.config import CacheConfig, DEFAULT_CONFIG
from repro.mem.cache import CacheArray, CacheLevel
from repro.mem.reference import ReferenceCacheArray, ReferenceCacheLevel

SEEDS = [1, 7, 23, 77, 1234]


def small_config():
    # 16 sets x 2 ways: tiny enough that random streams evict constantly.
    return CacheConfig(size_bytes=2048, block_bytes=64, associativity=2,
                       latency_cycles=1, ports=1, mshrs=2)


def op_stream(seed, count=4000, block_range=96):
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        roll = rng.random()
        block = rng.randrange(block_range)
        if roll < 0.55:
            ops.append(("lookup", block))
        elif roll < 0.80:
            ops.append(("insert", block))
        elif roll < 0.93:
            ops.append(("present", block))
        else:
            ops.append(("invalidate", block))
    return ops


def apply_ops(array, ops):
    """Returns the full per-op observation sequence."""
    observed = []
    for op, block in ops:
        if op == "lookup":
            observed.append(("hit", array.lookup(block)))
        elif op == "insert":
            observed.append(("victim", array.insert(block)))
        elif op == "present":
            observed.append(("present", array.present(block)))
        else:
            array.invalidate(block)
            observed.append(("invalidated", block))
    observed.append(("resident", array.resident_blocks()))
    return observed


@pytest.mark.parametrize("seed", SEEDS)
def test_array_hit_and_victim_sequences_identical(seed):
    ops = op_stream(seed)
    cfg = small_config()
    optimized = apply_ops(CacheArray(cfg), ops)
    reference = apply_ops(ReferenceCacheArray(cfg), ops)
    assert optimized == reference


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_array_identical_on_llc_geometry(seed):
    """Same check on the real (power-of-two-masked) LLC geometry."""
    cfg = DEFAULT_CONFIG.llc
    ops = op_stream(seed, count=6000,
                    block_range=cfg.num_sets * cfg.associativity // 4)
    assert apply_ops(CacheArray(cfg), ops) == \
        apply_ops(ReferenceCacheArray(cfg), ops)


def test_victims_are_true_lru_per_set():
    """Hand-built scenario: victims come out in exact recency order."""
    cfg = small_config()
    for array in (CacheArray(cfg), ReferenceCacheArray(cfg)):
        num_sets = cfg.num_sets
        a, b, c = 5, 5 + num_sets, 5 + 2 * num_sets   # same set
        assert array.insert(a) is None
        assert array.insert(b) is None
        assert array.lookup(a)                        # refresh a: b is LRU
        assert array.insert(c) == b
        assert array.present(a) and array.present(c)
        assert not array.present(b)


def level_stream(level, seed, count=1500):
    """Drive a cache level through probes and miss completions."""
    rng = random.Random(seed)
    now = 0.0
    observed = []
    for _ in range(count):
        now += rng.choice((0.5, 1.0, 1.0, 2.0))
        block = rng.randrange(64)
        outcome = level.probe(block, now)
        observed.append((round(now, 6), block, outcome))
        if outcome is not None and outcome < 0:
            start = level.begin_miss(now)
            level.finish_miss(block, start + 30.0)
            observed.append(("fill", round(start + 30.0, 6)))
    stats = level.stats
    observed.append(("stats", stats.accesses.value, stats.hits.value,
                     stats.misses.value, stats.combined_misses.value))
    observed.append(("ports", level.ports.grants.value))
    observed.append(("mshrs", level.mshrs.acquisitions.value,
                     level.mshrs.peak))
    return observed


@pytest.mark.parametrize("seed", SEEDS)
def test_level_timing_and_stats_identical(seed):
    cfg = small_config()
    optimized = level_stream(CacheLevel(cfg, "L1"), seed)
    reference = level_stream(ReferenceCacheLevel(cfg, "L1"), seed)
    assert optimized == reference
