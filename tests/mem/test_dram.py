"""Tests for the memory-controller bandwidth model."""

import pytest

from repro.config import DramConfig
from repro.mem.dram import MemoryControllers


def controllers(**overrides):
    params = dict(num_controllers=2, bandwidth_gbps=12.8, efficiency=0.70,
                  access_latency_ns=45.0)
    params.update(overrides)
    return MemoryControllers(DramConfig(**params), freq_ghz=2.0, block_bytes=64)


def test_latency_cycles_matches_table2():
    mcs = controllers()
    assert mcs.latency_cycles == 90  # 45 ns at 2 GHz


def test_block_service_matches_effective_bandwidth():
    mcs = controllers()
    # 12.8 GB/s * 0.7 = 8.96 GB/s = 4.48 B/cycle -> 64 B / 4.48 ~ 14.3 cycles
    assert mcs.service_cycles == pytest.approx(64 / 4.48, rel=1e-3)


def test_interleave_by_block_address():
    mcs = controllers()
    assert mcs.controller_for(0) != mcs.controller_for(1)
    assert mcs.controller_for(0) == mcs.controller_for(2)


def test_back_to_back_same_controller_serializes():
    mcs = controllers()
    first = mcs.fetch(0, 0.0)
    second = mcs.fetch(2, 0.0)  # same controller
    assert second == pytest.approx(first + mcs.service_cycles)


def test_different_controllers_overlap():
    mcs = controllers()
    first = mcs.fetch(0, 0.0)
    second = mcs.fetch(1, 0.0)  # other controller
    assert second == first


def test_bandwidth_saturation_under_burst():
    mcs = controllers(num_controllers=1)
    times = [mcs.fetch(block * 2, 0.0) for block in range(10)]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(gap == pytest.approx(mcs.service_cycles) for gap in gaps)


def test_utilization():
    mcs = controllers()
    mcs.fetch(0, 0.0)
    mcs.fetch(1, 0.0)
    util = mcs.utilization(elapsed_cycles=2 * mcs.service_cycles)
    assert util == pytest.approx(0.5)
    assert mcs.blocks_transferred == 2


def test_config_validation():
    with pytest.raises(Exception):
        DramConfig(num_controllers=0)
    with pytest.raises(Exception):
        DramConfig(efficiency=1.5)
