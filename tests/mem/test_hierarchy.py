"""Tests for the assembled memory hierarchy."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace

BASE = 0x1_0000


@pytest.fixture
def mh():
    return MemoryHierarchy(DEFAULT_CONFIG)


def test_cold_load_goes_to_dram(mh):
    result = mh.load(BASE, 0.0)
    assert result.level == "DRAM"
    # TLB walk + crossbar both ways + DRAM latency at least.
    assert result.complete >= 35 + 4 + 90 + 4


def test_second_load_hits_l1(mh):
    first = mh.load(BASE, 0.0)
    second = mh.load(BASE, first.complete)
    assert second.level == "L1"
    assert second.complete == pytest.approx(
        first.complete + DEFAULT_CONFIG.l1d.latency_cycles)


def test_same_block_different_word_hits(mh):
    first = mh.load(BASE, 0.0)
    second = mh.load(BASE + 32, first.complete)
    assert second.level == "L1"


def test_concurrent_same_block_misses_combine(mh):
    first = mh.load(BASE, 0.0)
    combined = mh.load(BASE + 8, 1.0)
    assert combined.complete == pytest.approx(first.complete, abs=4.0)
    assert mh.stats.l1d.combined_misses == 1
    mh.stats.check()


def test_llc_hit_path_is_faster_than_dram(mh):
    warm = MemoryHierarchy(DEFAULT_CONFIG)
    warm.warm_block(BASE, level="llc")
    llc = warm.load(BASE, 0.0)
    cold = mh.load(BASE, 0.0)
    assert llc.level == "LLC"
    assert llc.complete < cold.complete


def test_warm_l1_gives_load_to_use_latency(mh):
    mh.warm_block(BASE, level="l1")
    result = mh.load(BASE, 0.0)
    assert result.level == "L1"
    assert result.tlb_stall == 0.0
    assert result.complete == DEFAULT_CONFIG.l1d.latency_cycles


def test_tlb_stall_reported_separately(mh):
    result = mh.load(BASE, 0.0)
    assert result.tlb_stall == DEFAULT_CONFIG.tlb.miss_latency_cycles


def test_mshr_limit_backpressures(caplog):
    mh = MemoryHierarchy(DEFAULT_CONFIG)
    mh.tlb.warm(BASE)
    page = DEFAULT_CONFIG.tlb.page_bytes
    # 11 distinct-block misses against 10 MSHRs (same page, warm TLB).
    results = [mh.load(BASE + i * 64, 0.0) for i in range(11)]
    assert mh.l1d.mshrs.peak <= DEFAULT_CONFIG.l1d.mshrs
    # The 11th miss had to wait for an MSHR: strictly later than the 1st.
    assert results[10].complete > results[0].complete


def test_stores_counted(mh):
    mh.store(BASE, 0.0)
    assert mh.stats.stores == 1


def test_touch_counts_prefetch_and_fills(mh):
    prefetch = mh.touch(BASE, 0.0)
    assert mh.stats.l1d.prefetches == 1
    later = mh.load(BASE, prefetch.complete)
    assert later.level == "L1"


def test_warm_range_covers_all_blocks(mh):
    mh.warm_range(BASE, 4 * 64, level="llc")
    for i in range(4):
        result = mh.load(BASE + i * 64, 1000.0 * i)
        assert result.level == "LLC"


def test_warm_rejects_unknown_level(mh):
    with pytest.raises(ValueError):
        mh.warm_block(BASE, level="l9")


def test_stats_consistency_after_mixed_traffic(mh):
    space = AddressSpace()
    region = space.allocate("blob", 8192)
    now = 0.0
    for i in range(50):
        result = mh.load(region.base + (i * 24) % 8192 // 8 * 8, now)
        now = result.complete
    mh.stats.check()
    assert mh.stats.loads == 50
