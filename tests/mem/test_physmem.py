"""Tests for the flat simulated memory."""

import pytest

from repro.errors import AlignmentError, SegmentationFault
from repro.mem.physmem import NULL_PTR, PhysicalMemory


def test_sbrk_returns_aligned_growing_addresses():
    mem = PhysicalMemory()
    a = mem.sbrk(100, align=64)
    b = mem.sbrk(100, align=64)
    assert a % 64 == 0 and b % 64 == 0
    assert b >= a + 100


def test_read_write_roundtrip_all_widths():
    mem = PhysicalMemory()
    base = mem.sbrk(64)
    for size, value in ((1, 0xAB), (4, 0xDEADBEEF), (8, 0x0123456789ABCDEF)):
        mem.write(base, size, value)
        assert mem.read(base, size) == value


def test_little_endian_layout():
    mem = PhysicalMemory()
    base = mem.sbrk(8)
    mem.write_u64(base, 0x1122334455667788)
    assert mem.read_u8(base) == 0x88
    assert mem.read_u32(base + 4) == 0x11223344


def test_write_truncates_to_width():
    mem = PhysicalMemory()
    base = mem.sbrk(8)
    mem.write_u32(base, 0x1_FFFF_FFFF)
    assert mem.read_u32(base) == 0xFFFF_FFFF


def test_null_dereference_faults():
    mem = PhysicalMemory()
    mem.sbrk(64)
    with pytest.raises(SegmentationFault):
        mem.read(NULL_PTR, 8)


def test_unaligned_access_faults():
    mem = PhysicalMemory()
    base = mem.sbrk(64)
    with pytest.raises(AlignmentError):
        mem.read(base + 1, 8)
    with pytest.raises(AlignmentError):
        mem.write(base + 2, 4, 1)


def test_out_of_bounds_faults():
    mem = PhysicalMemory()
    base = mem.sbrk(64)
    with pytest.raises(SegmentationFault):
        mem.read(base + 64, 8)


def test_memory_limit_enforced():
    mem = PhysicalMemory(limit_bytes=1024)
    with pytest.raises(SegmentationFault):
        mem.sbrk(2048)


def test_negative_allocation_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory().sbrk(-1)


def test_bad_alignment_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory().sbrk(8, align=3)


def test_fresh_memory_reads_zero():
    mem = PhysicalMemory()
    base = mem.sbrk(64)
    assert mem.read_u64(base) == 0


def test_read_bytes_debug_helper():
    mem = PhysicalMemory()
    base = mem.sbrk(16)
    mem.write_u32(base, 0x04030201)
    assert mem.read_bytes(base, 4) == b"\x01\x02\x03\x04"


def test_allocated_bytes_tracks_brk():
    mem = PhysicalMemory()
    mem.sbrk(100, align=64)
    assert mem.allocated_bytes >= 100
