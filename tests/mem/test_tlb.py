"""Tests for the TLB model."""

from repro.config import TlbConfig
from repro.mem.tlb import Tlb


def small_tlb(**overrides):
    params = dict(entries=4, page_bytes=4096, in_flight=2,
                  miss_latency_cycles=30)
    params.update(overrides)
    return Tlb(TlbConfig(**params))


def test_first_access_misses_then_hits():
    tlb = small_tlb()
    ready, stall = tlb.translate(0x10000, 0.0)
    assert stall == 30.0 and ready == 30.0
    ready, stall = tlb.translate(0x10008, 100.0)  # same page
    assert stall == 0.0 and ready == 100.0
    assert tlb.stats.misses == 1 and tlb.stats.accesses == 2


def test_in_flight_limit_serializes_walks():
    tlb = small_tlb(in_flight=1)
    tlb.translate(0 * 4096 + 0x10000, 0.0)
    ready, stall = tlb.translate(1 * 4096 + 0x10000, 0.0)
    # The second walk waits for the only walker port.
    assert ready == 60.0 and stall == 60.0


def test_two_in_flight_walks_overlap():
    tlb = small_tlb(in_flight=2)
    tlb.translate(0x10000, 0.0)
    ready, _ = tlb.translate(0x10000 + 4096, 0.0)
    assert ready == 30.0  # no serialization


def test_concurrent_misses_to_same_page_share_walk():
    tlb = small_tlb()
    tlb.translate(0x10000, 0.0)
    ready, stall = tlb.translate(0x10010, 5.0)
    assert ready == 30.0 and stall == 25.0
    assert tlb.stats.misses == 1  # shared, not a second walk


def test_lru_capacity_eviction():
    tlb = small_tlb(entries=2)
    pages = [0x10000 + i * 4096 for i in range(3)]
    now = 0.0
    for page in pages:
        ready, _ = tlb.translate(page, now)
        now = ready + 1
    # First page was evicted by the third.
    _, stall = tlb.translate(pages[0], now)
    assert stall > 0
    assert tlb.stats.misses == 4


def test_warm_installs_translation():
    tlb = small_tlb()
    tlb.warm(0x10000)
    _, stall = tlb.translate(0x10000, 0.0)
    assert stall == 0.0
    assert tlb.stats.misses == 0


def test_miss_ratio():
    tlb = small_tlb()
    tlb.translate(0x10000, 0.0)
    tlb.translate(0x10000, 100.0)
    assert tlb.stats.miss_ratio == 0.5
