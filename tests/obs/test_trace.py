"""Tests for the interval tracer and its Chrome trace-event export."""

import json

import pytest

from repro.errors import TraceError
from repro.obs import Tracer


def test_begin_end_records_a_span():
    tracer = Tracer()
    tracer.begin("widx.walker0", "invoke", 10.0)
    tracer.end("widx.walker0", "invoke", 25.0)
    events = tracer.to_chrome()
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["name"] == "invoke"
    assert spans[0]["ts"] == 10.0 and spans[0]["dur"] == 15.0


def test_spans_nest_per_track():
    tracer = Tracer()
    tracer.begin("t", "outer", 0.0)
    tracer.begin("t", "inner", 2.0)
    tracer.end("t", "inner", 4.0)
    tracer.end("t", "outer", 8.0)
    spans = {e["name"]: e for e in tracer.to_chrome() if e["ph"] == "X"}
    assert spans["inner"]["dur"] == 2.0
    assert spans["outer"]["dur"] == 8.0


def test_ill_nested_end_raises():
    tracer = Tracer()
    tracer.begin("t", "outer", 0.0)
    tracer.begin("t", "inner", 1.0)
    with pytest.raises(TraceError):
        tracer.end("t", "outer", 2.0)  # inner is still open


def test_end_without_begin_raises():
    with pytest.raises(TraceError):
        Tracer().end("t", "x", 1.0)


def test_end_before_start_raises():
    tracer = Tracer()
    tracer.begin("t", "x", 10.0)
    with pytest.raises(TraceError):
        tracer.end("t", "x", 5.0)


def test_complete_rejects_negative_duration():
    with pytest.raises(TraceError):
        Tracer().complete("t", "x", 0.0, -1.0)


def test_independent_tracks_do_not_interfere():
    tracer = Tracer()
    tracer.begin("a", "x", 0.0)
    tracer.begin("b", "y", 1.0)
    tracer.end("a", "x", 2.0)
    tracer.end("b", "y", 3.0)
    assert tracer.num_events == 2


def test_export_with_open_span_raises():
    tracer = Tracer()
    tracer.begin("t", "x", 0.0)
    with pytest.raises(TraceError) as excinfo:
        tracer.to_chrome()
    assert "t:x@0.0" in str(excinfo.value)


def test_close_all_force_closes_open_spans():
    tracer = Tracer()
    tracer.begin("t", "outer", 0.0)
    tracer.begin("t", "inner", 5.0)
    tracer.close_all(7.0)
    assert tracer.open_spans() == []
    spans = {e["name"]: e for e in tracer.to_chrome() if e["ph"] == "X"}
    assert spans["inner"]["dur"] == 2.0
    assert spans["outer"]["dur"] == 7.0


def test_samples_become_counter_events():
    tracer = Tracer()
    tracer.sample("queue.hashed-keys", "depth", 1.0, 3)
    tracer.sample("queue.hashed-keys", "depth", 2.0, 4)
    counters = [e for e in tracer.to_chrome() if e["ph"] == "C"]
    assert len(counters) == 2
    assert counters[0]["args"] == {"depth": 3}


def test_tracks_map_to_named_threads():
    tracer = Tracer()
    tracer.complete("b-track", "x", 0.0, 1.0)
    tracer.sample("a-track", "level", 0.0, 1)
    events = tracer.to_chrome()
    metadata = {e["args"]["name"]: e["tid"]
                for e in events if e["ph"] == "M"}
    # Deterministic tids in sorted-track order.
    assert metadata == {"a-track": 0, "b-track": 1}
    by_tid = {e["tid"] for e in events if e["ph"] == "X"}
    assert by_tid == {metadata["b-track"]}


def test_write_produces_loadable_json(tmp_path):
    tracer = Tracer()
    tracer.complete("t", "x", 0.0, 2.0)
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    events = json.loads(path.read_text())
    assert isinstance(events, list)
    assert any(e["ph"] == "X" for e in events)


def test_empty_tracer_writes_an_empty_valid_trace(tmp_path):
    path = tmp_path / "empty.json"
    Tracer().write(str(path))
    assert json.loads(path.read_text()) == []
