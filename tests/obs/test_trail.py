"""Tests for the Trail metric: the bounded per-request traversal ring."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import StatsRegistry, Tracer, Trail
from repro.obs.metrics import decode_metric


def entry(seq, walker="walker0", hops=2):
    """One synthetic traversal with ``hops`` pointer chases."""
    start = float(seq * 100)
    return dict(walker=walker, key=[seq], start=start, end=start + 50.0,
                hops=[(start + 10.0 * (i + 1), 0x1000 + 64 * i,
                       ("L1", "LLC", "DRAM")[i % 3]) for i in range(hops)])


def record(trail, **kwargs):
    e = entry(**kwargs) if kwargs else entry(0)
    trail.record(e["walker"], e["key"], e["start"], e["end"], e["hops"])
    return e


class TestRecording:
    def test_entries_keep_walker_key_times_and_hops(self):
        trail = Trail(capacity=4)
        record(trail, seq=3, hops=2)
        assert len(trail) == 1
        got = trail.entries[0]
        assert got["walker"] == "walker0"
        assert got["key"] == [3]
        assert got["start"] == 300.0 and got["end"] == 350.0
        assert got["hops"] == [[310.0, 0x1000, "L1"], [320.0, 0x1040, "LLC"]]
        assert got["dropped"] == 0

    def test_ring_keeps_only_the_last_capacity_entries(self):
        trail = Trail(capacity=3)
        for seq in range(8):
            record(trail, seq=seq)
        assert len(trail) == 3
        assert [e["key"] for e in trail.entries] == [[5], [6], [7]]
        assert trail.recorded == 8
        assert trail.dropped_entries == 5

    def test_hops_past_max_hops_are_counted_not_stored(self):
        trail = Trail(capacity=4, max_hops=3)
        record(trail, seq=0, hops=7)
        got = trail.entries[0]
        assert len(got["hops"]) == 3
        assert got["dropped"] == 4
        assert trail.dropped_hops == 4

    def test_recorder_side_drops_accumulate(self):
        # A TrailRecorder that already truncated passes its own count.
        trail = Trail(capacity=4, max_hops=8)
        e = entry(0, hops=2)
        trail.record(e["walker"], e["key"], e["start"], e["end"],
                     e["hops"], dropped_hops=5)
        assert trail.entries[0]["dropped"] == 5
        assert trail.dropped_hops == 5

    def test_bounds_are_validated(self):
        with pytest.raises(SimulationError, match="capacity"):
            Trail(capacity=0)
        with pytest.raises(SimulationError, match="max_hops"):
            Trail(max_hops=0)


class TestSerialization:
    def test_round_trip_through_json(self):
        trail = Trail(capacity=4, max_hops=3)
        for seq in range(6):
            record(trail, seq=seq, hops=5)
        revived = Trail.from_dict(json.loads(json.dumps(trail.to_dict())))
        assert revived == trail
        assert revived.recorded == 6
        assert revived.dropped_entries == 2
        assert revived.dropped_hops == trail.dropped_hops

    def test_decode_metric_dispatches_on_kind(self):
        trail = Trail(capacity=2)
        record(trail)
        revived = decode_metric(trail.to_dict())
        assert isinstance(revived, Trail)
        assert revived == trail

    def test_merge_concatenates_and_rebounds(self):
        left, right = Trail(capacity=3), Trail(capacity=3)
        for seq in range(2):
            record(left, seq=seq)
        for seq in range(2, 5):
            record(right, seq=seq)
        left.merge_from(right)
        assert [e["key"] for e in left.entries] == [[2], [3], [4]]
        assert left.recorded == 5
        assert left.dropped_entries == 2


class TestRegistryIntegration:
    def test_scope_trail_is_get_or_create(self):
        registry = StatsRegistry()
        scope = registry.scope("widx")
        trail = scope.trail("trails", capacity=8)
        assert scope.trail("trails") is trail
        assert registry.get("widx.trails") is trail

    def test_trail_path_rejects_other_kinds(self):
        registry = StatsRegistry()
        registry.counter("widx.trails")
        with pytest.raises(SimulationError, match="not a Trail"):
            registry.trail("widx.trails")

    def test_merge_with_trails_and_distributions_across_scopes(self):
        # Two worker registries, each with a Trail and a Distribution
        # under different scopes, fold into one campaign registry.
        def worker(offset):
            registry = StatsRegistry()
            widx = registry.scope("widx")
            serve = registry.scope("serve")
            trail = widx.trail("trails", capacity=4)
            for seq in range(offset, offset + 2):
                record(trail, seq=seq)
            for value in range(offset, offset + 3):
                serve.distribution("latency").record(100.0 * (value + 1))
            serve.counter("completed").value += 3
            return registry

        campaign = StatsRegistry()
        campaign.merge(worker(0))
        campaign.merge(worker(10))  # second merge goes through to_dict
        trail = campaign.get("widx.trails")
        assert isinstance(trail, Trail)
        assert [e["key"] for e in trail.entries] == [[0], [1], [10], [11]]
        assert campaign.get("serve.latency").count == 6
        assert campaign.get("serve.completed").value == 6

    def test_merge_rejects_trail_into_distribution(self):
        left, right = StatsRegistry(), StatsRegistry()
        left.distribution("x")
        trail = right.trail("x")
        record(trail)
        with pytest.raises(SimulationError, match="cannot merge"):
            left.merge(right)

    def test_merged_snapshot_round_trips(self):
        registry = StatsRegistry()
        record(registry.trail("widx.trails"), seq=1)
        registry.distribution("serve.latency").record(42.0)
        revived = StatsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict())))
        assert revived.get("widx.trails") == registry.get("widx.trails")
        assert (revived.get("serve.latency").to_dict()
                == registry.get("serve.latency").to_dict())


class TestTracerExport:
    def test_feed_tracer_emits_invocation_and_hop_spans(self):
        trail = Trail(capacity=4)
        record(trail, seq=0, hops=3)
        tracer = Tracer()
        trail.feed_tracer(tracer)
        spans = [e for e in tracer.to_chrome() if e["ph"] == "X"]
        names = [s["name"] for s in spans]
        assert any(name.startswith("probe:") for name in names)
        assert any(name.startswith("L1@0x") for name in names)
        # Hop spans last until the next hop; the final one until the
        # traversal's end (start 0 -> end 50, last hop at 30).
        last_hop = max((s for s in spans if "@0x" in s["name"]),
                       key=lambda s: s["ts"])
        assert last_hop["dur"] == pytest.approx(50.0 - 30.0)

    def test_tracks_are_per_walker_with_prefix(self):
        trail = Trail(capacity=4)
        record(trail, seq=0, walker="walker0")
        record(trail, seq=1, walker="walker1")
        tracer = Tracer()
        trail.feed_tracer(tracer, prefix="t")
        threads = {e["args"]["name"] for e in tracer.to_chrome()
                   if e["ph"] == "M"}
        assert {"t.walker0", "t.walker1"} <= threads
