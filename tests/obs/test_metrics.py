"""Tests for the typed metric scalars."""

import random

import pytest

from repro.errors import SimulationError
from repro.obs import (Breakdown, Counter, Distribution, Histogram, Occupancy,
                       decode_metric)


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------

class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        counter += 1
        counter += 2
        counter.add(3)
        assert counter == 6
        assert counter.value == 6

    def test_float_counters_hold_cycles(self):
        counter = Counter(0.0)
        counter += 1.5
        assert counter.value == 1.5
        assert isinstance(counter.value, float)

    def test_iadd_returns_the_same_object(self):
        counter = Counter()
        alias = counter
        counter += 5
        assert counter is alias

    def test_binary_arithmetic_unwraps_to_numbers(self):
        a, b = Counter(10), Counter(4)
        assert a + b == 14 and not isinstance(a + b, Counter)
        assert a - b == 6
        assert a * 2 == 20
        assert a / b == 2.5
        assert a // 3 == 3
        assert 100 / b == 25.0
        assert 100 - a == 90
        assert -a == -10
        assert sum([a, b]) == 14  # __radd__ with the int 0 seed

    def test_comparisons_and_truthiness(self):
        counter = Counter(3)
        assert counter > 2 and counter >= 3 and counter < 4 and counter <= 3
        assert counter == 3 and counter != 4
        assert counter == Counter(3)
        assert bool(counter)
        assert not Counter(0)
        assert max(1, Counter(7)) == 7

    def test_formatting_delegates_to_the_value(self):
        assert f"{Counter(3.14159):.2f}" == "3.14"
        assert str(Counter(42)) == "42"
        assert int(Counter(9.7)) == 9
        assert float(Counter(2)) == 2.0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Counter(1))

    def test_record_max(self):
        counter = Counter()
        counter.record_max(5)
        counter.record_max(3)
        assert counter == 5

    def test_round_trip_and_merge(self):
        counter = Counter(7)
        clone = decode_metric(counter.to_dict())
        assert isinstance(clone, Counter) and clone == 7
        clone.merge_from(Counter(3))
        assert clone == 10
        assert counter == 7  # the original is untouched


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_power_of_two_buckets(self):
        assert Histogram.bucket_of(0) == 0
        assert Histogram.bucket_of(1) == 1
        assert Histogram.bucket_of(2) == 2
        assert Histogram.bucket_of(3) == 2
        assert Histogram.bucket_of(4) == 3
        assert Histogram.bucket_of(1024) == 11

    def test_record_tracks_moments(self):
        histogram = Histogram()
        for value in (1, 2, 3, 100):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 106
        assert histogram.min == 1 and histogram.max == 100
        assert histogram.mean == pytest.approx(26.5)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_round_trip_is_json_safe(self):
        import json
        histogram = Histogram()
        histogram.record(5)
        histogram.record(200)
        snapshot = json.loads(json.dumps(histogram.to_dict()))
        assert decode_metric(snapshot) == histogram

    def test_merge_combines_buckets_and_extrema(self):
        a, b = Histogram(), Histogram()
        a.record(2)
        b.record(2)
        b.record(900)
        a.merge_from(b)
        assert a.count == 3
        assert a.counts[Histogram.bucket_of(2)] == 2
        assert a.min == 2 and a.max == 900

    def test_merge_from_empty_keeps_extrema(self):
        a = Histogram()
        a.record(4)
        a.merge_from(Histogram())
        assert a.min == 4 and a.max == 4


# ---------------------------------------------------------------------------
# Distribution
# ---------------------------------------------------------------------------

class TestDistribution:
    #: One bucket width: each power-of-two range splits into 2**SUB_BITS
    #: linear sub-buckets, so the relative error bound is 1/2**SUB_BITS.
    RELATIVE_ERROR = 1.0 / (1 << Distribution.SUB_BITS)

    def test_small_values_are_exact(self):
        distribution = Distribution()
        for value in range(1, 128):
            distribution.record(value)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            import math
            rank = max(1, math.ceil(q * 127))
            assert distribution.quantile(q) == float(rank)

    def test_quantiles_match_sorted_list_oracle_within_bucket_error(self):
        import math
        rng = random.Random(17)
        values = [rng.uniform(1, 5e6) for _ in range(5000)]
        distribution = Distribution()
        for value in values:
            distribution.record(value)
        ordered = sorted(values)
        for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999):
            truth = ordered[max(1, math.ceil(q * len(values))) - 1]
            assert distribution.quantile(q) == pytest.approx(
                truth, rel=2 * self.RELATIVE_ERROR)

    def test_quantile_is_monotone_and_bounded_by_extrema(self):
        rng = random.Random(5)
        distribution = Distribution()
        for _ in range(800):
            distribution.record(rng.expovariate(1 / 1000.0))
        previous = distribution.min
        for step in range(101):
            value = distribution.quantile(step / 100.0)
            assert previous <= value <= distribution.max
            previous = value

    def test_moments_track_exactly(self):
        distribution = Distribution()
        for value in (3.5, 10.0, 200.25):
            distribution.record(value)
        assert distribution.count == 3
        assert distribution.mean == pytest.approx(213.75 / 3)
        assert distribution.min == 3.5 and distribution.max == 200.25

    def test_empty_distribution(self):
        distribution = Distribution()
        assert distribution.quantile(0.5) == 0.0
        assert distribution.mean == 0.0
        assert distribution.count == 0

    def test_quantile_rejects_out_of_range(self):
        distribution = Distribution()
        with pytest.raises(SimulationError):
            distribution.quantile(-0.1)
        with pytest.raises(SimulationError):
            distribution.quantile(1.5)

    def test_round_trip_is_json_safe(self):
        import json
        distribution = Distribution()
        for value in (1, 90, 4096.5, 3_000_000):
            distribution.record(value)
        snapshot = json.loads(json.dumps(distribution.to_dict()))
        decoded = decode_metric(snapshot)
        assert isinstance(decoded, Distribution)
        assert decoded.to_dict() == distribution.to_dict()
        assert decoded.p99 == distribution.p99

    def test_fractional_values_land_in_distinct_buckets(self):
        """Regression: bucket_of used to truncate to int *before* the
        fixed-point scale, collapsing every observation below 1.0 into
        bucket 0 and sub-integer gaps into one bucket."""
        assert Distribution.bucket_of(0.25) != Distribution.bucket_of(0.75)
        assert Distribution.bucket_of(0.5) > 0
        assert Distribution.bucket_of(1.25) != Distribution.bucket_of(1.75)
        distribution = Distribution()
        for value in (0.125, 0.25, 0.5, 0.75):
            distribution.record(value)
        assert len(distribution.counts) == 4
        assert distribution.quantile(0.5) == pytest.approx(
            0.25, abs=1.0 / (1 << Distribution.FP_BITS))

    def test_bucket_of_fractional_resolution_bound(self):
        """Sub-integer observations resolve to 2**-FP_BITS cycles."""
        step = 1.0 / (1 << Distribution.FP_BITS)
        buckets = {Distribution.bucket_of(i * step) for i in range(1, 257)}
        assert len(buckets) == 256  # every step gets its own bucket

    def test_record_many_matches_a_record_loop(self):
        rng = random.Random(31)
        values = [rng.uniform(0.01, 5e6) for _ in range(3000)]
        values += [0.0, -2.5, 0.125, 3.0]  # zero/negative/fractional edges
        looped, batched = Distribution(), Distribution()
        for value in values:
            looped.record(value)
        batched.record_many(values)
        assert batched.to_dict() == looped.to_dict()
        assert batched.total == looped.total  # exact float-fold order

    def test_record_many_appends_to_existing_state(self):
        looped, batched = Distribution(), Distribution()
        for distribution in (looped, batched):
            distribution.record(7.5)
        tail = [12.0, 0.5, 9000.25]
        for value in tail:
            looped.record(value)
        batched.record_many(tail)
        assert batched.to_dict() == looped.to_dict()

    def test_record_many_huge_values_use_the_exact_scalar_path(self):
        """Values whose scaled magnitude reaches 2**53 leave float64's
        exact-integer range; record_many must still match record()."""
        values = [2.0 ** 53, 3.0, 2.0 ** 60 + 1.0]
        looped, batched = Distribution(), Distribution()
        for value in values:
            looped.record(value)
        batched.record_many(values)
        assert batched.to_dict() == looped.to_dict()

    def test_record_many_empty_is_a_no_op(self):
        distribution = Distribution()
        distribution.record_many([])
        assert distribution.count == 0
        assert distribution.to_dict() == Distribution().to_dict()

    def test_merge_equals_recording_everything_in_one(self):
        rng = random.Random(23)
        merged, whole = Distribution(), Distribution()
        for _ in range(3):
            part = Distribution()
            for _ in range(400):
                value = rng.uniform(1, 1e5)
                part.record(value)
                whole.record(value)
            merged.merge_from(part)
        assert merged.to_dict() == whole.to_dict()
        assert merged.p50 == whole.p50 and merged.p99 == whole.p99

    def test_merge_from_empty_keeps_extrema(self):
        distribution = Distribution()
        distribution.record(42)
        distribution.merge_from(Distribution())
        assert distribution.min == 42 and distribution.max == 42
        assert distribution.count == 1

    def test_p50_p95_p99_shortcuts(self):
        distribution = Distribution()
        for value in range(1, 101):
            distribution.record(value)
        assert distribution.p50 == 50.0
        assert distribution.p95 == 95.0
        assert distribution.p99 == 99.0


# ---------------------------------------------------------------------------
# Occupancy
# ---------------------------------------------------------------------------

class TestOccupancy:
    def test_peak_and_mean(self):
        occupancy = Occupancy(capacity=8)
        for level in (1, 3, 2):
            occupancy.record(level)
        assert occupancy.peak == 3
        assert occupancy.mean == pytest.approx(2.0)
        assert occupancy.capacity == 8

    def test_merge_takes_max_peak_and_sums_samples(self):
        a, b = Occupancy(4), Occupancy(8)
        a.record(2)
        b.record(7)
        a.merge_from(b)
        assert a.capacity == 8
        assert a.peak == 7
        assert a.samples == 2
        assert a.mean == pytest.approx(4.5)

    def test_round_trip(self):
        occupancy = Occupancy(16)
        occupancy.record(5)
        assert decode_metric(occupancy.to_dict()) == occupancy


# ---------------------------------------------------------------------------
# Breakdown
# ---------------------------------------------------------------------------

class _Cycles(Breakdown):
    CATEGORIES = ("comp", "mem", "idle")


class TestBreakdown:
    def test_declared_categories_default_to_zero(self):
        cycles = _Cycles(mem=2.0)
        assert cycles.get("comp") == 0.0
        assert cycles.get("mem") == 2.0
        assert cycles.total == 2.0

    def test_unknown_category_rejected(self):
        with pytest.raises(SimulationError):
            _Cycles(bogus=1.0)
        with pytest.raises(SimulationError):
            _Cycles().add("bogus", 1.0)

    def test_merged_and_scaled_preserve_type(self):
        a = _Cycles(comp=1.0, mem=2.0)
        b = _Cycles(comp=0.5, idle=1.0)
        merged = a.merged(b)
        assert isinstance(merged, _Cycles)
        assert merged.as_values() == {"comp": 1.5, "mem": 2.0, "idle": 1.0}
        assert a.scaled(2.0).as_values() == {"comp": 2.0, "mem": 4.0,
                                             "idle": 0.0}

    def test_total_sums_in_declaration_order(self):
        assert _Cycles(comp=1.0, mem=2.0, idle=4.0).total == 7.0

    def test_generic_breakdown_infers_categories(self):
        generic = Breakdown(x=1.0, y=2.0)
        assert generic.categories == ("x", "y")
        assert generic.total == 3.0

    def test_round_trip_decodes_as_base_breakdown(self):
        cycles = _Cycles(comp=1.0, mem=2.5)
        clone = decode_metric(cycles.to_dict())
        assert isinstance(clone, Breakdown)
        assert clone.as_values() == cycles.as_values()

    def test_merge_from(self):
        a = _Cycles(comp=1.0)
        a.merge_from(_Cycles(comp=2.0, mem=3.0))
        assert a.as_values() == {"comp": 3.0, "mem": 3.0, "idle": 0.0}


def test_decode_metric_rejects_garbage():
    with pytest.raises(SimulationError):
        decode_metric({"kind": "nope"})
    with pytest.raises(SimulationError):
        decode_metric({})
