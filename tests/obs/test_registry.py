"""Tests for the stats registry: registration, snapshots, merging."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import Counter, Histogram, Occupancy, StatsRegistry


def test_register_returns_the_live_object():
    registry = StatsRegistry()
    counter = registry.register("mem.l1d.misses", Counter())
    counter += 3
    assert registry.get("mem.l1d.misses") == 3


def test_duplicate_and_empty_paths_rejected():
    registry = StatsRegistry()
    registry.register("a.b", Counter())
    with pytest.raises(SimulationError):
        registry.register("a.b", Counter())
    with pytest.raises(SimulationError):
        registry.register("", Counter())


def test_non_metric_rejected():
    with pytest.raises(SimulationError):
        StatsRegistry().register("x", object())


def test_get_or_create_helpers_enforce_kinds():
    registry = StatsRegistry()
    counter = registry.counter("hits")
    assert registry.counter("hits") is counter
    registry.histogram("lat")
    registry.occupancy("pool", capacity=8)
    assert registry.get("pool").capacity == 8
    with pytest.raises(SimulationError):
        registry.histogram("hits")
    with pytest.raises(SimulationError):
        registry.counter("lat")
    with pytest.raises(SimulationError):
        registry.occupancy("lat")


def test_scope_prepends_prefix():
    registry = StatsRegistry()
    scope = registry.scope("cmp.core0")
    scope.counter("misses")
    nested = scope.scope("l1d")
    nested.counter("hits")
    assert "cmp.core0.misses" in registry
    assert "cmp.core0.l1d.hits" in registry


def test_container_protocol():
    registry = StatsRegistry()
    registry.counter("b")
    registry.counter("a")
    assert len(registry) == 2
    assert list(registry) == ["a", "b"]
    assert registry.paths() == ["a", "b"]
    assert "a" in registry and "z" not in registry


def test_to_dict_is_sorted_and_json_ready():
    registry = StatsRegistry()
    registry.counter("z").add(1)
    registry.counter("a").add(2)
    snapshot = registry.to_dict()
    assert list(snapshot) == ["a", "z"]
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_from_dict_round_trip_detaches_copies():
    registry = StatsRegistry()
    registry.counter("a").add(5)
    clone = StatsRegistry.from_dict(registry.to_dict())
    clone.get("a").add(1)
    assert registry.get("a") == 5
    assert clone.get("a") == 6


def test_merge_accumulates_matching_paths():
    a, b = StatsRegistry(), StatsRegistry()
    a.counter("hits").add(2)
    b.counter("hits").add(3)
    b.counter("only.b").add(7)
    a.merge(b)
    assert a.get("hits") == 5
    assert a.get("only.b") == 7
    # The adopted metric is a copy, not b's live object.
    b.get("only.b").add(1)
    assert a.get("only.b") == 7


def test_merge_accepts_snapshot_dicts():
    a = StatsRegistry()
    a.counter("x").add(1)
    a.merge({"x": {"kind": "counter", "value": 4}})
    assert a.get("x") == 5


def test_merge_is_associative_over_worker_snapshots():
    """Folding worker snapshots in any grouping gives the same totals."""
    def worker(value):
        registry = StatsRegistry()
        registry.counter("n").add(value)
        histogram = registry.histogram("h")
        histogram.record(value)
        return registry.to_dict()

    snapshots = [worker(v) for v in (1, 2, 3)]

    serial = StatsRegistry()
    for snapshot in snapshots:
        serial.merge(snapshot)

    grouped = StatsRegistry()
    pair = StatsRegistry()
    pair.merge(snapshots[0])
    pair.merge(snapshots[1])
    grouped.merge(pair)
    grouped.merge(snapshots[2])

    assert serial.to_dict() == grouped.to_dict()


def test_merge_kind_mismatch_raises():
    a, b = StatsRegistry(), StatsRegistry()
    a.counter("x")
    b.histogram("x")
    with pytest.raises(SimulationError):
        a.merge(b)


def test_merge_all_metric_kinds():
    a, b = StatsRegistry(), StatsRegistry()
    for registry, value in ((a, 2), (b, 5)):
        registry.counter("c").add(value)
        registry.histogram("h").record(value)
        registry.occupancy("o", capacity=8).record(value)
    a.merge(b)
    assert a.get("c") == 7
    assert a.get("h").count == 2
    assert a.get("o").peak == 5
