"""Tests for the system configuration (Table 2)."""

import pytest

from repro.config import (DEFAULT_CONFIG, CacheConfig, CoreConfig,
                          DramConfig, SystemConfig, TlbConfig, WidxConfig,
                          EVALUATED_WALKER_COUNTS, table2_rows)
from repro.errors import ConfigError


class TestTable2Defaults:
    def test_core_parameters(self):
        assert DEFAULT_CONFIG.freq_ghz == 2.0
        assert DEFAULT_CONFIG.num_cores == 4
        assert DEFAULT_CONFIG.ooo.issue_width == 4
        assert DEFAULT_CONFIG.ooo.rob_entries == 128
        assert DEFAULT_CONFIG.inorder.issue_width == 2
        assert not DEFAULT_CONFIG.inorder.out_of_order

    def test_l1_parameters(self):
        l1 = DEFAULT_CONFIG.l1d
        assert l1.size_bytes == 32 * 1024
        assert l1.block_bytes == 64
        assert l1.ports == 2
        assert l1.mshrs == 10
        assert l1.latency_cycles == 2

    def test_llc_parameters(self):
        llc = DEFAULT_CONFIG.llc
        assert llc.size_bytes == 4 * 1024 * 1024
        assert llc.latency_cycles == 6

    def test_memory_parameters(self):
        dram = DEFAULT_CONFIG.dram
        assert dram.num_controllers == 2
        assert dram.bandwidth_gbps == 12.8
        assert dram.access_latency_ns == 45.0
        assert DEFAULT_CONFIG.interconnect_cycles == 4

    def test_tlb_in_flight_limit(self):
        assert DEFAULT_CONFIG.tlb.in_flight == 2

    def test_evaluated_walker_counts(self):
        assert EVALUATED_WALKER_COUNTS == (1, 2, 4)

    def test_table2_rows_cover_every_parameter(self):
        rows = dict(table2_rows())
        assert "CMP Features" in rows
        assert "4 cores" in rows["CMP Features"]
        assert "10 MSHRs" in rows["L1-I/D Caches"]
        assert "2 in-flight" in rows["TLB"]


class TestDerivedValues:
    def test_cache_geometry(self):
        l1 = DEFAULT_CONFIG.l1d
        assert l1.num_blocks == 512
        assert l1.num_sets == 64

    def test_dram_latency_cycles(self):
        assert DEFAULT_CONFIG.dram.latency_cycles(2.0) == 90

    def test_block_service_cycles_positive(self):
        assert DEFAULT_CONFIG.dram.block_service_cycles(2.0, 64) > 0


class TestValidation:
    def test_cache_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=-1)
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, block_bytes=64, mshrs=0)

    def test_tlb_validation(self):
        with pytest.raises(ConfigError):
            TlbConfig(in_flight=0)
        with pytest.raises(ConfigError):
            TlbConfig(page_bytes=3000)

    def test_dram_validation(self):
        with pytest.raises(ConfigError):
            DramConfig(efficiency=0.0)

    def test_core_validation(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=0)

    def test_widx_validation(self):
        with pytest.raises(ConfigError):
            WidxConfig(num_walkers=0)
        with pytest.raises(ConfigError):
            WidxConfig(mode="turbo")
        with pytest.raises(ConfigError):
            WidxConfig(num_producers=2)

    def test_block_sizes_must_match(self):
        with pytest.raises(ConfigError):
            SystemConfig(l1d=CacheConfig(size_bytes=32 * 1024,
                                         block_bytes=32),
                         llc=CacheConfig(size_bytes=4 * 1024 * 1024,
                                         block_bytes=64, associativity=16))


class TestOverrides:
    def test_with_walkers(self):
        two = DEFAULT_CONFIG.with_walkers(2)
        assert two.widx.num_walkers == 2
        assert DEFAULT_CONFIG.widx.num_walkers == 4  # original untouched

    def test_with_widx(self):
        coupled = DEFAULT_CONFIG.with_widx(mode="coupled", num_walkers=8)
        assert coupled.widx.mode == "coupled"
        assert coupled.widx.num_walkers == 8
