"""Tests for the Section 3.2 analytical model against the paper's anchors."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.model.analytical import (AnalyticalModel, fig4a_series,
                                    fig4b_series, fig4c_series, fig5_series,
                                    max_walkers_by_mshrs)
from repro.model.params import ModelParams


@pytest.fixture
def model():
    return AnalyticalModel()


class TestEquation1:
    def test_walk_cycles_grow_with_miss_ratio(self, model):
        assert model.walk_cycles(0.0) < model.walk_cycles(0.5) \
            < model.walk_cycles(1.0)

    def test_hash_cycles_positive_and_fixed(self, model):
        assert model.hash_cycles() > 0


class TestEquation2_L1Bandwidth:
    def test_more_walkers_more_pressure(self, model):
        assert model.mem_ops_per_cycle(0.2, 4) > model.mem_ops_per_cycle(0.2, 2)

    def test_pressure_falls_with_miss_ratio(self, model):
        assert model.mem_ops_per_cycle(0.0, 8) > model.mem_ops_per_cycle(1.0, 8)

    def test_single_port_bottleneck_above_six_walkers(self, model):
        """Paper: 'a single-ported L1-D becomes the bottleneck for more
        than six walkers' at low LLC miss ratios."""
        assert model.mem_ops_per_cycle(0.0, 6) <= 1.0
        assert model.mem_ops_per_cycle(0.0, 7) > 1.0

    def test_two_ports_support_ten_walkers(self, model):
        """Paper: 'a two-ported L1-D can comfortably support 10 walkers'."""
        for miss in (0.0, 0.5, 1.0):
            assert model.mem_ops_per_cycle(miss, 10) <= 2.0
            assert model.l1_bandwidth_ok(miss, 10)


class TestEquation3_MSHRs:
    def test_outstanding_misses_linear_in_walkers(self, model):
        series = fig4b_series(model)
        per_walker = series[0][1]
        for walkers, misses in series:
            assert misses == pytest.approx(per_walker * walkers)

    def test_mshr_budget_caps_at_four_or_five(self, model):
        """Paper: 'the number of concurrent walkers is limited to four or
        five' with 8-10 MSHRs."""
        assert max_walkers_by_mshrs(model) in (4, 5)

    def test_tighter_budget_fewer_walkers(self):
        tight = AnalyticalModel(ModelParams(mshrs=8))
        assert max_walkers_by_mshrs(tight) == 4


class TestEquations45_OffChip:
    def test_eight_walkers_at_low_miss(self, model):
        """Paper: 'one memory controller can serve almost eight walkers'
        when LLC misses are rare."""
        assert model.walkers_per_mc(0.1) == pytest.approx(8.0, abs=1.0)

    def test_four_to_five_walkers_at_high_miss(self, model):
        """Paper: 'at high LLC miss ratios, the number of walkers per MC
        drops to four'."""
        assert model.walkers_per_mc(1.0) == pytest.approx(4.5, abs=0.7)

    def test_monotonically_decreasing(self, model):
        values = [value for _, value in fig4c_series(model)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestEquation6_Dispatcher:
    def test_utilization_increases_with_miss_ratio(self, model):
        assert model.walker_utilization(0.8, 4, 1) \
            > model.walker_utilization(0.1, 4, 1)

    def test_utilization_increases_with_bucket_depth(self, model):
        assert model.walker_utilization(0.2, 4, 3) \
            > model.walker_utilization(0.2, 4, 1)

    def test_utilization_decreases_with_walkers(self, model):
        assert model.walker_utilization(0.5, 2, 2) \
            >= model.walker_utilization(0.5, 8, 2)

    def test_utilization_capped_at_one(self, model):
        assert model.walker_utilization(1.0, 1, 3) == 1.0

    def test_dispatcher_feeds_four_walkers_in_main_regime(self, model):
        """Paper: 'one dispatcher is able to feed up to four walkers,
        except for very shallow buckets with low LLC miss ratios'."""
        assert model.walker_utilization(0.5, 4, 2) >= 0.8
        assert model.walker_utilization(0.9, 4, 1) >= 0.8

    def test_shallow_bucket_low_miss_exception(self, model):
        assert model.walker_utilization(0.0, 4, 1) < 0.5


class TestSeriesGenerators:
    def test_fig4a_has_all_walker_counts(self, model):
        series = fig4a_series(model)
        assert set(series) == {1, 2, 4, 8, 10}
        for points in series.values():
            assert points[0][0] == 0.0 and points[-1][0] == 1.0

    def test_fig5_structure(self, model):
        series = fig5_series(model)
        assert set(series) == {1, 2, 3}
        for by_walkers in series.values():
            assert set(by_walkers) == {2, 4, 8}


def test_params_from_config_match_table2():
    params = ModelParams.from_config(DEFAULT_CONFIG)
    assert params.l1_ports == 2
    assert params.mshrs == 10
    assert params.l1_latency == 2.0
    assert params.llc_latency == 14.0   # 6 + 2x4 crossbar
    assert params.dram_latency == pytest.approx(104.0)
    assert params.mc_blocks_per_cycle == pytest.approx(0.07, abs=0.01)


def test_hash_amat_mostly_l1():
    params = ModelParams()
    amat = params.hash_amat()
    # Seven of eight key loads hit the L1.
    assert amat < params.dram_latency / 4
    assert amat > params.l1_latency
