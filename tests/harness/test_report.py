"""Tests for the report formatter."""

import pytest

from repro.harness.report import Report


@pytest.fixture
def report():
    r = Report("Demo", ["name", "value"])
    r.add_row("alpha", 1.5)
    r.add_row("beta", 2.0)
    return r


def test_add_row_validates_arity(report):
    with pytest.raises(ValueError):
        report.add_row("only-one")


def test_column_extraction(report):
    assert report.column("value") == [1.5, 2.0]


def test_row_lookup(report):
    assert report.row_by("name", "beta") == ("beta", 2.0)
    with pytest.raises(KeyError):
        report.row_by("name", "gamma")


def test_cell_lookup(report):
    assert report.cell("name", "alpha", "value") == 1.5


def test_format_is_aligned(report):
    report.add_note("a note")
    text = report.format()
    lines = text.splitlines()
    assert lines[0] == "== Demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert "note: a note" in text
    # All body rows share the header's width.
    assert len(lines[3]) == len(lines[1])


def test_to_dict_roundtrip(report):
    data = report.to_dict()
    assert data["columns"] == ["name", "value"]
    assert data["rows"] == [["alpha", 1.5], ["beta", 2.0]]


def test_str_is_format(report):
    assert str(report) == report.format()
