"""Acceptance tests for the serving figure (fig-serve)."""

import io

import pytest

from repro.harness import figserve
from repro.harness.cli import main
from repro.harness.runner import MeasurementCache, RunSettings

#: Small settings keep each calibration point sub-second.
SETTINGS = RunSettings(probes=400, warmup=100, seed=42)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def report_body(text):
    return [line for line in text.splitlines() if not line.startswith("[")]


@pytest.fixture(scope="module")
def report():
    """One warm fig-serve report shared by the read-only assertions."""
    cache = MeasurementCache(runs=SETTINGS)
    return figserve.run_fig_serve(cache)


def test_declares_twelve_calibration_points():
    points = figserve.points_fig_serve()
    assert len(points) == 12
    assert all(point.op == "serve" for point in points)
    assert len({point.cache_tuple() for point in points}) == 12


def test_sweep_covers_every_backend_and_load_level(report):
    backends = report.column("backend")
    assert backends == [label
                        for label, _b, _w, _m in figserve.BACKENDS
                        for _ in figserve.LOAD_FRACTIONS]
    loads = report.column("load")
    assert set(loads) == {round(f, 2) for f in figserve.LOAD_FRACTIONS}


def test_p99_non_decreasing_in_offered_load_per_backend(report):
    rows = list(zip(report.column("backend"), report.column("offered"),
                    report.column("p99")))
    for label, _backend, _walkers, _mode in figserve.BACKENDS:
        curve = sorted((offered, p99) for b, offered, p99 in rows
                       if b == label)
        p99s = [p99 for _offered, p99 in curve]
        assert p99s == sorted(p99s), f"{label} p99 not monotone: {p99s}"


def test_widx_sustains_higher_saturation_than_inorder(report):
    saturation = {}
    for note in report.notes:
        if "saturation" in note and "requests/kcycle" in note:
            label, rest = note.split(":", 1)
            saturation[label] = float(rest.split()[1])
    assert saturation["widx-1"] > saturation["inorder"]
    assert "UNEXPECTED" not in "\n".join(report.notes)


def test_quantiles_ordered_in_every_row(report):
    for p50, p95, p99 in zip(report.column("p50"), report.column("p95"),
                             report.column("p99")):
        assert p50 <= p95 <= p99


def test_policy_variants_change_the_sweep():
    cache = MeasurementCache(runs=SETTINGS)
    fifo = figserve.run_fig_serve(cache, "fifo")
    batched = figserve.run_fig_serve(cache, "size:4")
    assert fifo.column("p50") != batched.column("p50")
    assert "policy=size:4" in batched.title


def test_cli_serial_parallel_and_cache_hit_are_bit_identical(tmp_path):
    """The headline acceptance property for fig-serve."""
    base = ("--figure", "fig-serve", "--probes", "400", "--warmup", "100",
            "--cache-dir", str(tmp_path))
    code1, serial = run_cli(*base, "--jobs", "1", "--no-cache")
    code2, parallel = run_cli(*base, "--jobs", "2")
    code3, cached = run_cli(*base, "--jobs", "1")
    assert code1 == code2 == code3 == 0
    assert "12 measured" in parallel
    assert "12 cached, 0 measured" in cached
    assert report_body(serial) == report_body(parallel) == report_body(cached)


def test_cli_rejects_bad_serve_policy():
    code, text = run_cli("--figure", "fig-serve", "--serve-policy", "lifo")
    assert code == 2
    assert "policy" in text


# ---------------------------------------------------------------------------
# byte-identity: the resilience layer must not move fig-serve by one bit
# ---------------------------------------------------------------------------

def test_fig_serve_report_matches_pre_resilience_golden():
    """The golden was rendered from the tree before admission control,
    walker faults, and the controller existed.  The resilient serving
    path is opt-in; with no SLO, no wrappers, and no fault model, the
    plain path runs untouched and the report is byte-identical."""
    import os
    golden_path = os.path.join(os.path.dirname(__file__), "goldens",
                               "figserve_p400_w100_s42.txt")
    with open(golden_path, "r", encoding="utf-8", newline="") as handle:
        golden = handle.read()
    cache = MeasurementCache(runs=SETTINGS)
    assert figserve.run_fig_serve(cache).format() + "\n" == golden


def test_fig_serve_with_slo_adds_goodput_columns():
    cache = MeasurementCache(runs=SETTINGS)
    report = figserve.run_fig_serve(cache, slo=5000.0)
    assert "goodput" in report.columns
    assert "shed" in report.columns
    assert all(shed == 0 for shed in report.column("shed"))  # no controller
    for goodput, achieved in zip(report.column("goodput"),
                                 report.column("achieved")):
        assert goodput <= achieved + 5e-5  # goodput rounds to 4 places


def test_fig_serve_controller_engages_under_the_slo(space=None):
    """A tight SLO plus a controller: the degraded-mode loop must
    actually shed at the highest load levels."""
    cache = MeasurementCache(runs=SETTINGS)
    report = figserve.run_fig_serve(cache, slo=1200.0,
                                    controller_spec="p99:3000:1:3:shed")
    assert sum(report.column("shed")) > 0
    assert "controller=p99:3000:1:3:shed" in report.title
