"""Acceptance tests for the resilience figure (fig-resilience)."""

import io

import pytest

from repro.harness import figresilience, figserve
from repro.harness.cli import main
from repro.harness.runner import MeasurementCache, RunSettings

SETTINGS = RunSettings(probes=400, warmup=100, seed=42)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def report_body(text):
    return [line for line in text.splitlines() if not line.startswith("[")]


@pytest.fixture(scope="module")
def report():
    """One warm fig-resilience report shared by the read-only asserts."""
    cache = MeasurementCache(runs=SETTINGS)
    return figresilience.run_fig_resilience(cache)


def test_reuses_the_fig_serve_calibration_points():
    ours = {p.cache_tuple() for p in figresilience.points_fig_resilience()}
    theirs = {p.cache_tuple() for p in figserve.points_fig_serve()}
    assert ours == theirs   # a warm fig-serve cache renders this figure


def test_grid_covers_every_backend_rate_and_load(report):
    expected = len(figresilience.FAULT_BACKENDS) \
        * len(figresilience.FAULT_RATES) \
        * len(figresilience.LOAD_FRACTIONS)
    assert len(report.column("backend")) == expected
    assert set(report.column("rate")) == set(figresilience.FAULT_RATES)
    assert set(report.column("load")) == set(figresilience.LOAD_FRACTIONS)
    # Only walker-backed backends are swept; in-order is the fallback.
    assert all(label.startswith("widx") for label in report.column("backend"))


def test_faults_land_at_positive_rates(report):
    rows = list(zip(report.column("rate"), report.column("faults")))
    assert all(faults == 0 for rate, faults in rows if rate == 0.0)
    assert any(faults > 0 for rate, faults in rows if rate > 0.0)


def test_conservation_holds_in_every_row(report):
    from repro.harness.figserve import SWEEP_REQUESTS
    for served, shed_frac, expired in zip(report.column("served"),
                                          report.column("shed_frac"),
                                          report.column("expired")):
        shed = round(shed_frac * SWEEP_REQUESTS)
        assert served + shed + expired == SWEEP_REQUESTS


def test_fault_free_rows_dominate_every_faulted_row(report):
    """Goodput under faults never beats the fault-free run of the same
    backend and load — capacity only degrades."""
    rows = list(zip(report.column("backend"), report.column("rate"),
                    report.column("load"), report.column("goodput")))
    clean = {(b, load): g for b, rate, load, g in rows if rate == 0.0}
    for backend, rate, load, goodput in rows:
        if rate > 0.0:
            assert goodput <= clean[(backend, load)], \
                f"{backend} load {load} rate {rate}: {goodput} beats clean"


def test_faults_visibly_degrade_the_most_walker_heavy_backend(report):
    """widx-4 has the most walkers to lose; at the highest rate its
    goodput must measurably drop (not a within-noise wiggle)."""
    rows = list(zip(report.column("backend"), report.column("rate"),
                    report.column("load"), report.column("goodput")))
    top_rate = max(figresilience.FAULT_RATES)
    for load in figresilience.LOAD_FRACTIONS:
        clean = next(g for b, r, l, g in rows
                     if b == "widx-4" and r == 0.0 and l == load)
        worst = next(g for b, r, l, g in rows
                     if b == "widx-4" and r == top_rate and l == load)
        assert worst < 0.75 * clean


def test_report_is_deterministic_across_fresh_caches():
    a = figresilience.run_fig_resilience(MeasurementCache(runs=SETTINGS))
    b = figresilience.run_fig_resilience(MeasurementCache(runs=SETTINGS))
    assert a.format() == b.format()


def test_notes_document_slo_and_fallback(report):
    text = "\n".join(report.notes)
    assert "fallback: inorder" in text
    assert "deaths per walker per megacycle" in text
    assert "non-increasing" in text


@pytest.mark.slow
def test_cli_serial_jobs_and_cache_hit_render_bit_identical(tmp_path):
    args = ("--figure", "fig-resilience", "--probes", "400",
            "--warmup", "100")
    code, serial = run_cli(*args)
    assert code == 0
    cache_dir = str(tmp_path / "cache")
    code, jobs = run_cli(*args, "--jobs", "4", "--cache-dir", cache_dir)
    assert code == 0
    code, hit = run_cli(*args, "--jobs", "4", "--cache-dir", cache_dir)
    assert code == 0
    assert report_body(serial) == report_body(jobs) == report_body(hit)
    assert "12 cached, 0 measured" in hit


@pytest.mark.slow
def test_cli_bulk_flag_renders_identically(tmp_path):
    """Every resilient sweep point declines bulk replay (faults and
    shedding are contended), so --bulk must fall back bit-identically."""
    args = ("--figure", "fig-resilience", "--probes", "400",
            "--warmup", "100")
    code, plain = run_cli(*args)
    assert code == 0
    code, bulk = run_cli(*args, "--bulk")
    assert code == 0
    assert report_body(plain) == report_body(bulk)
