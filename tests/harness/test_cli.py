"""Tests for the command-line driver."""

import io

import pytest

from repro.harness.cli import (EXPERIMENTS, build_parser, list_experiments,
                               main)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list():
    code, text = run_cli("--list")
    assert code == 0
    for name in EXPERIMENTS:
        assert name in text


def test_no_arguments_is_an_error():
    code, text = run_cli()
    assert code == 2
    assert "nothing to do" in text


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--figure", "99z"])


def test_single_analytic_figure():
    code, text = run_cli("--figure", "4b")
    assert code == 0
    assert "MSHR" in text
    assert "[4b:" in text


def test_fast_runs_all_analytic_experiments():
    code, text = run_cli("--fast")
    assert code == 0
    for name in ("2a", "2b", "4a", "4c", "5", "area"):
        assert f"[{name}:" in text


def test_probes_must_exceed_warmup():
    code, text = run_cli("--figure", "4b", "--probes", "100",
                         "--warmup", "200")
    assert code == 2


def test_repeatable_figure_flag():
    code, text = run_cli("--figure", "4b", "--figure", "4c")
    assert code == 0
    assert "[4b:" in text and "[4c:" in text


def test_simulated_figure_with_tiny_settings():
    code, text = run_cli("--figure", "8b", "--probes", "500",
                         "--warmup", "120")
    assert code == 0
    assert "Figure 8b" in text


def test_experiment_registry_covers_every_paper_artifact():
    expected = {"2a", "2b", "4a", "4b", "4c", "5", "8a", "8b", "9a", "9b",
                "10", "11", "query-level", "area"}
    assert set(EXPERIMENTS) == expected


def test_list_experiments_marks_kinds():
    text = list_experiments()
    assert "analytic" in text and "simulation" in text
