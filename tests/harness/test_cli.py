"""Tests for the command-line driver."""

import io

import pytest

from repro.harness.cli import (EXPERIMENTS, build_parser, list_experiments,
                               main)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list():
    code, text = run_cli("--list")
    assert code == 0
    for name in EXPERIMENTS:
        assert name in text


def test_no_arguments_is_an_error():
    code, text = run_cli()
    assert code == 2
    assert "nothing to do" in text


def test_unknown_figure_rejected():
    code, text = run_cli("--figure", "99z")
    assert code == 2
    assert "unknown figure '99z'" in text


def test_single_analytic_figure():
    code, text = run_cli("--figure", "4b")
    assert code == 0
    assert "MSHR" in text
    assert "[4b:" in text


def test_fast_runs_all_analytic_experiments():
    code, text = run_cli("--fast")
    assert code == 0
    for name in ("2a", "2b", "4a", "4c", "5", "area"):
        assert f"[{name}:" in text


def test_probes_must_exceed_warmup():
    code, text = run_cli("--figure", "4b", "--probes", "100",
                         "--warmup", "200")
    assert code == 2


def test_repeatable_figure_flag():
    code, text = run_cli("--figure", "4b", "--figure", "4c")
    assert code == 0
    assert "[4b:" in text and "[4c:" in text


def test_simulated_figure_with_tiny_settings():
    code, text = run_cli("--figure", "8b", "--probes", "500",
                         "--warmup", "120")
    assert code == 0
    assert "Figure 8b" in text


def test_experiment_registry_covers_every_paper_artifact():
    expected = {"2a", "2b", "4a", "4b", "4c", "5", "8a", "8b", "9a", "9b",
                "10", "11", "query-level", "area", "serve", "resilience",
                "pim", "indexes"}
    assert set(EXPERIMENTS) == expected


def test_list_experiments_marks_kinds():
    text = list_experiments()
    assert "analytic" in text and "simulation" in text


def test_every_simulated_experiment_declares_points():
    for name, (needs, _runner, points) in EXPERIMENTS.items():
        if needs:
            declared = points()
            assert declared, f"{name} declares no measurement points"
        else:
            assert points is None


def test_jobs_must_be_positive():
    code, _text = run_cli("--figure", "4b", "--jobs", "0")
    assert code == 2


def test_campaign_pre_pass_reported():
    code, text = run_cli("--figure", "8b", "--probes", "400",
                         "--warmup", "100", "--jobs", "1")
    assert code == 0
    assert "campaign: 12 points, 0 cached, 12 measured" in text


def test_cache_dir_second_run_hits(tmp_path):
    """The acceptance property: a repeat run with --cache-dir re-measures
    nothing and prints a byte-identical report."""
    args = ("--figure", "8b", "--probes", "400", "--warmup", "100",
            "--cache-dir", str(tmp_path), "--jobs", "1")
    code1, first = run_cli(*args)
    code2, second = run_cli(*args)
    assert code1 == code2 == 0
    assert "12 measured" in first
    assert "12 cached, 0 measured" in second

    def report_body(text):
        lines = text.splitlines()
        return [line for line in lines
                if not line.startswith("[")]  # drop timing/campaign lines

    assert report_body(first) == report_body(second)


def test_fig_serve_token_resolves():
    from repro.harness.cli import resolve_figures
    assert resolve_figures(["fig-serve"]) == ["serve"]
    assert resolve_figures(["serve"]) == ["serve"]


def test_fig_pim_token_resolves():
    from repro.harness.cli import resolve_figures
    assert resolve_figures(["fig-pim"]) == ["pim"]
    assert resolve_figures(["pim"]) == ["pim"]
    assert resolve_figures(["FIG-PIM"]) == ["pim"]


def test_fig_indexes_token_resolves():
    from repro.harness.cli import resolve_figures
    assert resolve_figures(["fig-indexes"]) == ["indexes"]
    assert resolve_figures(["indexes"]) == ["indexes"]
    assert resolve_figures(["FIG-INDEXES"]) == ["indexes"]


def test_bare_figure_numbers_still_expand_to_panels():
    from repro.harness.cli import resolve_figures
    assert resolve_figures(["8"]) == ["8a", "8b"]
    assert resolve_figures(["fig9"]) == ["9a", "9b"]
    assert resolve_figures(["10"]) == ["10"]
    assert resolve_figures(["8", "8b"]) == ["8a", "8b"]  # dedup, first wins


def test_nonnumeric_prefixes_no_longer_fuzzy_match():
    """Regression: 's' used to silently expand to 'serve'; every
    non-digit token must now match an experiment id exactly, and the
    rejection names the valid ids."""
    from repro.harness.cli import resolve_figures
    for token in ("s", "serv", "p", "pi", "quer", ""):
        with pytest.raises(ValueError) as excinfo:
            resolve_figures([token])
        message = str(excinfo.value)
        assert f"unknown figure {token!r}" in message
        assert "pim" in message and "serve" in message  # lists valid ids


def test_unknown_figure_error_lists_choices_on_the_cli():
    code, text = run_cli("--figure", "s")
    assert code == 2
    assert "unknown figure 's'" in text
    assert "choose from" in text
    assert "pim" in text


def test_bad_serve_policy_rejected_before_any_measurement():
    code, text = run_cli("--figure", "serve", "--serve-policy", "size:0")
    assert code == 2
    assert "batch" in text or "policy" in text


def test_chaos_rate_validated():
    code, _text = run_cli("--figure", "8b", "--chaos", "1",
                          "--chaos-rate", "1.5")
    assert code == 2


def test_chaos_flag_threads_through_with_a_reaper(monkeypatch):
    import repro.harness.cli as cli
    captured = {}

    def fake_run(names, settings, out=None, chaos=None, policy=None,
                 **kwargs):
        captured["chaos"] = chaos
        captured["policy"] = policy
        return []

    monkeypatch.setattr(cli, "run_experiments", fake_run)
    code, _ = run_cli("--figure", "8b", "--chaos", "9",
                      "--chaos-rate", "0.4")
    assert code == 0
    chaos = captured["chaos"]
    assert chaos is not None and chaos.seed == 9
    assert chaos.kill_rate == chaos.hang_rate == chaos.error_rate == 0.4
    # Injected hangs need a progress timeout to be recoverable, so the
    # CLI supplies one when the user did not.
    assert captured["policy"].point_timeout is not None


def test_chaos_zero_rate_smoke_end_to_end(tmp_path):
    """The --chaos plumbing (ChaosStore wrap, spec construction) at an
    injection rate of zero: the full path runs and the figure renders."""
    code, text = run_cli("--figure", "8b", "--probes", "400",
                         "--warmup", "100", "--jobs", "1",
                         "--cache-dir", str(tmp_path),
                         "--chaos", "3", "--chaos-rate", "0.0")
    assert code == 0
    assert "Figure 8b" in text


def test_no_cache_disables_the_store(tmp_path, monkeypatch):
    import repro.harness.cli as cli
    captured = {}

    def fake_run(names, settings, out=None, store=None, jobs=1, **kwargs):
        captured["store"] = store
        captured["jobs"] = jobs
        return []

    monkeypatch.setattr(cli, "run_experiments", fake_run)
    code, _ = run_cli("--figure", "8b", "--cache-dir", str(tmp_path),
                      "--no-cache", "--jobs", "3")
    assert code == 0
    assert captured["store"] is None
    assert captured["jobs"] == 3

    code, _ = run_cli("--figure", "8b", "--cache-dir", str(tmp_path),
                      "--jobs", "2")
    assert code == 0
    assert captured["store"] is not None
    assert captured["store"].directory == str(tmp_path)
