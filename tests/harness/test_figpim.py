"""Acceptance tests for the PIM figure (fig-pim) and the ``--pim`` flag.

The headline contracts: the bank-parallelism sweep renders byte-identical
to its committed golden across serial, parallel and cache-hit campaigns;
``--pim`` grows the serving figure by exactly one backend column (with
its own golden); and with the flag off every pre-existing report stays
byte-identical to the pre-PIM tree.
"""

import io
import os

import pytest

from repro.harness import fig8, figpim, figresilience, figserve
from repro.harness.cli import main
from repro.harness.runner import MeasurementCache, RunSettings

SETTINGS = RunSettings(probes=400, warmup=100, seed=42)

GOLDENS = os.path.join(os.path.dirname(__file__), "goldens")


def read_golden(name):
    with open(os.path.join(GOLDENS, name), "r", encoding="utf-8",
              newline="") as handle:
        return handle.read()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def report_body(text):
    return [line for line in text.splitlines() if not line.startswith("[")]


@pytest.fixture(scope="module")
def report():
    """One warm fig-pim report shared by the read-only assertions."""
    cache = MeasurementCache(runs=SETTINGS)
    return figpim.run_fig_pim(cache)


def test_declares_one_point_per_backend_row():
    points = figpim.points_fig_pim()
    assert len(points) == 2 + len(figpim.BANK_SWEEP)
    assert [point.op for point in points].count("pim") == len(
        figpim.BANK_SWEEP)
    assert len({point.cache_tuple() for point in points}) == len(points)


def test_sweep_rows_cover_every_bank_count(report):
    assert report.column("banks") == (
        ["-", "-"] + list(figpim.BANK_SWEEP))
    backends = report.column("backend")
    assert backends[0] == "ooo"
    assert backends[1] == f"widx-{figpim.PIM_WALKERS}"
    assert set(backends[2:]) == {f"pim-{figpim.PIM_WALKERS}"}


def test_speedup_is_monotone_in_bank_parallelism(report):
    pim_speedups = report.column("speedup_vs_ooo")[2:]
    assert pim_speedups == sorted(pim_speedups)
    assert "UNEXPECTED" not in "\n".join(report.notes)


def test_pim_overtakes_widx_on_the_dram_resident_kernel(report):
    """The whole point of the attachment: on the Large (DRAM-resident)
    kernel, enough bank parallelism beats the core-side walkers."""
    widx_speedup = report.column("speedup_vs_ooo")[1]
    best_pim = max(report.column("speedup_vs_ooo")[2:])
    assert best_pim > widx_speedup


def test_fig_pim_report_matches_golden(report):
    assert report.format() + "\n" == read_golden("pim_p400_w100_s42.txt")


def test_cli_serial_parallel_and_cache_hit_are_bit_identical(tmp_path):
    """The headline acceptance property for fig-pim."""
    base = ("--figure", "fig-pim", "--probes", "400", "--warmup", "100",
            "--cache-dir", str(tmp_path))
    code1, serial = run_cli(*base, "--jobs", "1", "--no-cache")
    code2, parallel = run_cli(*base, "--jobs", "2")
    code3, cached = run_cli(*base, "--jobs", "1")
    assert code1 == code2 == code3 == 0
    assert "6 measured" in parallel
    assert "6 cached, 0 measured" in cached
    assert report_body(serial) == report_body(parallel) == report_body(cached)
    golden_lines = read_golden("pim_p400_w100_s42.txt").splitlines()
    assert [line for line in report_body(serial) if line] == [
        line for line in golden_lines if line]


# ---------------------------------------------------------------------------
# --pim columns on the existing figures
# ---------------------------------------------------------------------------

def test_fig_serve_with_pim_matches_golden():
    cache = MeasurementCache(runs=SETTINGS)
    report = figserve.run_fig_serve(cache, include_pim=True)
    assert report.format() + "\n" == read_golden(
        "figserve_pim_p400_w100_s42.txt")


def test_pim_points_extend_but_never_replace_the_host_points():
    for declare in (fig8.points_fig8, figserve.points_fig_serve,
                    figresilience.points_fig_resilience):
        plain = declare()
        extended = declare(include_pim=True)
        assert len(extended) > len(plain)
        plain_keys = [point.cache_tuple() for point in plain]
        extended_keys = [point.cache_tuple() for point in extended]
        assert extended_keys[:len(plain_keys)] == plain_keys


def test_fig8b_gains_exactly_one_pim_column():
    cache = MeasurementCache(runs=SETTINGS)
    plain = fig8.run_fig8b(cache)
    extended = fig8.run_fig8b(cache, include_pim=True)
    assert extended.columns == plain.columns + [f"pim_{fig8.PIM_WALKERS}w"]
    for column in plain.columns:
        assert extended.column(column) == plain.column(column)


def test_resilience_with_pim_sweeps_the_extra_backend():
    cache = MeasurementCache(runs=SETTINGS)
    plain = figresilience.run_fig_resilience(cache)
    extended = figresilience.run_fig_resilience(cache, include_pim=True)
    plain_backends = set(plain.column("backend"))
    extended_backends = set(extended.column("backend"))
    assert extended_backends - plain_backends == {figserve.PIM_BACKEND[0]}
    # The host-side rows are untouched by the extra column.
    rows = len(plain.column("backend"))
    assert extended.column("goodput")[:rows] == plain.column("goodput")


def test_pre_existing_goldens_stay_byte_identical():
    """With ``--pim`` off, the PIM backend must be invisible: the fig8
    and fig-serve reports still match their pre-PIM goldens."""
    from repro.harness.fig8 import run_fig8b

    cache = MeasurementCache(runs=SETTINGS)
    serve = figserve.run_fig_serve(MeasurementCache(runs=SETTINGS))
    assert serve.format() + "\n" == read_golden("figserve_p400_w100_s42.txt")
    golden = read_golden("fig8_p400_w100_s42.txt")
    assert run_fig8b(cache).format() + "\n" in golden
