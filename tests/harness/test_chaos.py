"""Tests for the deterministic fault injector."""

import pytest

from repro.harness.cachestore import CacheStore
from repro.harness.chaos import (ChaosError, ChaosSpec, ChaosStore,
                                 inject_measurement_error)

# Fault-injection sweeps run full campaigns repeatedly.
pytestmark = pytest.mark.slow


def test_same_seed_same_decisions():
    keys = [f"widx/kernel/Small/{n}/shared" for n in range(50)]
    a = ChaosSpec(seed=11, kill_rate=0.3)
    b = ChaosSpec(seed=11, kill_rate=0.3)
    assert ([a.wants("kill", key, a.kill_rate) for key in keys]
            == [b.wants("kill", key, b.kill_rate) for key in keys])


def test_different_seeds_differ():
    keys = [f"point-{n}" for n in range(200)]
    a = ChaosSpec(seed=1, kill_rate=0.5)
    b = ChaosSpec(seed=2, kill_rate=0.5)
    assert ([a.wants("kill", key, 0.5) for key in keys]
            != [b.wants("kill", key, 0.5) for key in keys])


def test_sites_draw_independently():
    spec = ChaosSpec(seed=3)
    keys = [f"point-{n}" for n in range(200)]
    kills = [spec.wants("kill", key, 0.5) for key in keys]
    hangs = [spec.wants("hang", key, 0.5) for key in keys]
    assert kills != hangs


def test_rate_extremes():
    spec = ChaosSpec(seed=5)
    assert not spec.wants("kill", "anything", 0.0)
    assert spec.wants("kill", "anything", 1.0)


def test_rates_roughly_calibrated():
    spec = ChaosSpec(seed=9)
    hits = sum(spec.wants("error", f"key-{n}", 0.25) for n in range(2000))
    assert 0.15 < hits / 2000 < 0.35


def test_injection_budget_limits_attempts():
    spec = ChaosSpec(seed=5, error_rate=1.0, max_injections=2)
    assert spec.should_inject("error", "k", attempt=0, rate=1.0)
    assert spec.should_inject("error", "k", attempt=1, rate=1.0)
    assert not spec.should_inject("error", "k", attempt=2, rate=1.0)


def test_target_filter():
    spec = ChaosSpec(seed=5, target="Large")
    assert not spec.wants("kill", "widx/kernel/Small/1", 1.0)
    assert spec.wants("kill", "widx/kernel/Large/1", 1.0)


def test_rate_validation():
    with pytest.raises(ValueError):
        ChaosSpec(seed=1, kill_rate=1.5)
    with pytest.raises(ValueError):
        ChaosSpec(seed=1, max_injections=-1)


def test_measurement_error_injection():
    spec = ChaosSpec(seed=5, error_rate=1.0, max_injections=1)
    with pytest.raises(ChaosError):
        inject_measurement_error(spec, "some-point", attempt=0)
    inject_measurement_error(spec, "some-point", attempt=1)  # budget spent
    inject_measurement_error(None, "some-point", attempt=0)  # chaos off


def test_chaos_store_transient_read_error_then_recovers(tmp_path):
    store = CacheStore(str(tmp_path))
    chaotic = ChaosStore(store, ChaosSpec(seed=5, io_error_rate=1.0,
                                          max_injections=1))
    chaotic.put("abc", {"value": 1.5})
    with pytest.raises(OSError):
        chaotic.get("abc")
    assert chaotic.get("abc") == {"value": 1.5}  # budget spent: clean read
    assert chaotic.injected["io-read"] == 1


def test_chaos_store_corruption_rejected_by_checksum(tmp_path):
    store = CacheStore(str(tmp_path))
    chaotic = ChaosStore(store, ChaosSpec(seed=5, corrupt_rate=1.0,
                                          max_injections=1))
    chaotic.put("abc", {"value": 2.25})
    # The torn entry fails checksum verification: a miss, never a crash.
    assert store.get("abc") is None
    assert store.rejected == 1
    # A rewrite is past the injection budget and survives.
    chaotic.put("abc", {"value": 2.25})
    assert store.get("abc") == {"value": 2.25}


def test_chaos_store_delegates(tmp_path):
    store = CacheStore(str(tmp_path))
    chaotic = ChaosStore(store, ChaosSpec(seed=5))
    chaotic.put("k", {"v": 1})
    assert "k" in chaotic
    assert len(chaotic) == 1
    assert chaotic.path("k") == store.path("k")
    assert chaotic.rejected == 0  # __getattr__ falls through to the store
