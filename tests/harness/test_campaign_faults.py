"""Fault-tolerance tests for the campaign scheduler.

Each test injects one deterministic fault class (see
``repro.harness.chaos``) and asserts the campaign's advertised recovery:
retry with backoff for kills and errors, progress-timeout reaping for
hangs, degradation to serial when workers keep dying, and a failure
manifest plus poisoned cache entries when retries run out.
"""

import pytest

from repro.errors import CampaignInterrupted, MeasurementFailed
from repro.harness import campaign as campaign_module
from repro.harness.campaign import (Campaign, RetryPolicy, kernel_points,
                                    _measure_point)
from repro.harness.cachestore import encode_measurement
from repro.harness.chaos import ChaosSpec
from repro.harness.runner import MeasurementCache, RunSettings

# Campaign fault drills re-run full figure campaigns.
pytestmark = pytest.mark.slow

RUNS = RunSettings(probes=400, warmup=100)

#: Two workloads so the parallel scheduler has two groups to fan out.
#: Small/Medium measure in well under a second each, so a progress
#: timeout of a few seconds cannot reap a *healthy* worker even on a
#: single-core CI machine where parallel workers contend for the CPU.
POINTS = kernel_points(["Small", "Medium"], [1])


def _fresh_cache():
    return MeasurementCache(runs=RUNS)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(point_timeout=0)
    with pytest.raises(ValueError):
        RetryPolicy(degrade_after=0)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff_base=0.5, backoff_cap=3.0)
    assert policy.backoff(0) == 0.0
    assert policy.backoff(1) == 0.5
    assert policy.backoff(2) == 1.0
    assert policy.backoff(3) == 2.0
    assert policy.backoff(4) == 3.0  # capped
    assert policy.backoff(10) == 3.0


def test_worker_kill_retried_and_recovered():
    cache = _fresh_cache()
    chaos = ChaosSpec(seed=7, kill_rate=1.0, max_injections=1)
    campaign = Campaign(
        cache, policy=RetryPolicy(max_retries=2, backoff_base=0.01,
                                  degrade_after=50),
        chaos=chaos)
    outcome = campaign.run(POINTS, jobs=2)
    assert outcome.ok
    assert outcome.measured_points == len(POINTS)
    assert outcome.retries >= 1
    assert not outcome.degraded_to_serial
    assert not outcome.failures


def test_hung_worker_reaped_by_progress_timeout():
    cache = _fresh_cache()
    chaos = ChaosSpec(seed=7, hang_rate=1.0, max_injections=1,
                      hang_seconds=300.0)
    # The timeout must exceed a legitimate measurement (a few seconds at
    # these probe counts) while still reaping the 300s hang quickly.
    campaign = Campaign(
        cache, policy=RetryPolicy(max_retries=2, backoff_base=0.01,
                                  point_timeout=10.0, degrade_after=50),
        chaos=chaos)
    outcome = campaign.run(POINTS, jobs=2)
    assert outcome.ok
    assert outcome.measured_points == len(POINTS)
    assert outcome.retries >= 1


def test_retry_exhaustion_poisons_and_manifests():
    cache = _fresh_cache()
    chaos = ChaosSpec(seed=7, error_rate=1.0, max_injections=99)
    campaign = Campaign(
        cache, policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        chaos=chaos)
    outcome = campaign.run(POINTS, jobs=1)  # serial: errors inject there too
    assert not outcome.ok
    assert len(outcome.failures) == len(POINTS)
    assert outcome.measured_points == 0
    for failure in outcome.failures:
        assert failure.kind == "error"
        assert failure.attempts == 2  # initial try + 1 retry
        assert "ChaosError" in failure.detail

    # Poisoned points fail fast instead of silently re-simulating.
    with pytest.raises(MeasurementFailed, match="poisoned"):
        cache.baseline("kernel", "Small", "ooo")

    # A new campaign is a fresh chance: poison clears, points measure.
    clean = Campaign(cache, policy=RetryPolicy(max_retries=0))
    recovered = clean.run(POINTS, jobs=1)
    assert recovered.ok
    assert recovered.measured_points == len(POINTS)
    assert cache.baseline("kernel", "Small", "ooo").cycles_per_tuple > 0


def test_persistent_worker_failure_degrades_to_serial():
    cache = _fresh_cache()
    # Unlimited kills: every worker attempt dies, so only the serial
    # executor (which never runs worker fault sites) can finish.
    chaos = ChaosSpec(seed=7, kill_rate=1.0, max_injections=10_000)
    campaign = Campaign(
        cache, policy=RetryPolicy(max_retries=50, backoff_base=0.0,
                                  degrade_after=2),
        chaos=chaos)
    outcome = campaign.run(POINTS, jobs=2)
    assert outcome.degraded_to_serial
    assert outcome.ok
    assert outcome.measured_points == len(POINTS)


def test_chaos_recovered_results_bit_identical_to_fault_free():
    clean_cache = _fresh_cache()
    Campaign(clean_cache).run(POINTS, jobs=1)

    chaos_cache = _fresh_cache()
    chaos = ChaosSpec(seed=13, kill_rate=0.6, error_rate=0.6,
                      max_injections=1)
    outcome = Campaign(
        chaos_cache, policy=RetryPolicy(max_retries=3, backoff_base=0.01,
                                        degrade_after=50),
        chaos=chaos).run(POINTS, jobs=2)
    assert outcome.ok

    for point in POINTS:
        clean = encode_measurement(_measure_point(clean_cache, point))
        recovered = encode_measurement(_measure_point(chaos_cache, point))
        assert clean == recovered, point


def test_keyboard_interrupt_parallel_raises_campaign_interrupted(monkeypatch):
    cache = _fresh_cache()

    def interrupt(*_args, **_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(campaign_module.mpconnection, "wait", interrupt)
    campaign = Campaign(cache)
    with pytest.raises(CampaignInterrupted) as excinfo:
        campaign.run(POINTS, jobs=2)
    assert "resume" in str(excinfo.value)
    assert excinfo.value.total == len(POINTS)


def test_keyboard_interrupt_serial_raises_campaign_interrupted(monkeypatch):
    cache = _fresh_cache()

    def interrupt(*_args, **_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(campaign_module, "_measure_point", interrupt)
    campaign = Campaign(cache)
    with pytest.raises(CampaignInterrupted):
        campaign.run(POINTS, jobs=1)


def test_chaos_killed_serve_point_retries_bit_identical():
    """The serve op rides the same retry/chaos plumbing as every other
    campaign op: a worker killed while calibrating a service point is
    retried, and the recovered measurement is bit-identical to a
    fault-free campaign's."""
    from repro.harness.campaign import serve_point

    serve_points = [serve_point("kernel", "Small", "widx", 8, 1, "shared"),
                    serve_point("kernel", "Small", "inorder", 8)]

    clean_cache = _fresh_cache()
    Campaign(clean_cache).run(serve_points, jobs=1)

    chaos_cache = _fresh_cache()
    chaos = ChaosSpec(seed=11, kill_rate=1.0, error_rate=0.5,
                      max_injections=1, target="serve")
    outcome = Campaign(
        chaos_cache, policy=RetryPolicy(max_retries=3, backoff_base=0.01,
                                        degrade_after=50),
        chaos=chaos).run(serve_points, jobs=2)
    assert outcome.ok
    assert outcome.measured_points == len(serve_points)

    for point in serve_points:
        clean = encode_measurement(_measure_point(clean_cache, point))
        recovered = encode_measurement(_measure_point(chaos_cache, point))
        assert clean == recovered, point
