"""Tests for the persistent measurement store and its codec."""

import json
import os

import pytest

from repro.cpu.timing import CoreTimingResult
from repro.harness.cachestore import (CACHE_FORMAT, CacheDecodeError,
                                      CacheStore, decode_measurement,
                                      encode_measurement)
from repro.widx.machine import WidxRunResult
from repro.widx.offload import OffloadOutcome
from repro.widx.unit import UnitCycleBreakdown, UnitStats


def sample_timing() -> CoreTimingResult:
    return CoreTimingResult(
        core="ooo", cycles_per_tuple=123.456789012345, ci_half_width=1.5,
        tuples=300, total_cycles=37037.0367, mem_stall_per_tuple=55.5,
        tlb_stall_per_tuple=0.25, l1_miss_ratio=0.125, llc_miss_ratio=0.5)


def sample_offload() -> OffloadOutcome:
    stats = {
        "dispatcher": UnitStats(invocations=1, instructions=900, loads=300,
                                cycles=UnitCycleBreakdown(comp=10.5, mem=2.0)),
        "walker0": UnitStats(invocations=300, instructions=2400, loads=900,
                             emitted=280,
                             cycles=UnitCycleBreakdown(
                                 comp=100.25, mem=555.125, tlb=3.5,
                                 idle=20.0, queue=7.75)),
    }
    run = WidxRunResult(total_cycles=4096.0009765625, tuples=300,
                        matches=280, config_cycles=24.0, unit_stats=stats)
    return OffloadOutcome(run=run, validated=True)


class TestCodec:
    def test_core_timing_round_trip(self):
        timing = sample_timing()
        clone = decode_measurement(
            json.loads(json.dumps(encode_measurement(timing))))
        assert clone == timing  # dataclass equality: every field, bit-exact

    def test_offload_round_trip_preserves_everything_reports_use(self):
        outcome = sample_offload()
        clone = decode_measurement(
            json.loads(json.dumps(encode_measurement(outcome))))
        assert clone.cycles_per_tuple == outcome.cycles_per_tuple
        assert clone.matches == outcome.matches
        assert clone.validated is True
        assert clone.fell_back is False
        original = outcome.run.walker_cycles_per_tuple()
        restored = clone.run.walker_cycles_per_tuple()
        assert restored == original  # frozen dataclass, bit-exact floats
        assert clone.run.unit_stats["walker0"].emitted == 280

    def test_unknown_type_rejected(self):
        with pytest.raises(CacheDecodeError):
            decode_measurement({"type": "mystery"})
        with pytest.raises(CacheDecodeError):
            decode_measurement({"type": "offload"})  # missing fields
        with pytest.raises(CacheDecodeError):
            encode_measurement(object())


class TestCacheStore:
    def test_round_trip(self, tmp_path):
        store = CacheStore(str(tmp_path))
        payload = encode_measurement(sample_timing())
        store.put("k1", payload)
        assert store.get("k1") == payload
        assert store.hits == 1
        assert "k1" in store
        assert len(store) == 1

    def test_missing_key(self, tmp_path):
        store = CacheStore(str(tmp_path))
        assert store.get("absent") is None
        assert store.misses == 1

    def test_overwrite(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("k", {"type": "core_timing", "data": {}})
        newer = encode_measurement(sample_timing())
        store.put("k", newer)
        assert store.get("k") == newer
        assert len(store) == 1

    def test_truncated_file_rejected(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("k", encode_measurement(sample_timing()))
        path = store.path("k")
        with open(path, "r+") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert store.get("k") is None
        assert store.rejected == 1

    def test_garbage_file_rejected(self, tmp_path):
        store = CacheStore(str(tmp_path))
        with open(store.path("k"), "w") as handle:
            handle.write("not json at all {{{")
        assert store.get("k") is None
        assert store.rejected == 1

    def test_tampered_payload_fails_checksum(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("k", encode_measurement(sample_timing()))
        with open(store.path("k")) as handle:
            wrapper = json.load(handle)
        wrapper["payload"]["data"]["cycles_per_tuple"] = 1.0  # doctor it
        with open(store.path("k"), "w") as handle:
            json.dump(wrapper, handle)
        assert store.get("k") is None
        assert store.rejected == 1

    def test_key_mismatch_rejected(self, tmp_path):
        """An entry copied/renamed to the wrong key must not alias."""
        store = CacheStore(str(tmp_path))
        store.put("original", encode_measurement(sample_timing()))
        os.rename(store.path("original"), store.path("imposter"))
        assert store.get("imposter") is None

    def test_stale_format_rejected(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("k", encode_measurement(sample_timing()))
        with open(store.path("k")) as handle:
            wrapper = json.load(handle)
        wrapper["format"] = CACHE_FORMAT + 1
        with open(store.path("k"), "w") as handle:
            json.dump(wrapper, handle)
        assert store.get("k") is None

    def test_no_temp_file_debris(self, tmp_path):
        store = CacheStore(str(tmp_path))
        for index in range(5):
            store.put(f"k{index}", {"type": "core_timing", "data": {}})
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.startswith(".tmp-")]

    def test_stale_temps_swept_on_open(self, tmp_path):
        # A worker killed mid-put abandons a temp file; reopening the
        # store sweeps temps old enough that no live writer can own them.
        stale = tmp_path / ".tmp-abandoned.json"
        stale.write_text("half a wr")
        old = os.path.getmtime(str(stale)) - 7200
        os.utime(str(stale), (old, old))
        store = CacheStore(str(tmp_path))
        assert store.swept_temps == 1
        assert not stale.exists()

    def test_fresh_temps_survive_sweep(self, tmp_path):
        # A young temp may belong to a concurrent writer mid-put.
        fresh = tmp_path / ".tmp-in-flight.json"
        fresh.write_text("being written")
        store = CacheStore(str(tmp_path))
        assert store.swept_temps == 0
        assert fresh.exists()

    def test_sweep_ignores_entry_files(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("keep", {"type": "core_timing", "data": {}})
        old = os.path.getmtime(store.path("keep")) - 7200
        os.utime(store.path("keep"), (old, old))
        reopened = CacheStore(str(tmp_path))
        assert reopened.swept_temps == 0
        assert reopened.get("keep") is not None
