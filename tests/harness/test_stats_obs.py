"""Observability plumbing through the harness: merged stats, CLI exports.

The core identity under test: a measurement's stats snapshot rides inside
its payload, so the merged campaign registry is the same whether points
were measured serially, by parallel workers, or loaded back from the
persistent store.
"""

import io
import json

import pytest

from repro.harness.campaign import Campaign, kernel_points
from repro.harness.cachestore import CacheStore
from repro.harness.cli import main, resolve_figures
from repro.harness.runner import MeasurementCache, RunSettings

SETTINGS = RunSettings(probes=400, warmup=100, seed=42)

#: Two workloads so the parallel executor actually fans out (one group
#: per workload), one walker count to keep the simulation volume small.
POINTS = kernel_points(["Small", "Medium"], [1])


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# merged stats identity
# ---------------------------------------------------------------------------

def test_merged_stats_identical_serial_parallel_and_cache_hit(tmp_path):
    serial_cache = MeasurementCache(runs=SETTINGS)
    result = Campaign(serial_cache).run(POINTS, jobs=1)
    assert result.measured_points == len(POINTS)
    serial = serial_cache.merged_stats().to_dict()

    store = CacheStore(str(tmp_path))
    parallel_cache = MeasurementCache(runs=SETTINGS, store=store)
    result = Campaign(parallel_cache).run(POINTS, jobs=2)
    assert result.measured_points == len(POINTS)
    parallel = parallel_cache.merged_stats().to_dict()

    hit_cache = MeasurementCache(runs=SETTINGS, store=CacheStore(str(tmp_path)))
    result = Campaign(hit_cache).run(POINTS, jobs=1)
    assert result.measured_points == 0
    assert result.cached_points == len(POINTS)
    cache_hit = hit_cache.merged_stats().to_dict()

    assert serial
    assert serial == parallel == cache_hit


def test_merged_stats_covers_every_layer(tmp_path):
    cache = MeasurementCache(runs=SETTINGS)
    Campaign(cache).run(POINTS, jobs=1)
    paths = set(cache.merged_stats().paths())
    for expected in ("cpu.ooo.uops_executed", "mem.l1d.misses",
                     "mem.tlb.accesses", "mem.dram.blocks_transferred",
                     "widx.walker0.invocations", "widx.producer.emitted",
                     "sim.engine.dispatched", "sim.queue.hashed-keys.depth"):
        assert expected in paths, f"missing {expected}"


def test_merged_stats_skips_results_without_snapshots():
    cache = MeasurementCache(runs=SETTINGS)
    cache.install(("baseline", "kernel", "Small", "ooo"), object(),
                  persist=False)
    assert cache.merged_stats().to_dict() == {}


# ---------------------------------------------------------------------------
# figure-token resolution
# ---------------------------------------------------------------------------

def test_resolve_exact_ids_pass_through():
    assert resolve_figures(["8b"]) == ["8b"]
    assert resolve_figures(["query-level"]) == ["query-level"]
    assert resolve_figures(["area"]) == ["area"]


def test_resolve_fig_prefix_and_case():
    assert resolve_figures(["FIG8B"]) == ["8b"]
    assert resolve_figures(["Fig4c"]) == ["4c"]


def test_resolve_bare_number_expands_to_panels():
    assert resolve_figures(["fig8"]) == ["8a", "8b"]
    assert resolve_figures(["9"]) == ["9a", "9b"]
    assert resolve_figures(["4"]) == ["4a", "4b", "4c"]


def test_resolve_exact_match_wins_over_expansion():
    # "10" is itself an experiment id; it must not expand further.
    assert resolve_figures(["10"]) == ["10"]
    assert resolve_figures(["5"]) == ["5"]


def test_resolve_drops_duplicates_first_wins():
    assert resolve_figures(["8", "8a", "fig8b"]) == ["8a", "8b"]


def test_resolve_unknown_token_raises():
    with pytest.raises(ValueError, match="unknown figure 'fig99'"):
        resolve_figures(["fig99"])
    with pytest.raises(ValueError, match="unknown figure"):
        resolve_figures(["fig"])


def test_cli_expands_figure_number(tmp_path):
    code, text = run_cli("--figure", "fig4")
    assert code == 0
    for name in ("4a", "4b", "4c"):
        assert f"[{name}:" in text


# ---------------------------------------------------------------------------
# CLI exports
# ---------------------------------------------------------------------------

def test_cli_stats_json_and_trace_end_to_end(tmp_path):
    stats_path = tmp_path / "stats.json"
    trace_path = tmp_path / "trace.json"
    code, text = run_cli("--figure", "8b", "--probes", "400",
                         "--warmup", "100", "--jobs", "2",
                         "--stats-json", str(stats_path),
                         "--trace", str(trace_path))
    assert code == 0
    assert f"[stats written to {stats_path}]" in text
    assert "re-simulated" in text

    payload = json.loads(stats_path.read_text())
    assert payload["format"] == 1
    assert payload["experiments"] == ["8b"]
    assert payload["settings"] == {"probes": 400, "warmup": 100, "seed": 42}
    assert "sim.engine.dispatched" in payload["registry"]
    assert payload["registry"]["sim.engine.dispatched"]["value"] > 0
    assert "failures" not in payload
    titles = [report["title"] for report in payload["reports"]]
    assert any("Figure 8b" in title for title in titles)

    events = json.loads(trace_path.read_text())
    tracks = {event["args"]["name"] for event in events
              if event["ph"] == "M"}
    assert any(track.startswith("widx.") for track in tracks)
    assert any(event["ph"] == "X" for event in events)
    assert any(event["ph"] == "C" for event in events)


def test_cli_stats_json_analytic_selection(tmp_path):
    stats_path = tmp_path / "stats.json"
    code, _text = run_cli("--figure", "4b", "--stats-json", str(stats_path))
    assert code == 0
    payload = json.loads(stats_path.read_text())
    assert payload["registry"] == {}  # analytic figures simulate nothing
    assert payload["reports"]


def test_cli_trace_without_widx_points_is_empty_but_valid(tmp_path):
    trace_path = tmp_path / "trace.json"
    code, text = run_cli("--figure", "4b", "--trace", str(trace_path))
    assert code == 0
    assert "no Widx point" in text
    assert json.loads(trace_path.read_text()) == []


# ---------------------------------------------------------------------------
# walker trails through the CLI
# ---------------------------------------------------------------------------

def test_cli_trails_round_trip_through_stats_json(tmp_path):
    from repro.obs import Trail

    stats_path = tmp_path / "stats.json"
    trace_path = tmp_path / "trace.json"
    code, text = run_cli("--figure", "8b", "--probes", "400",
                         "--warmup", "100",
                         "--stats-json", str(stats_path),
                         "--trace", str(trace_path),
                         "--trails", "32")
    assert code == 0
    assert "trails captured" in text

    payload = json.loads(stats_path.read_text())
    trail = Trail.from_dict(payload["trails"])
    assert len(trail) == 32  # ring bound held
    assert trail.recorded > 32  # the drill ran more probes than that
    levels = {level for entry in trail.entries
              for _ts, _addr, level in entry["hops"]}
    assert levels <= {"L1", "LLC", "DRAM"} and levels
    # The trail ring also feeds the Chrome trace: per-walker trail tracks.
    events = json.loads(trace_path.read_text())
    tracks = {event["args"]["name"] for event in events
              if event["ph"] == "M"}
    assert any(track.startswith("trail.walker") for track in tracks)


def test_cli_stats_json_without_trails_has_no_trails_key(tmp_path):
    stats_path = tmp_path / "stats.json"
    trace_path = tmp_path / "trace.json"
    code, _text = run_cli("--figure", "8b", "--probes", "400",
                          "--warmup", "100",
                          "--stats-json", str(stats_path),
                          "--trace", str(trace_path))
    assert code == 0
    assert "trails" not in json.loads(stats_path.read_text())


def test_cli_trails_needs_trace():
    code, text = run_cli("--figure", "8b", "--trails", "16")
    assert code == 2
    assert "--trails needs --trace" in text


def test_cli_trails_must_be_positive(tmp_path):
    code, text = run_cli("--figure", "8b", "--trails", "0",
                         "--trace", str(tmp_path / "trace.json"))
    assert code == 2
    assert "--trails must be >= 1" in text
