"""Acceptance tests for the ordered-index zoo figure (fig-indexes).

The headline properties: the report is deterministic and byte-identical
across serial, parallel, cache-hit and ``--bulk`` campaigns; the new
``"index"`` measurement op rides the campaign's chaos-recovery plumbing
bit-identically; and the opt-in batched serving column extends fig-serve
without moving its committed golden.

Regenerate the golden (only after an *intentional* model change) with::

    PYTHONPATH=src python -c "
    from tests.harness.test_figindexes import regenerate; regenerate()"
"""

import io
import os

import pytest

from repro.harness import figindexes, figserve
from repro.harness.campaign import (Campaign, RetryPolicy, _measure_point,
                                    index_point)
from repro.harness.cachestore import encode_measurement
from repro.harness.chaos import ChaosSpec
from repro.harness.cli import main
from repro.harness.runner import MeasurementCache, RunSettings

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

SETTINGS = RunSettings(probes=400, warmup=100, seed=42)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def report_body(text):
    return [line for line in text.splitlines() if not line.startswith("[")]


def _figindexes_text() -> str:
    cache = MeasurementCache(runs=SETTINGS)
    return figindexes.run_fig_indexes(cache).format() + "\n"


def _golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8",
              newline="") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# point declarations
# ---------------------------------------------------------------------------

def test_declares_one_point_per_backend_per_class():
    points = figindexes.points_fig_indexes()
    # 5 rows x 3 backends; the hash row rides the fig8 kernel points.
    assert len(points) == 15
    assert len({point.cache_tuple() for point in points}) == 15
    index_ops = [p for p in points if p.op == "index"]
    assert len(index_ops) == 12
    assert {p.kind for p in index_ops} == {"ordered"}
    assert {p.name.split(":")[1] for p in index_ops} == {"Small"}


def test_hash_row_shares_the_fig8_small_points():
    from repro.harness import fig8
    fig8_tuples = {p.cache_tuple() for p in fig8.points_fig8(["Small"])}
    index_tuples = {p.cache_tuple() for p in figindexes.points_fig_indexes()}
    shared = fig8_tuples & index_tuples
    # The ooo baseline and the 4-walker shared offload overlap (fig8
    # does not declare an in-order point).
    assert len(shared) == 2


def test_batched_point_uses_the_coupled_organization():
    points = figindexes.points_fig_indexes()
    batched = [p for p in points
               if p.op == "index" and p.name.startswith("batched")
               and p.core == "widx"]
    assert len(batched) == 1
    assert batched[0].mode == "coupled"


# ---------------------------------------------------------------------------
# the report itself
# ---------------------------------------------------------------------------

def test_figindexes_report_matches_golden():
    assert _figindexes_text() == _golden("figindexes_p400_w100_s42.txt")


def test_report_covers_every_traversal_class():
    cache = MeasurementCache(runs=SETTINGS)
    report = figindexes.run_fig_indexes(cache)
    assert report.column("index") == ["hash", "btree", "trie", "wormhole",
                                      "batched"]
    for column in ("inorder", "ooo", f"widx_{figindexes.INDEX_WALKERS}w"):
        assert all(v > 0 for v in report.column(column))
    for speedup, ooo, widx in zip(report.column("speedup"),
                                  report.column("ooo"),
                                  report.column(
                                      f"widx_{figindexes.INDEX_WALKERS}w")):
        assert speedup == pytest.approx(ooo / widx)


def test_batching_beats_the_per_probe_descent_on_the_baselines():
    """The amortization the batched traversal exists for: on the same
    tree, the level-wise descent is cheaper per tuple than per-probe
    descents on both baseline cores."""
    cache = MeasurementCache(runs=SETTINGS)
    report = figindexes.run_fig_indexes(cache)
    rows = dict(zip(report.column("index"),
                    zip(report.column("inorder"), report.column("ooo"))))
    assert rows["batched"][0] < rows["btree"][0]
    assert rows["batched"][1] < rows["btree"][1]


# ---------------------------------------------------------------------------
# bit-identity: serial / parallel / cache-hit / --bulk
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_cli_serial_parallel_cache_hit_and_bulk_are_bit_identical(tmp_path):
    """The headline acceptance property for fig-indexes."""
    base = ("--figure", "fig-indexes", "--probes", "400", "--warmup", "100",
            "--cache-dir", str(tmp_path))
    code1, serial = run_cli(*base, "--jobs", "1", "--no-cache")
    code2, parallel = run_cli(*base, "--jobs", "2")
    code3, cached = run_cli(*base, "--jobs", "1")
    code4, bulk = run_cli(*base, "--jobs", "1", "--bulk")
    assert code1 == code2 == code3 == code4 == 0
    assert "15 measured" in parallel
    assert "15 cached, 0 measured" in cached
    assert (report_body(serial) == report_body(parallel)
            == report_body(cached) == report_body(bulk))


# ---------------------------------------------------------------------------
# chaos: the "index" op rides the campaign recovery plumbing
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_chaos_killed_index_point_retries_bit_identical():
    """A worker killed while measuring an ordered-index point is retried,
    and the recovered measurement is bit-identical to a fault-free
    campaign's — for both a baseline and a Widx offload point."""
    points = [index_point("trie:Small", "ooo"),
              index_point("wormhole:Small", "widx", 2, "shared")]

    clean_cache = MeasurementCache(runs=SETTINGS)
    Campaign(clean_cache).run(points, jobs=1)

    chaos_cache = MeasurementCache(runs=SETTINGS)
    chaos = ChaosSpec(seed=11, kill_rate=1.0, error_rate=0.5,
                      max_injections=1, target="index")
    outcome = Campaign(
        chaos_cache, policy=RetryPolicy(max_retries=3, backoff_base=0.01,
                                        degrade_after=50),
        chaos=chaos).run(points, jobs=2)
    assert outcome.ok
    assert outcome.measured_points == len(points)

    for point in points:
        clean = encode_measurement(_measure_point(clean_cache, point))
        recovered = encode_measurement(_measure_point(chaos_cache, point))
        assert clean == recovered, point


# ---------------------------------------------------------------------------
# the opt-in batched serving column
# ---------------------------------------------------------------------------

def test_batched_backend_extends_fig_serve_points():
    plain = figserve.points_fig_serve()
    extended = figserve.points_fig_serve(include_batched=True)
    assert len(extended) == len(plain) + len(figserve.CALIBRATED_BATCHES)
    extra = [p for p in extended if p.kind == "ordered"]
    assert all(p.name == figserve.BATCHED_NAME for p in extra)
    assert all(p.op == "serve" for p in extra)


@pytest.mark.slow
def test_fig_serve_batched_column_leaves_base_rows_untouched():
    """``--batched-tree`` appends rows and a note; every pre-existing
    value stays bit-identical (only column padding reflows for the wider
    label, so the committed fig-serve golden still holds without it)."""
    cache = MeasurementCache(runs=SETTINGS)
    plain = figserve.run_fig_serve(cache)
    extended = figserve.run_fig_serve(cache, include_batched=True)
    batched_label = figserve.BATCHED_BACKEND[0]
    assert set(extended.column("backend")) == (
        set(plain.column("backend")) | {batched_label})
    keep = [i for i, backend in enumerate(extended.column("backend"))
            if backend != batched_label]
    for column in plain.columns:
        values = extended.column(column)
        assert [values[i] for i in keep] == plain.column(column), column
    assert [note for note in extended.notes
            if batched_label not in note] == plain.notes


def regenerate() -> None:  # pragma: no cover - maintenance helper
    with open(os.path.join(GOLDEN_DIR, "figindexes_p400_w100_s42.txt"),
              "w", encoding="utf-8", newline="") as handle:
        handle.write(_figindexes_text())
