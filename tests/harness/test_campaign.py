"""Tests for the campaign layer: point enumeration, parallel prefetch and
the serial / parallel / cache-hit equivalence guarantee."""

import os

import pytest

from repro.harness.cachestore import CacheStore
from repro.harness.campaign import (Campaign, MeasurementPoint,
                                    baseline_point, dedup_points,
                                    group_by_workload, kernel_points,
                                    query_points, widx_point)
from repro.harness.fig8 import run_fig8b
from repro.harness.runner import MeasurementCache, RunSettings
from repro.workloads.tpch import TPCH_SIMULATED

RUNS = RunSettings(probes=400, warmup=100)

#: A deliberately small but multi-workload slice of Figure 8b.
SIZES = ("Small", "Medium")
WALKERS = (1, 2)


class TestPointEnumeration:
    def test_kernel_points_cover_baseline_and_walkers(self):
        points = kernel_points(["Small"], [1, 4])
        assert baseline_point("kernel", "Small", "ooo") in points
        assert widx_point("kernel", "Small", 1) in points
        assert widx_point("kernel", "Small", 4) in points
        assert len(points) == 3

    def test_query_points_optionally_include_inorder(self):
        spec = TPCH_SIMULATED[0]
        name = f"{spec.benchmark}:{spec.number}"
        with_inorder = query_points([spec], [4], include_inorder=True)
        without = query_points([spec], [4])
        assert baseline_point("query", name, "inorder") in with_inorder
        assert baseline_point("query", name, "inorder") not in without

    def test_dedup_preserves_first_occurrence_order(self):
        a = widx_point("kernel", "Small", 1)
        b = baseline_point("kernel", "Small", "ooo")
        assert dedup_points([a, b, a, b, a]) == [a, b]

    def test_groups_are_per_workload_in_canonical_order(self):
        points = (kernel_points(["Medium", "Small"], [4, 1])
                  + [baseline_point("kernel", "Small", "inorder")])
        groups = group_by_workload(points)
        assert len(groups) == 2
        for group in groups:
            assert len({point.workload for point in group}) == 1
            ops = [point.order_key() for point in group]
            assert ops == sorted(ops)
        small = next(g for g in groups if g[0].name == "Small")
        # ooo baseline, inorder baseline, then walkers ascending.
        assert [p.core or p.walkers for p in small] == ["ooo", "inorder", 1, 4]

    def test_cache_tuple_matches_measurement_cache_keys(self):
        assert (widx_point("query", "tpch:20", 4).cache_tuple()
                == ("widx", "query", "tpch:20", 4, "shared"))
        assert (baseline_point("kernel", "Large", "ooo").cache_tuple()
                == ("baseline", "kernel", "Large", "ooo"))


class TestEquivalence:
    """The acceptance property: serial, --jobs 2 and cache-hit runs of one
    figure produce identical ``Report.to_dict()`` output."""

    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        cache_dir = str(tmp_path_factory.mktemp("measurements"))
        points = kernel_points(SIZES, WALKERS)

        # 1. Serial: the driver measures lazily, no campaign, no store.
        serial_cache = MeasurementCache(runs=RUNS)
        serial = run_fig8b(serial_cache, sizes=SIZES, walker_counts=WALKERS)

        # 2. Parallel: campaign prefetch across 2 worker processes,
        #    persisting into the store.
        parallel_cache = MeasurementCache(runs=RUNS,
                                          store=CacheStore(cache_dir))
        outcome = Campaign(parallel_cache).run(points, jobs=2)
        assert outcome.measured_points == len(points)
        parallel = run_fig8b(parallel_cache, sizes=SIZES,
                             walker_counts=WALKERS)

        # 3. Cache hit: a fresh process-equivalent reads the store only.
        hit_cache = MeasurementCache(runs=RUNS, store=CacheStore(cache_dir))
        hit_outcome = Campaign(hit_cache).run(points, jobs=2)
        assert hit_outcome.measured_points == 0
        assert hit_outcome.cached_points == len(points)
        hit = run_fig8b(hit_cache, sizes=SIZES, walker_counts=WALKERS)
        assert hit_cache.measured_points == 0  # drivers never simulated

        return cache_dir, serial, parallel, hit

    def test_parallel_matches_serial_exactly(self, reports):
        _dir, serial, parallel, _hit = reports
        assert parallel.to_dict() == serial.to_dict()

    def test_cache_hit_matches_serial_exactly(self, reports):
        _dir, serial, _parallel, hit = reports
        assert hit.to_dict() == serial.to_dict()

    def test_corrupted_entry_is_remeasured_not_fatal(self, reports):
        cache_dir, serial, _parallel, _hit = reports
        store = CacheStore(cache_dir)
        cache = MeasurementCache(runs=RUNS, store=store)
        # Corrupt one entry on disk; the campaign must transparently
        # re-measure exactly that point and still reproduce the report.
        victim = cache.point_key(widx_point("kernel", "Small", 2).cache_tuple())
        with open(store.path(victim), "w") as handle:
            handle.write('{"half a wrapper":')
        outcome = Campaign(cache).run(kernel_points(SIZES, WALKERS), jobs=1)
        assert outcome.measured_points == 1
        report = run_fig8b(cache, sizes=SIZES, walker_counts=WALKERS)
        assert report.to_dict() == serial.to_dict()
