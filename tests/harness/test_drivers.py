"""Fast smoke tests of the per-figure drivers (scaled-down settings)."""

import pytest

from repro.harness.fig2 import run_fig2a, run_fig2b
from repro.harness.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.harness.fig5 import run_fig5
from repro.harness.fig8 import run_fig8a, run_fig8b
from repro.harness.fig9 import run_fig9b
from repro.harness.fig10 import amdahl_query_speedup, run_fig10
from repro.harness.fig11 import run_area
from repro.harness.runner import (MeasurementCache, RunSettings, geomean,
                                  measure_query)
from repro.workloads.tpcds import TPCDS_SIMULATED


@pytest.fixture(scope="module")
def quick_cache():
    return MeasurementCache(runs=RunSettings(probes=600, warmup=150))


def test_fig2a_covers_all_queries():
    report = run_fig2a()
    assert len(report.rows) == 25  # 16 TPC-H + 9 TPC-DS
    for row in report.rows:
        assert sum(row[2:]) == pytest.approx(1.0)
    assert 0.14 <= min(report.column("index")) <= 0.2
    assert max(report.column("index")) >= 0.85


def test_fig2b_walk_dominates_on_average():
    report = run_fig2b()
    walks = report.column("walk")
    assert sum(walks) / len(walks) > 0.5
    # Hash exceeds 50% only for the L1-resident TPC-DS queries.
    hash_heavy = [row[1] for row in report.rows if row[2] > 0.5]
    assert set(hash_heavy) <= {"qry5", "qry37", "qry64", "qry82"}


def test_fig4_reports_have_series():
    assert len(run_fig4a().rows) == 11
    assert len(run_fig4b().rows) == 10
    assert len(run_fig4c().rows) == 10


def test_fig5_report_has_three_depths():
    report = run_fig5()
    assert set(report.column("nodes_per_bucket")) == {1, 2, 3}


def test_fig8_small_only(quick_cache):
    report_a = run_fig8a(quick_cache, sizes=["Small"], walker_counts=[1, 2])
    assert len(report_a.rows) == 2
    # Normalized to Small@1 walker.
    assert report_a.rows[0][-1] == pytest.approx(1.0)
    report_b = run_fig8b(quick_cache, sizes=["Small"], walker_counts=[1, 2])
    speedup_2w = report_b.cell("size", "Small", "2_walkers")
    assert speedup_2w > 1.2


def test_fig9b_l1_queries_idle(quick_cache):
    report = run_fig9b(quick_cache, walker_counts=[4])
    idle_37 = report.cell("query", "qry37", "idle")
    total_37 = report.cell("query", "qry37", "total")
    assert idle_37 > 0.15 * total_37


def test_fig10_small_subset(quick_cache):
    queries = [q for q in TPCDS_SIMULATED if q.number in (37, 82)]
    report = run_fig10(quick_cache, walker_counts=[4], queries=queries)
    for speedup in report.column("4_walkers"):
        assert speedup > 1.0


def test_area_report_matches_paper():
    report = run_area()
    complex_row = [r for r in report.rows if "complex" in r[0]][0]
    assert complex_row[1] == pytest.approx(0.234, abs=0.01)


def test_amdahl_projection():
    assert amdahl_query_speedup(1.0, 4.0) == pytest.approx(4.0)
    assert amdahl_query_speedup(0.5, 1e9) == pytest.approx(2.0, rel=1e-3)
    with pytest.raises(ValueError):
        amdahl_query_speedup(0.0, 2.0)
    with pytest.raises(ValueError):
        amdahl_query_speedup(0.5, 0.0)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])


def test_measurement_cache_memoizes(quick_cache):
    spec = [q for q in TPCDS_SIMULATED if q.number == 37][0]
    first = measure_query(quick_cache, spec, [1])
    second = measure_query(quick_cache, spec, [1])
    assert first.ooo is second.ooo
    assert first.widx[1] is second.widx[1]
