"""Tests for the measurement runner and its cache."""

import pytest

from repro.errors import ConfigError
from repro.harness.cachestore import CacheStore
from repro.harness.runner import (DEFAULT_RUNS, MeasurementCache,
                                  RunSettings, WorkloadMeasurement, geomean,
                                  measurement_key, measure_kernel)


def test_run_settings_measured():
    settings = RunSettings(probes=1000, warmup=250)
    assert settings.measured == 750


def test_default_settings_sane():
    assert DEFAULT_RUNS.probes > DEFAULT_RUNS.warmup > 0


def test_run_settings_rejects_warmup_at_or_above_probes():
    with pytest.raises(ConfigError):
        RunSettings(probes=100, warmup=100)
    with pytest.raises(ConfigError):
        RunSettings(probes=100, warmup=200)


def test_run_settings_rejects_nonpositive_probes_and_negative_warmup():
    with pytest.raises(ConfigError):
        RunSettings(probes=0, warmup=0)
    with pytest.raises(ConfigError):
        RunSettings(probes=100, warmup=-1)


def test_geomean_basic_and_empty():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])


def test_geomean_names_the_offending_value():
    with pytest.raises(ValueError, match="0.0"):
        geomean([1.0, 0.0, 2.0])
    with pytest.raises(ValueError, match="-3.5"):
        geomean([1.0, -3.5])


def test_measurement_key_is_stable_and_discriminating():
    from repro.config import DEFAULT_CONFIG, SystemConfig

    point = ("baseline", "kernel", "Small", "ooo")
    runs = RunSettings(probes=400, warmup=100)
    key = measurement_key(DEFAULT_CONFIG, runs, point)
    assert key == measurement_key(SystemConfig(), RunSettings(
        probes=400, warmup=100), point)
    assert key != measurement_key(DEFAULT_CONFIG, runs,
                                  ("baseline", "kernel", "Small", "inorder"))
    assert key != measurement_key(DEFAULT_CONFIG, RunSettings(
        probes=400, warmup=100, seed=7), point)
    assert key != measurement_key(DEFAULT_CONFIG.with_walkers(2), runs, point)


def test_store_backed_cache_survives_process_restart(tmp_path):
    runs = RunSettings(probes=400, warmup=100)
    first = MeasurementCache(runs=runs, store=CacheStore(str(tmp_path)))
    measured = first.baseline("kernel", "Small", "ooo")
    assert first.measured_points == 1

    # A fresh cache (new "process") on the same store must not re-measure.
    second = MeasurementCache(runs=runs, store=CacheStore(str(tmp_path)))
    restored = second.baseline("kernel", "Small", "ooo")
    assert second.measured_points == 0
    assert second.store_hits == 1
    assert restored == measured  # CoreTimingResult round-trips exactly


def test_workload_measurement_requires_data():
    measurement = WorkloadMeasurement(name="empty")
    with pytest.raises(KeyError):
        measurement.speedup(4)


def test_kernel_workload_cached_by_size():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    first = cache.kernel_workload("Small")
    second = cache.kernel_workload("Small")
    assert first is second


def test_baseline_and_widx_measurements_cached():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    a = cache.baseline("kernel", "Small", "ooo")
    b = cache.baseline("kernel", "Small", "ooo")
    assert a is b
    w1 = cache.widx("kernel", "Small", 2)
    w2 = cache.widx("kernel", "Small", 2)
    assert w1 is w2
    assert cache.widx("kernel", "Small", 1) is not w1


def test_unknown_query_name_rejected():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    with pytest.raises(KeyError):
        cache.baseline("query", "tpch:999", "ooo")


def test_measure_kernel_populates_everything():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    measurement = measure_kernel(cache, "Small", [1, 2])
    assert measurement.ooo is not None
    assert set(measurement.widx) == {1, 2}
    assert measurement.speedup(2) > measurement.speedup(1) * 1.4
    breakdown = measurement.walker_breakdown(1)
    assert breakdown.total > 0
