"""Tests for the measurement runner and its cache."""

import pytest

from repro.harness.runner import (DEFAULT_RUNS, MeasurementCache,
                                  RunSettings, WorkloadMeasurement,
                                  measure_kernel)


def test_run_settings_measured():
    settings = RunSettings(probes=1000, warmup=250)
    assert settings.measured == 750


def test_default_settings_sane():
    assert DEFAULT_RUNS.probes > DEFAULT_RUNS.warmup > 0


def test_workload_measurement_requires_data():
    measurement = WorkloadMeasurement(name="empty")
    with pytest.raises(KeyError):
        measurement.speedup(4)


def test_kernel_workload_cached_by_size():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    first = cache.kernel_workload("Small")
    second = cache.kernel_workload("Small")
    assert first is second


def test_baseline_and_widx_measurements_cached():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    a = cache.baseline("kernel", "Small", "ooo")
    b = cache.baseline("kernel", "Small", "ooo")
    assert a is b
    w1 = cache.widx("kernel", "Small", 2)
    w2 = cache.widx("kernel", "Small", 2)
    assert w1 is w2
    assert cache.widx("kernel", "Small", 1) is not w1


def test_unknown_query_name_rejected():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    with pytest.raises(KeyError):
        cache.baseline("query", "tpch:999", "ooo")


def test_measure_kernel_populates_everything():
    cache = MeasurementCache(runs=RunSettings(probes=400, warmup=100))
    measurement = measure_kernel(cache, "Small", [1, 2])
    assert measurement.ooo is not None
    assert set(measurement.widx) == {1, 2}
    assert measurement.speedup(2) > measurement.speedup(1) * 1.4
    breakdown = measurement.walker_breakdown(1)
    assert breakdown.total > 0
