"""Golden-report regression: figure text output is bit-identical.

The observability layer is behavior-preserving by contract: registries
hold the *same* counter objects the simulation always mutated, and every
derived quantity keeps its float summation order.  These goldens were
rendered from the pre-refactor tree; any byte of drift in a report means
a model change leaked in through the stats plumbing.

Regenerate (only after an *intentional* model change) with::

    PYTHONPATH=src python -c "
    from tests.harness.test_golden_reports import regenerate; regenerate()"
"""

import os

import pytest

from repro.harness import fig2, fig4, fig5, fig8, fig9, fig10, fig11
from repro.harness.runner import MeasurementCache, RunSettings

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Small but real simulation volume: enough probes to exercise every unit,
#: cheap enough for tier-1.
FIG8_SETTINGS = RunSettings(probes=400, warmup=100, seed=42)


def _analytic_text() -> str:
    reports = [
        fig2.run_fig2a(), fig2.run_fig2b(),
        fig4.run_fig4a(), fig4.run_fig4b(), fig4.run_fig4c(),
        fig5.run_fig5(),
        fig11.run_area(),
    ]
    return "\n\n".join(report.format() for report in reports) + "\n"


def _fig8_text() -> str:
    cache = MeasurementCache(runs=FIG8_SETTINGS)
    return (fig8.run_fig8a(cache).format() + "\n\n"
            + fig8.run_fig8b(cache).format() + "\n")


def _dss_text() -> str:
    """Every remaining simulated figure entry point (9a/9b/10/query/11),
    sharing one measurement cache so each (query, walkers) point
    simulates exactly once."""
    cache = MeasurementCache(runs=FIG8_SETTINGS)
    reports = [
        fig9.run_fig9a(cache), fig9.run_fig9b(cache),
        fig10.run_fig10(cache), fig10.run_query_level(cache),
        fig11.run_fig11(cache),
    ]
    return "\n\n".join(report.format() for report in reports) + "\n"


def _golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8",
              newline="") as handle:
        return handle.read()


def test_analytic_reports_match_golden():
    assert _analytic_text() == _golden("analytic.txt")


def test_fig8_simulated_report_matches_golden():
    assert _fig8_text() == _golden("fig8_p400_w100_s42.txt")


@pytest.mark.slow
def test_dss_simulated_reports_match_golden():
    assert _dss_text() == _golden("dss_p400_w100_s42.txt")


def regenerate() -> None:  # pragma: no cover - maintenance helper
    for name, text in (("analytic.txt", _analytic_text()),
                       ("fig8_p400_w100_s42.txt", _fig8_text()),
                       ("dss_p400_w100_s42.txt", _dss_text())):
        with open(os.path.join(GOLDEN_DIR, name), "w", encoding="utf-8",
                  newline="") as handle:
            handle.write(text)
