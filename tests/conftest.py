"""Shared fixtures: small indexes, spaces and hierarchies for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.column import Column
from repro.db.datagen import make_rng, probe_keys, unique_keys
from repro.db.hashfn import ROBUST_HASH_32
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT, monetdb_layout
from repro.db.types import DataType
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(DEFAULT_CONFIG)


def build_direct_index(space, num_keys=2000, seed=11, nodes_per_bucket=1.0,
                       hash_spec=ROBUST_HASH_32):
    """A small direct-layout index plus its (key -> payload) ground truth."""
    rng = make_rng(seed)
    keys = unique_keys(num_keys, 4, rng)
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(num_keys, nodes_per_bucket),
                      hash_spec, capacity=num_keys)
    truth = {}
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
        truth[int(key)] = row + 1
    return index, keys, truth


def build_indirect_index(space, num_keys=2000, seed=12, key_bytes=4):
    """A small MonetDB-style indirect index plus ground truth (key -> row)."""
    rng = make_rng(seed)
    keys = unique_keys(num_keys, key_bytes, rng)
    base = Column("base", DataType.for_key_bytes(key_bytes), keys)
    base.materialize(space)
    index = HashIndex(space, monetdb_layout(key_bytes),
                      choose_num_buckets(num_keys, 1.0),
                      ROBUST_HASH_32, capacity=num_keys, key_column=base)
    truth = {}
    for row, key in enumerate(keys):
        index.insert(int(key), row)
        truth[int(key)] = row
    return index, keys, truth


def materialized_probe_column(space, build_keys, count=500, seed=13,
                              match_fraction=1.0, key_bytes=4):
    rng = make_rng(seed)
    values = probe_keys(np.asarray(build_keys), count, match_fraction,
                        key_bytes, rng)
    column = Column("probes", DataType.for_key_bytes(key_bytes), values)
    column.materialize(space)
    return column


@pytest.fixture
def direct_index(space):
    index, keys, truth = build_direct_index(space)
    return index, keys, truth


@pytest.fixture
def indirect_index(space):
    index, keys, truth = build_indirect_index(space)
    return index, keys, truth
