"""End-to-end integration: DB engine -> baseline sim -> Widx offload ->
energy model, all on one shared simulated address space."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.cpu.timing import measure_indexing
from repro.db.datagen import build_pair_tables
from repro.db.executor import QueryExecutor
from repro.db.operators.hashjoin import hash_join, reference_join
from repro.db.plan import AggregateNode, HashJoinNode, ScanNode
from repro.energy.metrics import energy_report
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_probe

# End-to-end runs simulate the whole DB -> Widx -> energy stack.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scenario():
    """The Figure 1 scenario: index table A on age, probe with table B."""
    space = AddressSpace()
    build, probe = build_pair_tables(8_000, 2_000, match_fraction=0.85,
                                     seed=77)
    result = hash_join(space, build, probe, "age", "age",
                       payload_column="id")
    return space, build, probe, result


def test_join_is_correct(scenario):
    space, build, probe, result = scenario
    got = sorted(zip(result.table.column("probe_row").values.tolist(),
                     result.table.column("payload").values.tolist()))
    assert got == reference_join(build, probe, "age", "age", "id")


def test_widx_agrees_with_join_on_same_index(scenario):
    space, build, probe, result = scenario
    outcome = offload_probe(result.index, result.probe_keys,
                            config=DEFAULT_CONFIG, probes=800)
    assert outcome.validated is True


def test_all_three_designs_measured_consistently(scenario):
    space, build, probe, result = scenario
    ooo = measure_indexing(result.index, result.probe_keys, core="ooo",
                           warmup_probes=200, measure_probes=1000)
    inorder = measure_indexing(result.index, result.probe_keys,
                               core="inorder", warmup_probes=200,
                               measure_probes=1000)
    widx = offload_probe(result.index, result.probe_keys,
                         config=DEFAULT_CONFIG, probes=1200)
    # Ordering invariant (the paper's Figure 11): Widx < OoO < in-order.
    assert widx.cycles_per_tuple < ooo.cycles_per_tuple
    assert ooo.cycles_per_tuple < inorder.cycles_per_tuple
    # And the energy model turns those into Figure 11's shape.
    report = energy_report({
        "ooo": ooo.cycles_per_tuple,
        "inorder": inorder.cycles_per_tuple,
        "widx": widx.cycles_per_tuple,
    })
    assert report["widx"].energy < report["ooo"].energy
    assert report["widx"].edp < report["inorder"].edp < report["ooo"].edp


def test_query_plan_runs_on_top_of_same_substrate(scenario):
    space, build, probe, result = scenario
    executor = QueryExecutor({"A": build, "B": probe})
    plan = AggregateNode(
        HashJoinNode(ScanNode("A"), ScanNode("B"), "age", "age",
                     payload_column="id"),
        {"matches": "count:*"})
    profile, out = executor.execute_with_result(plan, "fig1")
    assert profile.cycles["index"] > 0
    assert int(out.column("matches").values[0]) == result.matches


def test_widx_scaling_shape_on_this_index(scenario):
    space, build, probe, result = scenario
    cycles = {}
    for walkers in (1, 4):
        config = DEFAULT_CONFIG.with_walkers(walkers)
        cycles[walkers] = offload_probe(result.index, result.probe_keys,
                                        config=config,
                                        probes=800).cycles_per_tuple
    assert 1.5 < cycles[1] / cycles[4] < 4.5
