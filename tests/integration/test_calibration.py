"""Calibration tests: the shapes the paper's evaluation reports.

These use reduced probe counts so they stay test-suite-fast; the full
benchmark harness regenerates the figures at higher fidelity.  Thresholds
are deliberately loose — they guard the *shape* (who wins, roughly by how
much, where the regimes flip), not exact numbers.
"""

import pytest

from repro.harness.fig8 import run_fig8b
from repro.harness.fig10 import run_fig10
from repro.harness.runner import (MeasurementCache, RunSettings, geomean,
                                  measure_kernel, measure_query)
from repro.workloads.tpcds import TPCDS_SIMULATED
from repro.workloads.tpch import TPCH_SIMULATED

# Calibration points simulate several full figure sweeps.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def cache():
    return MeasurementCache(runs=RunSettings(probes=1200, warmup=300))


def spec_by(benchmark_queries, number):
    return [q for q in benchmark_queries if q.number == number][0]


class TestKernelShapes:
    def test_small_kernel_speedup_band(self, cache):
        measurement = measure_kernel(cache, "Small", [1, 4])
        assert 0.7 < measurement.speedup(1) < 1.4   # paper: ~1x
        assert 1.8 < measurement.speedup(4) < 4.5   # paper: ~2-4x

    def test_memory_time_grows_with_index_size(self, cache):
        small = measure_kernel(cache, "Small", [1]).walker_breakdown(1)
        medium = measure_kernel(cache, "Medium", [1]).walker_breakdown(1)
        assert medium.mem > small.mem

    def test_walkers_cut_memory_time_linearly(self, cache):
        measurement = measure_kernel(cache, "Medium", [1, 2, 4])
        mem1 = measurement.walker_breakdown(1).mem
        mem4 = measurement.walker_breakdown(4).mem
        assert mem1 / mem4 == pytest.approx(4.0, rel=0.3)


class TestDssShapes:
    def test_tpch_small_index_queries_have_no_tlb_stalls(self, cache):
        for number in (2, 11, 17):
            spec = spec_by(TPCH_SIMULATED, number)
            breakdown = measure_query(cache, spec, [1]).walker_breakdown(1)
            assert breakdown.tlb < 0.01 * breakdown.total, spec.label

    def test_tpch_memory_intensive_queries_show_tlb_stalls(self, cache):
        saw_tlb = []
        for number in (19, 20, 22):
            spec = spec_by(TPCH_SIMULATED, number)
            breakdown = measure_query(cache, spec, [1]).walker_breakdown(1)
            saw_tlb.append(breakdown.tlb / breakdown.total)
        assert max(saw_tlb) > 0.01          # visible on at least one
        assert max(saw_tlb) < 0.15          # paper: up to 8%

    def test_tpcds_l1_resident_queries_idle_at_four_walkers(self, cache):
        spec = spec_by(TPCDS_SIMULATED, 37)
        breakdown = measure_query(cache, spec, [4]).walker_breakdown(4)
        idle = breakdown.idle + breakdown.queue
        assert idle > 0.2 * breakdown.total

    def test_tpcds_memory_time_lower_than_tpch(self, cache):
        tpch_mem = [measure_query(cache, q, [1]).walker_breakdown(1).mem
                    for q in TPCH_SIMULATED[:2]]
        tpcds_mem = [measure_query(cache, q, [1]).walker_breakdown(1).mem
                     for q in TPCDS_SIMULATED
                     if q.number in (5, 37)]
        assert max(tpcds_mem) < min(tpch_mem)

    def test_every_query_speeds_up_with_four_walkers(self, cache):
        for spec in TPCH_SIMULATED + TPCDS_SIMULATED:
            measurement = measure_query(cache, spec, [4])
            assert measurement.speedup(4) > 1.3, spec.label

    def test_geomean_speedup_near_paper(self, cache):
        speedups = [measure_query(cache, spec, [4]).speedup(4)
                    for spec in TPCH_SIMULATED + TPCDS_SIMULATED]
        assert 2.4 < geomean(speedups) < 3.8   # paper: 3.1x

    def test_indirect_layout_costs_more_comp_per_node(self, cache):
        """Paper §6.2: MonetDB's indirect keys need more address
        computation per node than the kernel's simple layout."""
        kernel_index, _ = cache.kernel_workload("Medium")
        query_spec = spec_by(TPCH_SIMULATED, 11)
        query_index, _ = cache.query_workload(query_spec)
        kernel = measure_kernel(cache, "Medium", [1]).walker_breakdown(1)
        query = measure_query(cache, query_spec, [1]).walker_breakdown(1)
        kernel_comp_per_node = (kernel.comp /
                                kernel_index.stats().nodes_per_used_bucket)
        query_comp_per_node = (query.comp /
                               query_index.stats().nodes_per_used_bucket)
        assert query_comp_per_node > kernel_comp_per_node
