"""Tests for WidxMachine wiring and accounting."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.hashfn import ROBUST_HASH_32
from repro.db.node import KERNEL_LAYOUT
from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace
from repro.widx.machine import WidxMachine
from repro.widx.programs import (coupled_walker_program, dispatcher_program,
                                 producer_program, walker_program)


def make_machine(mode="shared", walkers=2):
    space = AddressSpace()
    config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)
    machine = WidxMachine(config, MemoryHierarchy(config), space.memory)
    return machine, space


def standard_programs():
    return (dispatcher_program(ROBUST_HASH_32, KERNEL_LAYOUT),
            walker_program(KERNEL_LAYOUT),
            producer_program(8))


def test_shared_mode_unit_inventory():
    machine, _ = make_machine("shared", walkers=4)
    dispatcher, walker, producer = standard_programs()
    machine.build(dispatcher, walker, producer)
    names = set(machine.units)
    assert names == {"dispatcher", "walker0", "walker1", "walker2",
                     "walker3", "producer"}


def test_private_mode_pairs_dispatchers_with_walkers():
    machine, _ = make_machine("private", walkers=2)
    dispatcher, walker, producer = standard_programs()
    machine.build(dispatcher, walker, producer)
    assert {"dispatcher0", "dispatcher1", "walker0", "walker1",
            "producer"} == set(machine.units)


def test_coupled_mode_has_no_dispatchers():
    machine, _ = make_machine("coupled", walkers=3)
    coupled = coupled_walker_program(ROBUST_HASH_32, KERNEL_LAYOUT,
                                     stride_keys=3)
    machine.build(None, coupled, producer_program(8))
    assert not any(name.startswith("dispatcher") for name in machine.units)
    assert sum(1 for n in machine.units if n.startswith("walker")) == 3


def test_coupled_mode_rejects_dispatcher_program():
    machine, _ = make_machine("coupled")
    dispatcher, walker, producer = standard_programs()
    with pytest.raises(ConfigError):
        machine.build(dispatcher, walker, producer)


def test_decoupled_modes_require_dispatcher():
    machine, _ = make_machine("shared")
    _, walker, producer = standard_programs()
    with pytest.raises(ConfigError):
        machine.build(None, walker, producer)


def test_run_requires_build():
    machine, _ = make_machine()
    with pytest.raises(ConfigError):
        machine.run(expected_tuples=1)


def test_configuration_cycles_scale_with_program_sizes():
    small_machine, _ = make_machine("shared", walkers=1)
    big_machine, _ = make_machine("shared", walkers=4)
    programs = standard_programs()
    small_machine.build(*programs)
    big_machine.build(*programs)
    assert (big_machine.configuration_cycles()
            > small_machine.configuration_cycles())


def test_num_units_accounting_in_config():
    shared = DEFAULT_CONFIG.with_widx(mode="shared", num_walkers=4)
    private = DEFAULT_CONFIG.with_widx(mode="private", num_walkers=4)
    coupled = DEFAULT_CONFIG.with_widx(mode="coupled", num_walkers=4)
    assert shared.widx.num_units == 6    # 4 walkers + dispatcher + producer
    assert private.widx.num_units == 9   # 4 pairs + producer
    assert coupled.widx.num_units == 5   # 4 walkers + producer
