"""Tests for seeded fault injection into the Widx machine.

A walker can fail-stop (its process terminates mid-offload) or stall
(it halts without completing, which the watchdog must catch).  In shared
mode the dispatcher salvages the dead walker's in-flight probe and the
survivors finish the offload with the result still validating; every
unsurvivable fault aborts cleanly — :class:`~repro.errors.WidxFault`, or
the host re-run when ``fallback_to_host`` is set — never a hang or a
silently wrong answer.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import ConfigError, SimulationHang, WidxFault
from repro.harness.chaos import walker_faults
from repro.widx.machine import FAULT_KINDS, UnitFault
from repro.widx.offload import offload_probe
from tests.conftest import build_direct_index, materialized_probe_column

KILL_EARLY = (UnitFault(unit="walker1", cycle=1000.0),)

PROBES = 300


def make_runner(space, *, mode="shared", walkers=2):
    """Build the workload once; return a callable that offloads it with
    a given fault schedule (one address space hosts one build)."""
    index, keys, truth = build_direct_index(space, num_keys=1500)
    column = materialized_probe_column(space, keys, count=PROBES)
    config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)

    def run(faults, **kwargs):
        return offload_probe(index, column, config=config, probes=PROBES,
                             faults=faults, **kwargs)
    return run


def run_faulted(space, faults, *, mode="shared", walkers=2, **kwargs):
    return make_runner(space, mode=mode, walkers=walkers)(faults, **kwargs)


# ---------------------------------------------------------------------------
# UnitFault and the seeded schedule
# ---------------------------------------------------------------------------

def test_unit_fault_validation():
    assert UnitFault(unit="walker0", cycle=5.0).kind == "fail-stop"
    with pytest.raises(ConfigError):
        UnitFault(unit="walker0", cycle=-1.0)
    with pytest.raises(ConfigError):
        UnitFault(unit="walker0", cycle=5.0, kind="explode")
    assert set(FAULT_KINDS) == {"fail-stop", "stall"}


def test_walker_faults_schedule_is_seeded_and_sorted():
    a = walker_faults(42, walkers=8, rate=0.5, horizon=10_000.0)
    b = walker_faults(42, walkers=8, rate=0.5, horizon=10_000.0)
    assert a == b
    assert 0 < len(a) < 8
    assert all(f.cycle <= 10_000.0 for f in a)
    assert [f.cycle for f in a] == sorted(f.cycle for f in a)
    assert walker_faults(43, walkers=8, rate=0.5, horizon=10_000.0) != a


def test_walker_faults_selection_grows_with_rate():
    low = walker_faults(42, walkers=16, rate=0.2, horizon=10_000.0)
    high = walker_faults(42, walkers=16, rate=0.9, horizon=10_000.0)
    assert len(high) >= len(low)
    # Shared draws: every walker selected at the low rate is selected at
    # the high rate, and dies no later.
    low_units = {f.unit: f.cycle for f in low}
    high_units = {f.unit: f.cycle for f in high}
    for unit, cycle in low_units.items():
        assert unit in high_units
        assert high_units[unit] <= cycle
    assert walker_faults(42, walkers=8, rate=0.0, horizon=100.0) == ()


def test_walker_faults_validation():
    with pytest.raises(ValueError):
        walker_faults(1, walkers=4, rate=1.5, horizon=100.0)
    with pytest.raises(ValueError):
        walker_faults(1, walkers=4, rate=0.5, horizon=0.0)


def test_fault_against_unknown_unit_is_rejected(space):
    with pytest.raises(ConfigError, match="walker9"):
        run_faulted(space, (UnitFault(unit="walker9", cycle=10.0),))


# ---------------------------------------------------------------------------
# survivable kills: shared-mode walkers redistribute and still validate
# ---------------------------------------------------------------------------

def test_shared_mode_survives_a_walker_kill_and_validates(space):
    outcome = run_faulted(space, KILL_EARLY)
    assert outcome.validated is True
    assert not outcome.fell_back


def test_killed_walker_degrades_makespan_at_two_walkers(space):
    """At 2 walkers the machine is walker-bound, so losing one must
    visibly stretch the offload (the survivor absorbs the queue)."""
    run = make_runner(space)
    clean = run(())
    faulty = run(KILL_EARLY)
    assert faulty.validated is True
    assert faulty.run.total_cycles > clean.run.total_cycles


def test_killed_walker_stops_consuming_work(space):
    run = make_runner(space)
    clean = run(())
    faulty = run(KILL_EARLY)
    def invocations(outcome, unit):
        return outcome.run.unit_stats[unit].invocations
    assert invocations(faulty, "walker1") < invocations(clean, "walker1")
    assert invocations(faulty, "walker0") > invocations(clean, "walker0")


def test_fault_injection_is_deterministic(space):
    run = make_runner(space)
    a = run(KILL_EARLY)
    b = run(KILL_EARLY)
    assert a.run.total_cycles == b.run.total_cycles
    assert sorted(a.payloads) == sorted(b.payloads)


def test_fault_after_completion_is_a_no_op(space):
    run = make_runner(space)
    clean = run(())
    late = run((UnitFault(unit="walker1", cycle=1e12),))
    assert late.validated is True
    assert late.run.total_cycles == clean.run.total_cycles


# ---------------------------------------------------------------------------
# unsurvivable faults: clean aborts, never hangs or wrong answers
# ---------------------------------------------------------------------------

def test_killing_every_walker_raises_widx_fault(space):
    faults = (UnitFault(unit="walker0", cycle=1000.0),
              UnitFault(unit="walker1", cycle=1100.0))
    with pytest.raises(WidxFault, match="unrecoverable"):
        run_faulted(space, faults)


def test_killing_the_dispatcher_raises_widx_fault(space):
    with pytest.raises(WidxFault):
        run_faulted(space, (UnitFault(unit="dispatcher", cycle=1000.0),))


def test_private_mode_walker_kill_is_unsurvivable(space):
    """Private-mode walkers own their hash lanes; no one can absorb a
    dead walker's keys, so the offload must abort."""
    with pytest.raises(WidxFault):
        run_faulted(space, KILL_EARLY, mode="private")


def test_unsurvivable_kill_recovers_via_host_fallback(space):
    faults = (UnitFault(unit="walker0", cycle=1000.0),
              UnitFault(unit="walker1", cycle=1100.0))
    outcome = run_faulted(space, faults, fallback_to_host=True)
    assert outcome.fell_back
    assert outcome.abort_cycles > 0
    assert outcome.validated is True


def test_stall_trips_the_watchdog_as_a_hang(space):
    with pytest.raises(SimulationHang):
        run_faulted(space, (UnitFault(unit="walker1", cycle=1000.0,
                                      kind="stall"),))


def test_stall_recovers_via_host_fallback(space):
    outcome = run_faulted(space, (UnitFault(unit="walker1", cycle=1000.0,
                                            kind="stall"),),
                          fallback_to_host=True)
    assert outcome.fell_back
    assert outcome.validated is True


def test_seeded_schedule_drives_the_machine_end_to_end(space):
    """walker_faults -> offload_probe: the chaos layer's schedule is
    directly consumable by the machine."""
    faults = walker_faults(42, walkers=2, rate=1.0, horizon=2000.0)
    assert len(faults) == 2          # rate 1.0 selects every walker
    outcome = run_faulted(space, faults, fallback_to_host=True)
    assert outcome.fell_back         # both walkers die: host re-run
    assert outcome.validated is True
