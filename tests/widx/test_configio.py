"""Tests for the Widx control block (Section 4.3)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.hashfn import KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64
from repro.db.node import KERNEL_LAYOUT, MONETDB_LAYOUT, WIDE_LAYOUT
from repro.errors import WidxFault
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace
from repro.widx.configio import (decode_instruction,
                                 deserialize_control_block,
                                 encode_instruction,
                                 measured_configuration_cycles,
                                 serialize_control_block)
from repro.widx.isa import Instruction, Opcode, Register
from repro.widx.programs import (dispatcher_program, producer_program,
                                 tree_walker_program, walker_program)


def all_production_programs():
    programs = []
    for layout in (KERNEL_LAYOUT, MONETDB_LAYOUT, WIDE_LAYOUT):
        for spec in (KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64):
            programs.append(dispatcher_program(spec, layout).program)
        programs.append(walker_program(layout).program)
    programs.append(producer_program(8).program)
    programs.append(tree_walker_program().program)
    return programs


class TestInstructionEncoding:
    def cases(self):
        return [
            Instruction(Opcode.ADD, rd=Register(1), ra=Register(2),
                        rb=Register(3)),
            Instruction(Opcode.ADD, rd=Register(1), ra=Register(2), imm=-1),
            Instruction(Opcode.LD, rd=Register(5), ra=Register(6), imm=24,
                        width=4),
            Instruction(Opcode.LD, rd=Register(5), ra=Register(6), imm=0,
                        width=8),
            Instruction(Opcode.ST, ra=Register(9), imm=8, rb=Register(1),
                        width=8),
            Instruction(Opcode.TOUCH, ra=Register(1), imm=64),
            Instruction(Opcode.SHL, rd=Register(2), ra=Register(3), imm=17),
            Instruction(Opcode.XOR_SHF, rd=Register(2), ra=Register(3),
                        rb=Register(4), imm=-33),
            Instruction(Opcode.BA, target=7),
            Instruction(Opcode.BLE, ra=Register(1), rb=Register(0),
                        target=0),
            Instruction(Opcode.EMIT, sources=(Register(5), Register(7))),
            Instruction(Opcode.EMIT, sources=(Register(1), Register(2),
                                              Register(3), Register(4))),
            Instruction(Opcode.HALT),
        ]

    def test_roundtrip_every_shape(self):
        for original in self.cases():
            word, immediate = encode_instruction(original)
            decoded = decode_instruction(word, immediate)
            assert decoded.opcode is original.opcode
            assert decoded.width == original.width
            assert decoded.imm == original.imm
            assert decoded.target == original.target
            assert decoded.sources == original.sources
            for field in ("rd", "ra", "rb"):
                a, b = getattr(original, field), getattr(decoded, field)
                assert (a is None) == (b is None) or original.sources
                if a is not None and not original.sources:
                    assert a.index == b.index

    def test_bad_opcode_rejected(self):
        with pytest.raises(WidxFault):
            decode_instruction(63, None)  # ordinal beyond the ISA


class TestControlBlock:
    def test_roundtrip_all_production_programs(self):
        programs = all_production_programs()
        space = AddressSpace()
        region = serialize_control_block(space, programs)
        restored = deserialize_control_block(space, region)
        assert len(restored) == len(programs)
        for original, decoded in zip(programs, restored):
            assert decoded.role.letter == original.role.letter
            assert decoded.constants == {
                k: v & ((1 << 64) - 1)
                for k, v in original.constants.items()}
            assert len(decoded.instructions) == len(original.instructions)
            for a, b in zip(original.instructions, decoded.instructions):
                assert a.opcode is b.opcode
                assert a.target == b.target
                assert a.imm == b.imm

    def test_bad_magic_rejected(self):
        space = AddressSpace()
        region = space.allocate("junk", 64)
        with pytest.raises(WidxFault, match="magic"):
            deserialize_control_block(space, region)

    def test_block_size_is_modest(self):
        """The control block is a few hundred bytes — it lives in the
        application binary, not in dedicated storage."""
        space = AddressSpace()
        programs = [dispatcher_program(ROBUST_HASH_32,
                                       KERNEL_LAYOUT).program,
                    walker_program(KERNEL_LAYOUT).program,
                    producer_program(8).program]
        region = serialize_control_block(space, programs)
        assert region.size < 1024


class TestMeasuredConfiguration:
    def test_loads_go_through_the_memory_system(self):
        space = AddressSpace()
        programs = [walker_program(KERNEL_LAYOUT).program]
        region = serialize_control_block(space, programs)
        hierarchy = MemoryHierarchy(DEFAULT_CONFIG)
        cycles = measured_configuration_cycles(hierarchy, region)
        assert cycles > 0
        assert hierarchy.stats.loads == region.size // 8

    def test_configuration_amortized_over_bulk_probe(self):
        """Section 4.3: 'the latency cost of configuring Widx is amortized
        over the millions of hash table probes'."""
        space = AddressSpace()
        programs = [dispatcher_program(ROBUST_HASH_64,
                                       MONETDB_LAYOUT).program,
                    walker_program(MONETDB_LAYOUT).program,
                    producer_program(8).program]
        region = serialize_control_block(space, programs)
        hierarchy = MemoryHierarchy(DEFAULT_CONFIG)
        config_cycles = measured_configuration_cycles(hierarchy, region)
        # Even a modest 10K-probe offload dwarfs configuration by >100x.
        probe_cycles = 10_000 * 30.0
        assert config_cycles * 100 < probe_cycles
