"""Differential tests for the B+-tree offload programs.

Two independent comparisons, across random seeds and tree shapes:

* **Functional**: the payload multiset an offloaded
  ``tree_walker_program`` / ``tree_range_walker_program`` run emits
  (``validate=False``, so the offload's own cross-check is out of the
  loop) against ground truth computed here with the functional
  :meth:`BPlusTree.search` / :meth:`BPlusTree.range_scan`.
* **Mechanical**: the full simulated outcome on the optimized memory
  system against the naive reference-array twin injected through the
  ``memory=`` seam — cycles, payloads and every memory counter must be
  bit-identical, mirroring ``test_differential_offload.py``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.btree import BPlusTree, KEY_PAD
from repro.db.column import Column
from repro.db.types import DataType
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace
from repro.mem.reference import use_reference_arrays
from repro.widx.offload import offload_tree_ranges, offload_tree_search

#: (seed, number of keys): single leaf, one internal level, multi level.
TREE_SHAPES = [(3, 4), (5, 21), (7, 160), (11, 700)]


def build_tree(space, seed, num_keys):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 2**31), num_keys)
    payloads = [rng.randrange(1, 2**31) for _ in keys]
    return BPlusTree(space, keys, payloads), keys, dict(zip(keys, payloads))


def probe_column(space, keys, seed, count, match_fraction=0.7):
    rng = random.Random(seed + 1)
    values = [rng.choice(keys) if rng.random() < match_fraction
              else rng.randrange(1, KEY_PAD)
              for _ in range(count)]
    column = Column("probes", DataType.U32,
                    np.asarray(values, dtype=np.uint32))
    column.materialize(space)
    return column


def random_ranges(keys, seed, count):
    rng = random.Random(seed + 2)
    lo, hi = min(keys), max(keys)
    ranges = []
    for _ in range(count):
        a, b = rng.randint(lo - 5, hi + 5), rng.randint(lo - 5, hi + 5)
        ranges.append((max(0, min(a, b)), max(a, b)))
    return ranges


def memory_key(hierarchy):
    stats = hierarchy.stats
    return (stats.loads.value, stats.stores.value,
            stats.l1d.hits.value, stats.l1d.misses.value,
            stats.llc.hits.value, stats.llc.misses.value,
            stats.tlb.misses.value, stats.dram_blocks.value)


@pytest.mark.parametrize("seed,num_keys", TREE_SHAPES)
@pytest.mark.parametrize("mode,walkers", [("shared", 1), ("shared", 4),
                                          ("private", 2)])
def test_tree_search_payloads_match_functional_search(space, seed, num_keys,
                                                      mode, walkers):
    tree, keys, truth = build_tree(space, seed, num_keys)
    column = probe_column(space, keys, seed, count=min(120, 3 * num_keys))
    expected = sorted(truth[int(v)] for v in column.values
                      if int(v) in truth)
    outcome = offload_tree_search(
        tree, column, config=DEFAULT_CONFIG.with_widx(num_walkers=walkers,
                                                      mode=mode),
        validate=False)
    assert sorted(outcome.payloads) == expected
    assert outcome.run.matches == len(expected)


@pytest.mark.parametrize("seed,num_keys", TREE_SHAPES)
@pytest.mark.parametrize("walkers", [1, 3])
def test_tree_range_payloads_match_functional_scan(space, seed, num_keys,
                                                   walkers):
    tree, keys, _truth = build_tree(space, seed, num_keys)
    ranges = random_ranges(keys, seed, count=8)
    expected = sorted(payload for low, high in ranges
                      for _key, payload in tree.range_scan(low, high))
    outcome = offload_tree_ranges(
        tree, ranges, config=DEFAULT_CONFIG.with_widx(num_walkers=walkers,
                                                      mode="shared"),
        validate=False)
    assert sorted(outcome.payloads) == expected
    assert outcome.run.matches == len(expected)


@pytest.mark.parametrize("seed,num_keys", [(5, 21), (7, 160)])
def test_tree_search_identical_on_reference_memory_system(space, seed,
                                                          num_keys):
    tree, keys, _truth = build_tree(space, seed, num_keys)
    column = probe_column(space, keys, seed, count=100)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2, mode="shared")
    optimized = offload_tree_search(tree, column, config=config)
    reference = offload_tree_search(
        tree, column, config=config,
        memory=use_reference_arrays(MemoryHierarchy(config)))
    assert optimized.validated is reference.validated is True
    assert optimized.run.total_cycles == reference.run.total_cycles
    assert optimized.payloads == reference.payloads
    assert memory_key(optimized.memory) == memory_key(reference.memory)


def test_tree_ranges_identical_on_reference_memory_system(space):
    tree, keys, _truth = build_tree(space, 7, 160)
    ranges = random_ranges(keys, 7, count=6)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2, mode="shared")
    optimized = offload_tree_ranges(tree, ranges, config=config)
    reference = offload_tree_ranges(
        tree, ranges, config=config,
        memory=use_reference_arrays(MemoryHierarchy(config)))
    assert optimized.validated is reference.validated is True
    assert optimized.run.total_cycles == reference.run.total_cycles
    assert optimized.payloads == reference.payloads
    assert memory_key(optimized.memory) == memory_key(reference.memory)
