"""Tests for the full Widx offload (correctness and organization behavior)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import WidxFault
from repro.widx.offload import offload_probe
from tests.conftest import (build_direct_index, build_indirect_index,
                            materialized_probe_column)


def run_offload(space, indirect=False, mode="shared", walkers=2,
                probes=300, match_fraction=1.0, num_keys=1500):
    if indirect:
        index, keys, truth = build_indirect_index(space, num_keys=num_keys)
    else:
        index, keys, truth = build_direct_index(space, num_keys=num_keys)
    column = materialized_probe_column(space, keys, count=probes,
                                       match_fraction=match_fraction)
    config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)
    outcome = offload_probe(index, column, config=config, probes=probes)
    return index, column, outcome


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["shared", "private", "coupled"])
    def test_every_mode_validates_against_reference(self, space, mode):
        _, _, outcome = run_offload(space, mode=mode)
        assert outcome.validated is True
        assert outcome.matches == 300

    @pytest.mark.parametrize("walkers", [1, 2, 4, 8])
    def test_every_walker_count_is_correct(self, space, walkers):
        _, _, outcome = run_offload(space, walkers=walkers)
        assert outcome.validated is True

    def test_indirect_schema_correct(self, space):
        _, _, outcome = run_offload(space, indirect=True)
        assert outcome.validated is True

    def test_misses_emit_nothing(self, space):
        _, _, outcome = run_offload(space, match_fraction=0.0)
        assert outcome.matches == 0

    def test_partial_match_fraction(self, space):
        _, _, outcome = run_offload(space, match_fraction=0.5, probes=600)
        assert 200 < outcome.matches < 400

    def test_payloads_stored_in_output_region(self, space):
        index, column, outcome = run_offload(space, probes=100)
        expected = []
        for row in range(100):
            expected.extend(index.probe(int(column.values[row])))
        assert sorted(outcome.payloads) == sorted(expected)

    def test_probe_subset_parameter(self, space):
        index, keys, truth = build_direct_index(space)
        column = materialized_probe_column(space, keys, count=500)
        outcome = offload_probe(index, column, probes=50)
        assert outcome.run.tuples == 50
        assert outcome.matches == 50


class TestBehavior:
    def test_more_walkers_go_faster(self, space):
        # A DRAM-resident index: walker scaling is memory-bound and
        # near-linear (paper Figure 8a).
        index, keys, truth = build_direct_index(space, num_keys=200_000,
                                                nodes_per_bucket=2.0)
        column = materialized_probe_column(space, keys, count=600)
        times = {}
        for walkers in (1, 2, 4):
            config = DEFAULT_CONFIG.with_widx(num_walkers=walkers)
            outcome = offload_probe(index, column, config=config)
            times[walkers] = outcome.cycles_per_tuple
        assert times[2] < times[1]
        assert times[4] < times[2]
        assert times[1] / times[4] > 2.5

    def test_decoupled_hashing_beats_coupled(self, space):
        """The paper: decoupling cuts time per traversal by ~29%."""
        index, keys, truth = build_direct_index(
            space, num_keys=30_000,
            hash_spec=__import__("repro.db.hashfn", fromlist=["x"]).ROBUST_HASH_32)
        column = materialized_probe_column(space, keys, count=600)
        coupled = offload_probe(
            index, column,
            config=DEFAULT_CONFIG.with_widx(mode="coupled", num_walkers=2))
        decoupled = offload_probe(
            index, column,
            config=DEFAULT_CONFIG.with_widx(mode="private", num_walkers=2))
        reduction = 1 - decoupled.cycles_per_tuple / coupled.cycles_per_tuple
        assert 0.10 < reduction < 0.45

    def test_shared_dispatcher_feeds_four_walkers(self, space):
        """One dispatcher keeps 4 walkers nearly as busy as private ones —
        in the regime Figure 5 predicts (long walks: deep buckets and/or
        high LLC miss ratio).  Shallow cache-resident indexes starve
        instead; that regime is asserted separately below."""
        index, keys, truth = build_direct_index(space, num_keys=250_000,
                                                nodes_per_bucket=2.0)
        column = materialized_probe_column(space, keys, count=800)
        shared = offload_probe(
            index, column,
            config=DEFAULT_CONFIG.with_widx(mode="shared", num_walkers=4))
        private = offload_probe(
            index, column,
            config=DEFAULT_CONFIG.with_widx(mode="private", num_walkers=4))
        assert shared.cycles_per_tuple < 1.25 * private.cycles_per_tuple

    def test_shared_dispatcher_starves_walkers_on_shallow_cached_index(
            self, space):
        """Figure 5's exception: 1-node buckets with low LLC miss ratio
        leave one dispatcher unable to feed four walkers."""
        index, keys, truth = build_direct_index(space, num_keys=40_000,
                                                nodes_per_bucket=1.0)
        column = materialized_probe_column(space, keys, count=800)
        outcome = offload_probe(
            index, column,
            config=DEFAULT_CONFIG.with_widx(mode="shared", num_walkers=4))
        breakdown = outcome.run.walker_cycles_per_tuple()
        assert breakdown.idle > 0.1 * breakdown.total

    def test_walker_breakdown_covers_runtime(self, space):
        _, _, outcome = run_offload(space, walkers=2)
        breakdown = outcome.run.walker_cycles_per_tuple()
        assert breakdown.total == pytest.approx(
            outcome.run.cycles_per_tuple, rel=0.05)

    def test_config_cost_amortized(self, space):
        """Section 4.3: configuration cost is negligible vs the bulk probe."""
        _, _, outcome = run_offload(space, probes=300)
        assert outcome.run.config_cycles < 0.05 * outcome.run.total_cycles

    def test_unmaterialized_probe_column_rejected(self, space):
        from repro.db.column import Column
        from repro.db.types import DataType
        index, keys, truth = build_direct_index(space)
        loose = Column("loose", DataType.U32, [1, 2])
        with pytest.raises(WidxFault):
            offload_probe(index, loose)

    def test_memory_stats_available(self, space):
        _, _, outcome = run_offload(space)
        outcome.memory.stats.check()
        assert outcome.memory.stats.loads > 0

    def test_programs_exposed_for_inspection(self, space):
        _, _, outcome = run_offload(space, mode="shared")
        assert {"dispatcher", "walker", "producer"} <= set(outcome.programs)
        assert ".role H" in outcome.programs["dispatcher"].source
