"""Full-stack differential test: optimized vs all-naive-reference offload.

Runs complete Widx bulk probes twice — once on the optimized stack
(pooled/batching engine, flat tick-LRU caches, memoized-decode
interpreter) and once with every overhauled layer swapped for its
deliberately naive reference twin via ``offload_probe``'s injection
points — and asserts the *entire* simulated outcome is bit-identical:
total cycles, emitted payloads, per-unit instruction/invocation/cycle
accounting, and the memory-system counters.  This is the end-to-end
guarantee behind the performance overhaul: every optimization is purely
mechanical, with zero modelled-behaviour drift.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.reference import use_reference_arrays
from repro.sim.reference import ReferenceEngine
from repro.widx.offload import offload_probe
from repro.widx.reference import ReferenceWidxUnit
from tests.conftest import build_direct_index, materialized_probe_column


def outcome_key(outcome):
    """Every externally observable artifact of one offload run."""
    run = outcome.run
    units = tuple(
        (name, stats.invocations.value, stats.instructions.value,
         stats.loads.value, stats.stores.value, stats.emitted.value,
         stats.cycles.comp, stats.cycles.mem, stats.cycles.tlb,
         stats.cycles.queue)
        for name, stats in sorted(run.unit_stats.items()))
    mem = outcome.memory.stats
    memory = (mem.loads.value, mem.stores.value,
              mem.l1d.hits.value, mem.l1d.misses.value,
              mem.llc.hits.value, mem.llc.misses.value,
              mem.tlb.misses.value, mem.dram_blocks.value)
    return (run.total_cycles, run.matches, tuple(outcome.payloads),
            outcome.validated, units, memory)


def run_pair(space, *, walkers, mode="shared", probes=200, num_keys=1500,
             match_fraction=1.0, warm=True):
    index, keys, _truth = build_direct_index(space, num_keys=num_keys)
    column = materialized_probe_column(space, keys, count=probes,
                                       match_fraction=match_fraction)
    config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)
    optimized = offload_probe(index, column, config=config, probes=probes,
                              warm=warm)
    reference = offload_probe(
        index, column, config=config, probes=probes, warm=warm,
        memory=use_reference_arrays(MemoryHierarchy(config)),
        engine=ReferenceEngine(),
        unit_cls=ReferenceWidxUnit)
    return outcome_key(optimized), outcome_key(reference)


@pytest.mark.parametrize("walkers", [1, 2, 4])
def test_full_offload_identical_across_walker_counts(space, walkers):
    optimized, reference = run_pair(space, walkers=walkers)
    assert optimized == reference


@pytest.mark.parametrize("mode", ["shared", "private", "coupled"])
def test_full_offload_identical_across_organizations(space, mode):
    optimized, reference = run_pair(space, walkers=2, mode=mode)
    assert optimized == reference


def test_full_offload_identical_with_misses_and_cold_caches(space):
    """No warm-up and 60% matching probes: the miss/evict paths differ
    most between the stacks, and must still agree exactly."""
    optimized, reference = run_pair(space, walkers=2, warm=False,
                                    match_fraction=0.6)
    assert optimized == reference
