"""Tests for walker-trail capture: the recorder and the offload wiring."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.obs import Trail
from repro.widx.offload import offload_probe
from repro.widx.trail import TrailRecorder
from tests.conftest import build_direct_index, materialized_probe_column


class TestRecorder:
    def test_start_hop_commit_lands_in_the_ring(self):
        recorder = TrailRecorder(Trail(capacity=4))
        recorder.start("walker0", [7], 10.0)
        recorder.hop("walker0", 0x1000, "L1", 12.0)
        recorder.hop("walker0", 0x2000, "DRAM", 20.0)
        recorder.commit("walker0", 25.0)
        entry = recorder.trail.entries[0]
        assert entry["walker"] == "walker0"
        assert entry["key"] == [7]
        assert entry["start"] == 10.0 and entry["end"] == 25.0
        assert entry["hops"] == [[12.0, 0x1000, "L1"], [20.0, 0x2000, "DRAM"]]
        assert recorder.open_walkers == []

    def test_interleaved_walkers_keep_separate_open_entries(self):
        recorder = TrailRecorder(Trail(capacity=4))
        recorder.start("walker0", [1], 0.0)
        recorder.start("walker1", [2], 1.0)
        recorder.hop("walker0", 0xA, "L1", 2.0)
        recorder.hop("walker1", 0xB, "LLC", 3.0)
        recorder.commit("walker1", 4.0)
        recorder.commit("walker0", 5.0)
        walkers = [e["walker"] for e in recorder.trail.entries]
        assert walkers == ["walker1", "walker0"]  # commit order
        assert recorder.trail.entries[1]["hops"] == [[2.0, 0xA, "L1"]]

    def test_hop_for_unknown_walker_is_ignored(self):
        recorder = TrailRecorder(Trail(capacity=4))
        recorder.hop("dispatcher", 0x1000, "L1", 1.0)  # never started
        recorder.commit("dispatcher", 2.0)
        assert len(recorder.trail) == 0

    def test_hops_past_max_hops_are_counted_in_the_entry(self):
        recorder = TrailRecorder(Trail(capacity=4, max_hops=2))
        recorder.start("walker0", [1], 0.0)
        for i in range(5):
            recorder.hop("walker0", 0x1000 + i, "L1", float(i))
        recorder.commit("walker0", 10.0)
        entry = recorder.trail.entries[0]
        assert len(entry["hops"]) == 2
        assert entry["dropped"] == 3
        assert recorder.trail.dropped_hops == 3

    def test_abort_all_commits_partial_trails(self):
        recorder = TrailRecorder(Trail(capacity=4))
        recorder.start("walker1", [2], 0.0)
        recorder.start("walker0", [1], 0.0)
        recorder.hop("walker0", 0x1000, "L1", 1.0)
        recorder.abort_all(9.0)
        assert recorder.open_walkers == []
        assert len(recorder.trail) == 2
        assert all(e["end"] == 9.0 for e in recorder.trail.entries)


class TestOffloadCapture:
    def run_probe(self, space, trail=None, probes=60, walkers=2):
        index, keys, _truth = build_direct_index(space, num_keys=400)
        column = materialized_probe_column(space, keys, count=probes)
        config = DEFAULT_CONFIG.with_widx(mode="shared", num_walkers=walkers)
        return offload_probe(index, column, config=config, probes=probes,
                             trail=trail)

    def test_trails_capture_real_traversals(self, space):
        trail = Trail(capacity=1024)
        outcome = self.run_probe(space, trail=trail)
        # Every probe's invocation committed one trail.
        assert trail.recorded == 60
        walkers = {e["walker"] for e in trail.entries}
        assert walkers <= {"walker0", "walker1"}
        assert len(walkers) == 2  # both walkers served requests
        levels = {level for e in trail.entries
                  for _ts, _addr, level in e["hops"]}
        assert levels <= {"L1", "LLC", "DRAM"}
        assert levels  # traversals actually touched memory
        for entry in trail.entries:
            assert entry["start"] <= entry["end"]
            hops = entry["hops"]
            assert all(hops[i][0] <= hops[i + 1][0]
                       for i in range(len(hops) - 1))
        assert "widx.trails" in outcome.stats
        assert outcome.stats["widx.trails"]["recorded"] == 60

    def test_ring_bound_holds_under_offload(self, space):
        trail = Trail(capacity=16)
        self.run_probe(space, trail=trail, probes=60)
        assert len(trail) == 16
        assert trail.recorded == 60
        assert trail.dropped_entries == 44

    def test_disabled_capture_has_no_footprint(self, space):
        outcome = self.run_probe(space, trail=None)
        assert "widx.trails" not in outcome.stats

    def test_capture_does_not_change_simulated_results(self):
        from repro.mem.layout import AddressSpace

        plain = self.run_probe(AddressSpace(), trail=None)
        traced = self.run_probe(AddressSpace(), trail=Trail(capacity=64))
        assert traced.run.total_cycles == plain.run.total_cycles
        assert traced.run.matches == plain.run.matches
        assert traced.payloads == plain.payloads
