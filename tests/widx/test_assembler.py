"""Tests for the Widx assembler."""

import pytest

from repro.errors import AssemblerError
from repro.widx.assembler import assemble
from repro.widx.isa import Opcode


def test_full_walker_program_assembles():
    program = assemble("""
        .name walk_test
        .role W
        .input r1, r2
        walk:
          ld.4 r3, [r2+0]
          cmp r4, r3, r1
          ble r4, r0, next
          ld.4 r5, [r2+4]
          emit r5
        next:
          ld.8 r2, [r2+8]
          ble r2, r0, done
          ba walk
        done:
          halt
    """)
    assert program.name == "walk_test"
    assert str(program.role) == "walker"
    assert [r.index for r in program.inputs] == [1, 2]
    assert program.instructions[-1].opcode is Opcode.HALT


def test_labels_resolve_to_pc():
    program = assemble("""
        .role H
        top:
          add r1, r1, #1
          ba top
    """)
    assert program.instructions[1].target == 0


def test_const_directive_parses_hex_and_decimal():
    program = assemble("""
        .role H
        .const r5 = 0xFF
        .const r6 = 42
          and r1, r1, r5
          add r1, r1, r6
    """)
    assert program.constants == {5: 0xFF, 6: 42}


def test_negative_immediates():
    program = assemble("""
        .role H
          add r1, r1, #-1
    """)
    assert program.instructions[0].imm == -1


def test_fused_negative_shift_means_right():
    program = assemble("""
        .role H
          xor-shf r1, r1, r1, #-24
    """)
    instruction = program.instructions[0]
    assert instruction.opcode is Opcode.XOR_SHF
    assert instruction.imm == -24


def test_load_store_widths():
    program = assemble("""
        .role P
        .input r1
        .persist r9
          st.4 [r9+0], r1
          st.8 [r9+8], r1
          halt
    """)
    assert program.instructions[0].width == 4
    assert program.instructions[1].width == 8
    assert [r.index for r in program.persistent] == [9]


def test_touch_operand():
    program = assemble("""
        .role H
          touch [r1+64]
    """)
    instruction = program.instructions[0]
    assert instruction.opcode is Opcode.TOUCH
    assert instruction.imm == 64


def test_comments_stripped():
    program = assemble("""
        .role W   ; role comment
          add r1, r1, #1  ; add one
    """)
    assert len(program.instructions) == 1


def test_missing_role_rejected():
    with pytest.raises(AssemblerError, match="role"):
        assemble("add r1, r1, #1")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError, match="mul"):
        assemble(".role H\n mul r1, r2, r3")  # no multiply on Widx!


def test_unknown_label_rejected():
    with pytest.raises(AssemblerError, match="nowhere"):
        assemble(".role H\n ba nowhere")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate"):
        assemble(".role H\nx:\n add r1, r1, #1\nx:\n halt")


def test_st_in_walker_rejected():
    with pytest.raises(AssemblerError, match="Table 1"):
        assemble(".role W\n st.8 [r1+0], r2")


def test_and_shf_walker_rejected():
    # AND-SHF is dispatcher-only per Table 1.
    with pytest.raises(AssemblerError, match="Table 1"):
        assemble(".role W\n and-shf r1, r1, r2, #3")


def test_bad_operand_counts():
    for text in (
        ".role H\n add r1, r2",
        ".role H\n ble r1, done",
        ".role H\n ld.4 r1",
        ".role H\n shl r1, #3",
    ):
        with pytest.raises(AssemblerError):
            assemble(text)


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match=r"\[rN\+imm\]"):
        assemble(".role H\n ld.4 r1, r2")


def test_empty_program_rejected():
    with pytest.raises(AssemblerError, match="empty"):
        assemble(".role H\n ; nothing\n")


def test_label_on_same_line_as_instruction():
    program = assemble("""
        .role H
        loop: add r1, r1, #1
          ba loop
    """)
    assert program.instructions[1].target == 0


def test_unknown_directive_rejected():
    with pytest.raises(AssemblerError, match="directive"):
        assemble(".bogus x\n.role H\n halt")
