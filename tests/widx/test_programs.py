"""Tests for the schema-driven Widx program generators."""

import pytest

from repro.db.hashfn import KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64
from repro.db.node import KERNEL_LAYOUT, MONETDB_LAYOUT, WIDE_LAYOUT
from repro.widx.isa import Opcode
from repro.widx.programs import (coupled_walker_program, dispatcher_program,
                                 producer_program, walker_program)


class TestDispatcherProgram:
    def test_assembles_for_every_hash(self):
        for spec in (KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64):
            generated = dispatcher_program(spec, KERNEL_LAYOUT)
            assert str(generated.program.role) == "dispatcher"

    def test_uses_fused_shift_ops_for_robust_hash(self):
        generated = dispatcher_program(ROBUST_HASH_32, KERNEL_LAYOUT)
        histogram = generated.program.opcode_histogram()
        assert histogram.get("add-shf", 0) + histogram.get("xor-shf", 0) >= 6

    def test_touch_prefetch_optional(self):
        with_touch = dispatcher_program(KERNEL_HASH, KERNEL_LAYOUT)
        without = dispatcher_program(KERNEL_HASH, KERNEL_LAYOUT,
                                     touch_ahead=False)
        assert with_touch.program.uses_opcode(Opcode.TOUCH)
        assert not without.program.uses_opcode(Opcode.TOUCH)

    def test_stride_scales_cursor_step(self):
        single = dispatcher_program(KERNEL_HASH, KERNEL_LAYOUT, stride_keys=1)
        strided = dispatcher_program(KERNEL_HASH, KERNEL_LAYOUT, stride_keys=4)
        step = lambda g: [i.imm for i in g.program.instructions
                          if i.opcode is Opcode.ADD and i.rd and
                          i.rd.index == 1][0]
        assert step(single) == 4      # 4-byte keys
        assert step(strided) == 16    # 4 keys ahead

    def test_config_registers_declared(self):
        generated = dispatcher_program(KERNEL_HASH, KERNEL_LAYOUT)
        assert set(generated.config_registers) == {
            "key_cursor", "key_count", "bucket_base", "bucket_mask"}

    def test_hash_constants_preloaded(self):
        generated = dispatcher_program(KERNEL_HASH, KERNEL_LAYOUT)
        # Listing 1's MASK and HPRIME live in constant registers.
        values = set(generated.program.constants.values())
        assert 0xB16 in values


class TestWalkerProgram:
    def test_direct_walker_has_no_base_column_config(self):
        generated = walker_program(KERNEL_LAYOUT)
        assert generated.config_registers == {}

    def test_indirect_walker_needs_base_column(self):
        generated = walker_program(MONETDB_LAYOUT)
        assert "column_base" in generated.config_registers
        # Indirect walk computes the key address with a fused shift-add.
        assert generated.program.uses_opcode(Opcode.ADD_SHF)

    def test_indirect_walker_is_longer(self):
        direct = walker_program(KERNEL_LAYOUT)
        indirect = walker_program(MONETDB_LAYOUT)
        assert len(indirect.program) > len(direct.program)

    def test_wide_layout_uses_8_byte_loads(self):
        generated = walker_program(WIDE_LAYOUT)
        loads = [i for i in generated.program.instructions
                 if i.opcode is Opcode.LD]
        assert any(l.width == 8 for l in loads)

    def test_walker_never_stores(self):
        for layout in (KERNEL_LAYOUT, MONETDB_LAYOUT, WIDE_LAYOUT):
            generated = walker_program(layout)
            assert not generated.program.uses_opcode(Opcode.ST)


class TestProducerProgram:
    def test_producer_stores_and_bumps_cursor(self):
        generated = producer_program(8)
        assert generated.program.uses_opcode(Opcode.ST)
        assert generated.config_registers == {"out_cursor": 9}

    def test_producer_is_tiny(self):
        # The output function is trivially small (Section 4.2).
        assert len(producer_program(8).program) <= 4


class TestCoupledWalkerProgram:
    def test_assembles_for_direct_and_indirect(self):
        for layout in (KERNEL_LAYOUT, MONETDB_LAYOUT):
            generated = coupled_walker_program(ROBUST_HASH_32, layout,
                                               stride_keys=2)
            assert str(generated.program.role) == "walker"

    def test_contains_both_hash_and_walk(self):
        generated = coupled_walker_program(ROBUST_HASH_32, KERNEL_LAYOUT)
        histogram = generated.program.opcode_histogram()
        assert histogram.get("xor-shf", 0) >= 1     # hashing inline
        assert histogram.get("ld", 0) >= 3          # key + walk loads

    def test_register_plan_avoids_walk_scratch(self):
        generated = coupled_walker_program(ROBUST_HASH_32, KERNEL_LAYOUT)
        config_regs = set(generated.config_registers.values())
        assert config_regs.isdisjoint({3, 4, 5, 6})


def test_all_generated_programs_fit_register_budget():
    # The paper notes functions exceeding the register file cannot map;
    # all our schemas must fit.
    for layout in (KERNEL_LAYOUT, MONETDB_LAYOUT, WIDE_LAYOUT):
        for spec in (KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64):
            dispatcher_program(spec, layout)
            coupled_walker_program(spec, layout)
        walker_program(layout)
    producer_program(8)
