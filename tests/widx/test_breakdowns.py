"""Tests for cycle-breakdown accounting (the Figure 8a/9 bars)."""

import pytest

from repro.widx.machine import WidxRunResult
from repro.widx.unit import UnitCycleBreakdown, UnitStats


def breakdown(**kwargs):
    return UnitCycleBreakdown(**kwargs)


class TestUnitCycleBreakdown:
    def test_total_sums_all_categories(self):
        b = breakdown(comp=1, mem=2, tlb=3, idle=4, queue=5)
        assert b.total == 15

    def test_merged_is_elementwise(self):
        a = breakdown(comp=1, mem=2)
        b = breakdown(comp=10, tlb=5)
        merged = a.merged(b)
        assert merged.comp == 11 and merged.mem == 2 and merged.tlb == 5

    def test_scaled(self):
        b = breakdown(comp=4, mem=8).scaled(0.5)
        assert b.comp == 2 and b.mem == 4


class TestWalkerBreakdown:
    def make_result(self, walker_cycles, total=100.0, tuples=10):
        stats = {}
        for index, cycles in enumerate(walker_cycles):
            unit = UnitStats()
            unit.cycles = cycles
            stats[f"walker{index}"] = unit
        stats["dispatcher"] = UnitStats()
        stats["dispatcher"].cycles = breakdown(comp=999)  # must be ignored
        return WidxRunResult(total_cycles=total, tuples=tuples, matches=0,
                             config_cycles=0.0, unit_stats=stats)

    def test_slack_is_folded_into_idle(self):
        result = self.make_result([breakdown(comp=30, mem=30)], total=100.0)
        merged = result.walker_breakdown()
        assert merged.idle == pytest.approx(40.0)
        assert merged.total == pytest.approx(100.0)

    def test_average_over_walkers(self):
        result = self.make_result(
            [breakdown(comp=100), breakdown(comp=50, mem=50)], total=100.0)
        merged = result.walker_breakdown()
        assert merged.comp == pytest.approx(75.0)
        assert merged.total == pytest.approx(100.0)

    def test_dispatcher_excluded(self):
        result = self.make_result([breakdown(comp=100)], total=100.0)
        assert result.walker_breakdown().comp == 100.0

    def test_per_tuple_scaling(self):
        result = self.make_result([breakdown(comp=100)], total=100.0,
                                  tuples=10)
        assert result.walker_cycles_per_tuple().comp == pytest.approx(10.0)

    def test_zero_tuples_degenerate(self):
        result = WidxRunResult(total_cycles=0, tuples=0, matches=0,
                               config_cycles=0)
        assert result.cycles_per_tuple == 0.0
        assert result.walker_cycles_per_tuple().total == 0.0

    def test_no_walkers_degenerate(self):
        result = WidxRunResult(total_cycles=10, tuples=1, matches=0,
                               config_cycles=0)
        assert result.walker_breakdown().total == 0.0
