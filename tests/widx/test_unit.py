"""Tests for the Widx unit interpreter (semantics and timing)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import WidxFault
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace
from repro.sim.engine import Engine
from repro.sim.resources import BoundedQueue
from repro.widx.assembler import assemble
from repro.widx.unit import WidxUnit

M64 = (1 << 64) - 1


class Runner:
    """Executes a single unit standalone (optionally with queues)."""

    def __init__(self, source, config=None, in_items=None, out_capacity=64):
        self.space = AddressSpace()
        self.engine = Engine()
        self.hierarchy = MemoryHierarchy(DEFAULT_CONFIG)
        program = assemble(source)
        self.in_queue = None
        if in_items is not None:
            self.in_queue = BoundedQueue(self.engine, max(1, len(in_items)))
            for item in in_items:
                self.in_queue.put(item)
            self.in_queue.close()
        self.out_queue = BoundedQueue(self.engine, out_capacity)
        self.unit = WidxUnit("u", program, self.engine, self.hierarchy,
                             self.space.memory, in_queue=self.in_queue,
                             out_queue=self.out_queue)
        if config:
            self.unit.configure(config)

    def run(self):
        self.engine.process(self.unit.run())
        self.engine.run()
        return self.unit

    def drain_out(self):
        items = []
        while len(self.out_queue):
            event = self.out_queue.get()
            items.append(event.value)
        return items


def test_alu_semantics_add_and_xor():
    runner = Runner("""
        .role H
        .const r2 = 10
        .const r3 = 0b1100
          add r4, r2, r3
          and r5, r3, #0b0110
          xor r6, r3, #0b0110
          emit r4, r5, r6
    """)
    unit = runner.run()
    assert runner.drain_out() == [(22, 0b0100, 0b1010)]


def test_add_wraps_at_64_bits():
    runner = Runner(f"""
        .role H
        .const r2 = {M64}
          add r3, r2, #1
          emit r3
    """)
    runner.run()
    assert runner.drain_out() == [(0,)]


def test_negative_immediate_decrements():
    runner = Runner("""
        .role H
        .const r2 = 5
          add r2, r2, #-1
          emit r2
    """)
    runner.run()
    assert runner.drain_out() == [(4,)]


def test_cmp_and_cmp_le():
    runner = Runner("""
        .role H
        .const r2 = 7
        .const r3 = 7
        .const r4 = 9
          cmp r5, r2, r3
          cmp r6, r2, r4
          cmp-le r7, r2, r4
          cmp-le r8, r4, r2
          emit r5, r6, r7, r8
    """)
    runner.run()
    assert runner.drain_out() == [(1, 0, 1, 0)]


def test_shifts_and_fused_ops():
    runner = Runner("""
        .role H
        .const r2 = 0x0F0
          shl r3, r2, #4
          shr r4, r2, #4
          add-shf r5, r2, r2, #1
          xor-shf r6, r2, r2, #-4
          and-shf r7, r2, r2, #0
          emit r3, r4
          emit r5, r6, r7
    """)
    runner.run()
    first, second = runner.drain_out()
    assert first == (0xF00, 0x0F)
    assert second == (0x0F0 + 0x1E0, 0x0F0 ^ 0x0F, 0x0F0)


def test_r0_is_hardwired_zero():
    runner = Runner("""
        .role H
        .const r2 = 5
          add r0, r2, r2
          emit r0
    """)
    runner.run()
    assert runner.drain_out() == [(0,)]


def test_ble_branches_on_less_equal():
    runner = Runner("""
        .role H
        .const r2 = 3
        loop:
          add r3, r3, #1
          add r2, r2, #-1
          ble r2, r0, done
          ba loop
        done:
          emit r3
    """)
    runner.run()
    assert runner.drain_out() == [(3,)]


def test_load_reads_simulated_memory():
    runner = Runner("""
        .role W
        .input r1
          ld.8 r2, [r1+0]
          ld.4 r3, [r1+8]
          emit r2, r3
    """, in_items=[(0,)])  # placeholder, patched below
    region = runner.space.allocate("data", 64)
    runner.space.memory.write_u64(region.base, 0xCAFEBABE)
    runner.space.memory.write_u32(region.base + 8, 77)
    # Re-point the input to the real region.
    runner.in_queue._items.clear()
    runner.in_queue._items.append((region.base,))
    runner.run()
    assert runner.drain_out() == [(0xCAFEBABE, 77)]


def test_store_writes_memory_producer_only():
    runner = Runner("""
        .role P
        .input r1
        .persist r9
          st.8 [r9+0], r1
          add r9, r9, #8
          halt
    """, in_items=[(111,), (222,)])
    region = runner.space.allocate("out", 64)
    runner.unit.configure({9: region.base})
    unit = runner.run()
    assert runner.space.memory.read_u64(region.base) == 111
    assert runner.space.memory.read_u64(region.base + 8) == 222
    assert unit.stats.invocations == 2
    assert unit.stats.stores == 2


def test_touch_prefetches_without_blocking():
    runner = Runner("""
        .role H
        .const r1 = 0x10000
          touch [r1+0]
          emit r1
    """)
    unit = runner.run()
    assert unit.stats.touches == 1
    assert runner.hierarchy.stats.l1d.prefetches == 1
    # A touch never blocks: comp-only time.
    assert unit.stats.cycles.mem == 0


def test_load_miss_attributed_to_mem_cycles():
    runner = Runner("""
        .role W
        .input r1
          ld.8 r2, [r1+0]
          halt
    """, in_items=None)
    region = runner.space.allocate("data", 64)
    runner.in_queue = BoundedQueue(runner.engine, 1)
    runner.in_queue.put((region.base,))
    runner.in_queue.close()
    runner.unit.in_queue = runner.in_queue
    unit = runner.run()
    assert unit.stats.cycles.mem > 50   # DRAM-bound load
    assert unit.stats.cycles.tlb > 0    # cold translation


def test_idle_time_counted_while_waiting_for_input():
    engine = Engine()
    space = AddressSpace()
    hierarchy = MemoryHierarchy(DEFAULT_CONFIG)
    program = assemble("""
        .role W
        .input r1
          add r2, r1, #0
          halt
    """)
    queue = BoundedQueue(engine, 2)
    unit = WidxUnit("w", program, engine, hierarchy, space.memory,
                    in_queue=queue)

    def feeder():
        yield 50
        yield queue.put((1,))
        queue.close()

    engine.process(unit.run())
    engine.process(feeder())
    engine.run()
    assert unit.stats.cycles.idle >= 50


def test_emit_blocks_on_full_queue():
    engine = Engine()
    space = AddressSpace()
    hierarchy = MemoryHierarchy(DEFAULT_CONFIG)
    program = assemble("""
        .role H
        .const r1 = 1
          emit r1
          emit r1
          emit r1
    """)
    out = BoundedQueue(engine, 1)
    unit = WidxUnit("h", program, engine, hierarchy, space.memory,
                    out_queue=out)

    def slow_consumer():
        yield 30
        yield out.get()
        yield 30
        yield out.get()
        yield out.get()

    engine.process(unit.run())
    engine.process(slow_consumer())
    engine.run()
    assert unit.stats.cycles.queue > 0
    assert unit.stats.emitted == 3


def test_emit_without_queue_faults():
    runner = Runner("""
        .role H
        .const r1 = 1
          emit r1
    """)
    runner.unit.out_queue = None
    runner.engine.process(runner.unit.run())
    with pytest.raises(WidxFault):
        runner.engine.run()


def test_wrong_input_arity_faults():
    runner = Runner("""
        .role W
        .input r1, r2
          halt
    """, in_items=[(1,)])
    runner.engine.process(runner.unit.run())
    with pytest.raises(WidxFault):
        runner.engine.run()


def test_configure_rejects_r0():
    runner = Runner(".role H\n halt")
    with pytest.raises(WidxFault):
        runner.unit.configure({0: 5})


def test_instruction_and_invocation_counters():
    runner = Runner("""
        .role W
        .input r1
          add r2, r1, #1
          halt
    """, in_items=[(1,), (2,), (3,)])
    unit = runner.run()
    assert unit.stats.invocations == 3
    assert unit.stats.instructions == 6
