"""Tests for multi-range B+-tree scans on Widx."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.db.btree import BPlusTree, KEY_PAD
from repro.db.datagen import make_rng, unique_keys
from repro.errors import WidxFault
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_tree_ranges


def make_tree(space, n=5_000, seed=13):
    keys = unique_keys(n, 4, make_rng(seed))
    tree = BPlusTree(space, keys.tolist(), list(range(1, n + 1)))
    return tree, sorted(keys.tolist())


class TestRangeOffload:
    def test_single_range_validates(self, space):
        tree, keys = make_tree(space)
        outcome = offload_tree_ranges(tree, [(keys[100], keys[160])])
        assert outcome.validated is True
        assert outcome.matches == 61

    def test_many_ranges_across_walkers(self, space):
        tree, keys = make_tree(space)
        rng = make_rng(5)
        ranges = []
        for _ in range(30):
            start = int(rng.integers(0, len(keys) - 60))
            ranges.append((keys[start], keys[start + int(rng.integers(0, 50))]))
        for walkers in (1, 2, 4):
            outcome = offload_tree_ranges(
                tree, ranges, config=DEFAULT_CONFIG.with_walkers(walkers))
            assert outcome.validated is True

    def test_inter_range_parallelism_speeds_up(self, space):
        tree, keys = make_tree(space, n=40_000)
        rng = make_rng(6)
        ranges = []
        for _ in range(60):
            start = int(rng.integers(0, len(keys) - 120))
            ranges.append((keys[start], keys[start + 100]))
        times = {}
        for walkers in (1, 4):
            outcome = offload_tree_ranges(
                tree, ranges, config=DEFAULT_CONFIG.with_walkers(walkers))
            times[walkers] = outcome.run.total_cycles
        assert times[1] / times[4] > 2.0

    def test_empty_range_emits_nothing(self, space):
        tree, keys = make_tree(space, n=200)
        gap_low = keys[10] + 1
        gap_high = keys[11] - 1
        if gap_low > gap_high:
            pytest.skip("no gap between adjacent keys in this sample")
        outcome = offload_tree_ranges(tree, [(gap_low, gap_high)])
        assert outcome.matches == 0

    def test_range_covering_everything(self, space):
        tree, keys = make_tree(space, n=500)
        outcome = offload_tree_ranges(tree, [(0, KEY_PAD - 1)])
        assert outcome.matches == 500

    def test_overlapping_ranges_duplicate_results(self, space):
        tree, keys = make_tree(space, n=300)
        span = (keys[0], keys[50])
        outcome = offload_tree_ranges(tree, [span, span])
        assert outcome.matches == 2 * 51

    def test_bad_inputs_rejected(self, space):
        tree, keys = make_tree(space, n=100)
        with pytest.raises(WidxFault):
            offload_tree_ranges(tree, [])
        with pytest.raises(WidxFault):
            offload_tree_ranges(tree, [(5, 1)])
        with pytest.raises(WidxFault):
            offload_tree_ranges(tree, [(0, KEY_PAD)])
        with pytest.raises(WidxFault):
            offload_tree_ranges(
                tree, [(1, 2)],
                config=DEFAULT_CONFIG.with_widx(mode="private"))


@settings(max_examples=15, deadline=None)
@given(keys=st.lists(st.integers(min_value=1, max_value=100_000),
                     min_size=4, max_size=120, unique=True),
       bounds=st.lists(st.tuples(st.integers(0, 110_000),
                                 st.integers(0, 110_000)),
                       min_size=1, max_size=8))
def test_widx_ranges_equal_software_scan(keys, bounds):
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(len(keys))))
    ranges = [(min(a, b), max(a, b)) for a, b in bounds]
    outcome = offload_tree_ranges(tree, ranges)
    assert outcome.validated is True
