"""Tests for the Widx ISA definitions and program validation."""

import pytest

from repro.errors import AssemblerError, RegisterBudgetExceeded
from repro.widx.isa import (Instruction, NUM_REGISTERS, Opcode, Register,
                            UNIT_USAGE)
from repro.widx.program import (DISPATCHER, PRODUCER, Program, UnitRole,
                                WALKER)


def test_table1_instruction_set_is_complete():
    # Exactly the 15 Table 1 rows plus the two modelling additions.
    names = {op.value for op in Opcode}
    table1 = {"add", "and", "ba", "ble", "cmp", "cmp-le", "ld", "shl",
              "shr", "st", "touch", "xor", "add-shf", "and-shf", "xor-shf"}
    assert table1 <= names
    assert names - table1 == {"emit", "halt"}


def test_table1_usage_matrix():
    # ST is producer-only; fused shift-ops are restricted per Table 1.
    assert UNIT_USAGE[Opcode.ST] == frozenset("P")
    assert UNIT_USAGE[Opcode.ADD_SHF] == frozenset("HW")
    assert UNIT_USAGE[Opcode.AND_SHF] == frozenset("H")
    assert UNIT_USAGE[Opcode.XOR_SHF] == frozenset("HW")
    for opcode in (Opcode.ADD, Opcode.AND, Opcode.BA, Opcode.BLE,
                   Opcode.CMP, Opcode.CMP_LE, Opcode.LD, Opcode.SHL,
                   Opcode.SHR, Opcode.TOUCH, Opcode.XOR):
        assert UNIT_USAGE[opcode] == frozenset("HWP"), opcode


def test_register_bounds():
    Register(0)
    Register(NUM_REGISTERS - 1)
    with pytest.raises(AssemblerError):
        Register(NUM_REGISTERS)
    with pytest.raises(AssemblerError):
        Register(-1)


def test_instruction_validation():
    with pytest.raises(AssemblerError):
        Instruction(Opcode.SHL, rd=Register(1), ra=Register(2), imm=64)
    with pytest.raises(AssemblerError):
        Instruction(Opcode.ADD_SHF, rd=Register(1), ra=Register(2),
                    rb=Register(3), imm=99)
    with pytest.raises(AssemblerError):
        Instruction(Opcode.LD, rd=Register(1), ra=Register(2), imm=0,
                    width=2)
    with pytest.raises(AssemblerError):
        Instruction(Opcode.EMIT, sources=())


def test_role_names():
    assert str(DISPATCHER) == "dispatcher"
    assert str(WALKER) == "walker"
    assert str(PRODUCER) == "producer"
    with pytest.raises(AssemblerError):
        UnitRole("X")


def _program(role, instructions, **kwargs):
    return Program(name="t", role=role, instructions=tuple(instructions),
                   **kwargs)


def test_program_rejects_st_outside_producer():
    store = Instruction(Opcode.ST, ra=Register(1), imm=0, rb=Register(2))
    with pytest.raises(AssemblerError, match="Table 1"):
        _program(WALKER, [store])
    _program(PRODUCER, [store])  # fine


def test_program_rejects_unresolved_branch():
    branch = Instruction(Opcode.BA, target=5)
    halt = Instruction(Opcode.HALT)
    with pytest.raises(AssemblerError, match="branch target"):
        _program(WALKER, [branch, halt])


def test_program_rejects_r0_constant():
    halt = Instruction(Opcode.HALT)
    with pytest.raises(AssemblerError, match="r0"):
        _program(WALKER, [halt], constants={0: 5})


def test_program_register_budget():
    # A valid 32-register program is fine; the Register class itself stops
    # anything beyond r31 (the architecture has no push/pop).
    add = Instruction(Opcode.ADD, rd=Register(31), ra=Register(30),
                      rb=Register(29))
    program = _program(WALKER, [add])
    assert program.static_instruction_count == 1
    with pytest.raises((AssemblerError, RegisterBudgetExceeded)):
        Register(32)


def test_program_opcode_histogram():
    instructions = [
        Instruction(Opcode.ADD, rd=Register(1), ra=Register(1), imm=1),
        Instruction(Opcode.ADD, rd=Register(1), ra=Register(1), imm=1),
        Instruction(Opcode.HALT),
    ]
    program = _program(WALKER, instructions)
    assert program.opcode_histogram() == {"add": 2, "halt": 1}
    assert program.uses_opcode(Opcode.ADD)
    assert not program.uses_opcode(Opcode.LD)


def test_empty_program_rejected():
    with pytest.raises(AssemblerError):
        _program(WALKER, [])
