"""Differential tests for the ordered-index zoo offload programs.

Every new traversal class — the MLP-friendly trie, the hash-accelerated
wormhole, and the level-wise batched B+-tree — gets the same wall the
hash and B+-tree offloads got:

* **Functional**: the payload multiset an offloaded walker run emits
  (``validate=False``, so the offload's own cross-check is out of the
  loop) against ground truth computed here with the functional index
  (``search`` / ``range_scan``), across lookups, misses and range scans.
* **Mechanical**: the full simulated outcome on the optimized memory
  system against the all-naive reference twin injected through the
  ``memory=``/``engine=``/``unit_cls=`` seams — cycles, payloads and
  every unit/memory counter must be bit-identical.
* **Grid**: index class x walker organization x workload size x seed,
  mirroring ``tests/pim/test_differential_pim.py``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.btree import BPlusTree
from repro.db.column import Column
from repro.db.trie import MlpTrie
from repro.db.types import DataType
from repro.db.wormhole import WormholeIndex
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.reference import use_reference_arrays
from repro.sim.reference import ReferenceEngine
from repro.widx.offload import (offload_batched_tree, offload_trie_ranges,
                                offload_trie_search,
                                offload_wormhole_ranges,
                                offload_wormhole_search)
from repro.widx.reference import ReferenceWidxUnit

#: (seed, number of keys): tiny, one split level, multi level.
SHAPES = [(3, 8), (5, 60), (7, 400)]

INDEX_CLASSES = {
    "trie": (MlpTrie, offload_trie_search),
    "wormhole": (WormholeIndex, offload_wormhole_search),
}


def build_index(space, cls, seed, num_keys):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 2**31), num_keys)
    payloads = [rng.randrange(1, 2**31) for _ in keys]
    return cls(space, keys, payloads), keys, dict(zip(keys, payloads))


def probe_column(space, keys, seed, count, match_fraction=0.7):
    rng = random.Random(seed + 1)
    values = [rng.choice(keys) if rng.random() < match_fraction
              else rng.randrange(1, 2**31)
              for _ in range(count)]
    column = Column("probes", DataType.U32,
                    np.asarray(values, dtype=np.uint32))
    column.materialize(space)
    return column


def random_ranges(keys, seed, count):
    rng = random.Random(seed + 2)
    lo, hi = min(keys), max(keys)
    ranges = []
    for _ in range(count):
        a, b = rng.randint(max(0, lo - 5), hi + 5), rng.randint(lo, hi + 5)
        ranges.append((min(a, b), max(a, b)))
    return ranges


def outcome_key(outcome):
    """Every externally observable artifact of one offload run."""
    run = outcome.run
    units = tuple(
        (name, stats.invocations.value, stats.instructions.value,
         stats.loads.value, stats.stores.value, stats.emitted.value,
         stats.cycles.comp, stats.cycles.mem, stats.cycles.tlb,
         stats.cycles.queue)
        for name, stats in sorted(run.unit_stats.items()))
    mem = outcome.memory.stats
    memory = (mem.loads.value, mem.stores.value,
              mem.l1d.hits.value, mem.l1d.misses.value,
              mem.llc.hits.value, mem.llc.misses.value,
              mem.tlb.misses.value, mem.dram_blocks.value)
    return (run.total_cycles, run.matches, tuple(outcome.payloads),
            outcome.validated, units, memory)


def reference_kwargs(config):
    return dict(memory=use_reference_arrays(MemoryHierarchy(config)),
                engine=ReferenceEngine(),
                unit_cls=ReferenceWidxUnit)


# ---------------------------------------------------------------------------
# functional differentials: emitted payloads vs the functional index
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_class", sorted(INDEX_CLASSES))
@pytest.mark.parametrize("seed,num_keys", SHAPES)
@pytest.mark.parametrize("mode,walkers", [("shared", 1), ("shared", 4),
                                          ("private", 2)])
def test_search_payloads_match_functional_search(space, index_class, seed,
                                                 num_keys, mode, walkers):
    cls, offload = INDEX_CLASSES[index_class]
    index, keys, truth = build_index(space, cls, seed, num_keys)
    column = probe_column(space, keys, seed, count=min(120, 3 * num_keys))
    expected = sorted(truth[int(v)] for v in column.values
                      if int(v) in truth)
    outcome = offload(
        index, column,
        config=DEFAULT_CONFIG.with_widx(num_walkers=walkers, mode=mode),
        validate=False)
    assert sorted(outcome.payloads) == expected
    assert outcome.run.matches == len(expected)


@pytest.mark.parametrize("index_class", sorted(INDEX_CLASSES))
def test_search_all_misses_emit_nothing(space, index_class):
    cls, offload = INDEX_CLASSES[index_class]
    index, keys, _truth = build_index(space, cls, 5, 60)
    column = probe_column(space, keys, 5, count=80, match_fraction=0.0)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2, mode="shared")
    outcome = offload(index, column, config=config, validate=False)
    assert outcome.payloads == []
    assert outcome.run.matches == 0


@pytest.mark.parametrize("seed,num_keys", SHAPES)
@pytest.mark.parametrize("walkers", [1, 3])
def test_trie_range_payloads_match_functional_scan(space, seed, num_keys,
                                                   walkers):
    trie, keys, _truth = build_index(space, MlpTrie, seed, num_keys)
    ranges = random_ranges(keys, seed, count=8)
    expected = sorted(payload for low, high in ranges
                      for _key, payload in trie.range_scan(low, high))
    outcome = offload_trie_ranges(
        trie, ranges,
        config=DEFAULT_CONFIG.with_widx(num_walkers=walkers, mode="shared"),
        validate=False)
    assert sorted(outcome.payloads) == expected
    assert outcome.run.matches == len(expected)


@pytest.mark.parametrize("seed,num_keys", SHAPES)
@pytest.mark.parametrize("walkers", [1, 3])
def test_wormhole_range_payloads_match_functional_scan(space, seed, num_keys,
                                                       walkers):
    index, keys, _truth = build_index(space, WormholeIndex, seed, num_keys)
    ranges = random_ranges(keys, seed, count=8)
    expected = sorted(payload for low, high in ranges
                      for _key, payload in index.range_scan(low, high))
    outcome = offload_wormhole_ranges(
        index, ranges,
        config=DEFAULT_CONFIG.with_widx(num_walkers=walkers, mode="shared"),
        validate=False)
    assert sorted(outcome.payloads) == expected
    assert outcome.run.matches == len(expected)


@pytest.mark.parametrize("seed,num_keys", SHAPES)
@pytest.mark.parametrize("walkers,batch", [(1, 4), (2, 2), (4, 3)])
def test_batched_tree_payloads_match_functional_search(space, seed, num_keys,
                                                       walkers, batch):
    tree, keys, truth = build_index(space, BPlusTree, seed, num_keys)
    count = (min(120, 3 * num_keys) // batch) * batch
    column = probe_column(space, keys, seed, count=count)
    expected = sorted(truth[int(v)] for v in column.values[:count]
                      if int(v) in truth)
    outcome = offload_batched_tree(
        tree, column, batch=batch,
        config=DEFAULT_CONFIG.with_widx(num_walkers=walkers),
        validate=False)
    assert sorted(outcome.payloads) == expected
    assert outcome.run.matches == len(expected)


def test_batched_tree_unsorted_batches_match_functional_search(space):
    """``sort_batches=False`` stages keys in arrival order; the emitted
    payload multiset must not depend on the staging order."""
    tree, keys, truth = build_index(space, BPlusTree, 7, 400)
    column = probe_column(space, keys, 7, count=120)
    expected = sorted(truth[int(v)] for v in column.values
                      if int(v) in truth)
    outcome = offload_batched_tree(
        tree, column, batch=4, sort_batches=False,
        config=DEFAULT_CONFIG.with_widx(num_walkers=2),
        validate=False)
    assert sorted(outcome.payloads) == expected


# ---------------------------------------------------------------------------
# mechanical differentials: optimized stack vs the all-naive twin
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_class", sorted(INDEX_CLASSES))
@pytest.mark.parametrize("walkers", [1, 2, 4])
def test_search_identical_on_reference_stack(space, index_class, walkers):
    cls, offload = INDEX_CLASSES[index_class]
    index, keys, _truth = build_index(space, cls, 5, 60)
    column = probe_column(space, keys, 5, count=100)
    config = DEFAULT_CONFIG.with_widx(num_walkers=walkers, mode="shared")
    optimized = offload(index, column, config=config)
    reference = offload(index, column, config=config,
                        **reference_kwargs(config))
    assert optimized.validated is reference.validated is True
    assert outcome_key(optimized) == outcome_key(reference)


@pytest.mark.parametrize("index_class", sorted(INDEX_CLASSES))
def test_search_identical_on_reference_stack_private_mode(space, index_class):
    cls, offload = INDEX_CLASSES[index_class]
    index, keys, _truth = build_index(space, cls, 7, 400)
    column = probe_column(space, keys, 7, count=100)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2, mode="private")
    optimized = offload(index, column, config=config)
    reference = offload(index, column, config=config,
                        **reference_kwargs(config))
    assert outcome_key(optimized) == outcome_key(reference)


def test_trie_ranges_identical_on_reference_stack(space):
    trie, keys, _truth = build_index(space, MlpTrie, 7, 400)
    ranges = random_ranges(keys, 7, count=6)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2, mode="shared")
    optimized = offload_trie_ranges(trie, ranges, config=config)
    reference = offload_trie_ranges(trie, ranges, config=config,
                                    **reference_kwargs(config))
    assert outcome_key(optimized) == outcome_key(reference)


def test_wormhole_ranges_identical_on_reference_stack(space):
    index, keys, _truth = build_index(space, WormholeIndex, 7, 400)
    ranges = random_ranges(keys, 7, count=6)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2, mode="shared")
    optimized = offload_wormhole_ranges(index, ranges, config=config)
    reference = offload_wormhole_ranges(index, ranges, config=config,
                                        **reference_kwargs(config))
    assert outcome_key(optimized) == outcome_key(reference)


@pytest.mark.parametrize("walkers", [1, 4])
def test_batched_tree_identical_on_reference_stack(space, walkers):
    tree, keys, _truth = build_index(space, BPlusTree, 5, 60)
    column = probe_column(space, keys, 5, count=100)
    config = DEFAULT_CONFIG.with_widx(num_walkers=walkers)
    optimized = offload_batched_tree(tree, column, config=config)
    reference = offload_batched_tree(tree, column, config=config,
                                     **reference_kwargs(config))
    assert outcome_key(optimized) == outcome_key(reference)


# ---------------------------------------------------------------------------
# grid: index class x walkers x workload size x seed, cold caches included
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("index_class", sorted(INDEX_CLASSES))
@pytest.mark.parametrize("seed,num_keys", SHAPES)
@pytest.mark.parametrize("walkers", [1, 2])
def test_grid_search_identical_on_reference_stack(space, index_class, seed,
                                                  num_keys, walkers):
    cls, offload = INDEX_CLASSES[index_class]
    index, keys, _truth = build_index(space, cls, seed, num_keys)
    column = probe_column(space, keys, seed, count=80, match_fraction=0.6)
    config = DEFAULT_CONFIG.with_widx(num_walkers=walkers, mode="shared")
    optimized = offload(index, column, config=config, warm=False)
    reference = offload(index, column, config=config, warm=False,
                        **reference_kwargs(config))
    assert outcome_key(optimized) == outcome_key(reference)


@pytest.mark.slow
@pytest.mark.parametrize("seed,num_keys", SHAPES)
@pytest.mark.parametrize("batch", [2, 4])
def test_grid_batched_tree_identical_on_reference_stack(space, seed,
                                                        num_keys, batch):
    tree, keys, _truth = build_index(space, BPlusTree, seed, num_keys)
    column = probe_column(space, keys, seed, count=80, match_fraction=0.6)
    config = DEFAULT_CONFIG.with_widx(num_walkers=2)
    optimized = offload_batched_tree(tree, column, config=config,
                                     batch=batch, warm=False)
    reference = offload_batched_tree(tree, column, config=config,
                                     batch=batch, warm=False,
                                     **reference_kwargs(config))
    assert outcome_key(optimized) == outcome_key(reference)
