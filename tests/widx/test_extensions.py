"""Tests for the Section 7 extensions: B+-tree offload, LLC-side
placement, and the fault/fallback path."""

import dataclasses

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.btree import BPlusTree
from repro.db.column import Column
from repro.db.datagen import make_rng, unique_keys
from repro.db.types import DataType
from repro.errors import WidxFault
from repro.mem.llcside import LlcSideMemory
from repro.widx.offload import offload_probe, offload_tree_search
from tests.conftest import build_direct_index, materialized_probe_column


def make_tree_workload(space, n=2000, probes=400, seed=21):
    rng = make_rng(seed)
    keys = unique_keys(n, 4, rng)
    tree = BPlusTree(space, keys.tolist(), list(range(1, n + 1)))
    hits = rng.choice(keys, probes // 2)
    misses = (keys.max() + 1 + rng.integers(0, 1000, probes - probes // 2)
              ).astype(np.uint32)
    column = Column("probes", DataType.U32, np.concatenate([hits, misses]))
    column.materialize(space)
    return tree, column


class TestTreeOffload:
    def test_validates_against_software_search(self, space):
        tree, column = make_tree_workload(space)
        outcome = offload_tree_search(tree, column)
        assert outcome.validated is True
        assert outcome.matches == 200

    @pytest.mark.parametrize("walkers", [1, 2, 4])
    def test_walker_scaling(self, space, walkers):
        tree, column = make_tree_workload(space)
        outcome = offload_tree_search(
            tree, column, config=DEFAULT_CONFIG.with_walkers(walkers))
        assert outcome.validated is True

    def test_more_walkers_are_faster(self, space):
        tree, column = make_tree_workload(space, n=60_000, probes=600)
        times = {}
        for walkers in (1, 4):
            outcome = offload_tree_search(
                tree, column, config=DEFAULT_CONFIG.with_walkers(walkers))
            times[walkers] = outcome.cycles_per_tuple
        assert times[1] / times[4] > 2.0

    def test_private_mode_supported(self, space):
        tree, column = make_tree_workload(space)
        config = DEFAULT_CONFIG.with_widx(mode="private", num_walkers=2)
        outcome = offload_tree_search(tree, column, config=config)
        assert outcome.validated is True

    def test_coupled_mode_rejected(self, space):
        tree, column = make_tree_workload(space)
        config = DEFAULT_CONFIG.with_widx(mode="coupled")
        with pytest.raises(WidxFault, match="hashing stage"):
            offload_tree_search(tree, column, config=config)

    def test_tree_probe_costs_scale_with_height(self, space):
        shallow, column_a = make_tree_workload(space, n=300, probes=300)
        from repro.mem.layout import AddressSpace
        other = AddressSpace()
        deep, column_b = make_tree_workload(other, n=60_000, probes=300)
        fast = offload_tree_search(shallow, column_a)
        slow = offload_tree_search(deep, column_b)
        assert slow.cycles_per_tuple > fast.cycles_per_tuple

    def test_rejects_non_tree(self, space):
        index, keys, truth = build_direct_index(space, num_keys=50)
        column = materialized_probe_column(space, keys, count=10)
        with pytest.raises(WidxFault, match="BPlusTree"):
            offload_tree_search(index, column)


def llc_config(**widx_overrides):
    widx = dataclasses.replace(DEFAULT_CONFIG.widx, placement="llc",
                               **widx_overrides)
    return dataclasses.replace(DEFAULT_CONFIG, widx=widx)


class TestLlcSidePlacement:
    def test_functionally_identical(self, space):
        index, keys, truth = build_direct_index(space, num_keys=3000)
        column = materialized_probe_column(space, keys, count=300)
        outcome = offload_probe(index, column, config=llc_config())
        assert outcome.validated is True

    def test_uses_dedicated_memory_path(self, space):
        index, keys, truth = build_direct_index(space, num_keys=3000)
        column = materialized_probe_column(space, keys, count=200)
        outcome = offload_probe(index, column, config=llc_config())
        assert isinstance(outcome.memory, LlcSideMemory)
        assert outcome.memory.stats.loads > 0

    def test_no_crossbar_between_buffer_and_llc(self):
        memory = LlcSideMemory(DEFAULT_CONFIG)
        memory.warm_block(0x1_0000, "llc")
        result = memory.load(0x1_0000, 0.0)
        # TLB walk (dedicated TLB, cold) + LLC hit — no 2x4-cycle crossbar.
        assert result.level == "LLC"
        core = DEFAULT_CONFIG
        assert result.complete - result.tlb_stall <= (
            core.llc.latency_cycles + 2)

    def test_dedicated_tlb_reach_is_smaller(self, space):
        # An index beyond the 8 MB dedicated-TLB reach (but inside the
        # host MMU's 16 MB) suffers TLB stalls only LLC-side — one of the
        # paper's trade-offs.  ~700K 16 B entries ≈ 12.6 MB.
        index, keys, truth = build_direct_index(space, num_keys=700_000,
                                                nodes_per_bucket=2.0)
        column = materialized_probe_column(space, keys, count=400)
        core_side = offload_probe(index, column, config=DEFAULT_CONFIG)
        llc_side = offload_probe(index, column, config=llc_config())
        core_tlb = core_side.run.walker_breakdown().tlb
        llc_tlb = llc_side.run.walker_breakdown().tlb
        assert llc_tlb > core_tlb


class TestFaultFallback:
    def corrupt(self, machine):
        # Point walker 0's node pointer base at unmapped memory by
        # corrupting the dispatcher's bucket base register.
        name = ("dispatcher" if "dispatcher" in machine.units
                else "dispatcher0")
        machine.configure_unit(name, {3: 0x7FFF_FF00})

    def test_fault_without_fallback_raises(self, space):
        index, keys, truth = build_direct_index(space, num_keys=500)
        column = materialized_probe_column(space, keys, count=100)
        with pytest.raises(Exception):
            offload_probe(index, column, configure_hook=self.corrupt)

    def test_fault_falls_back_to_host(self, space):
        index, keys, truth = build_direct_index(space, num_keys=500)
        column = materialized_probe_column(space, keys, count=100)
        outcome = offload_probe(index, column, configure_hook=self.corrupt,
                                fallback_to_host=True)
        assert outcome.fell_back is True
        assert outcome.validated is True
        # The host recomputed every match correctly.
        expected = []
        for row in range(100):
            expected.extend(index.probe(int(column.values[row])))
        assert sorted(outcome.payloads) == sorted(expected)

    def test_fallback_charges_wasted_cycles(self, space):
        index, keys, truth = build_direct_index(space, num_keys=500)
        column = materialized_probe_column(space, keys, count=100)
        clean = offload_probe(index, column)
        fell = offload_probe(index, column, configure_hook=self.corrupt,
                             fallback_to_host=True)
        assert fell.run.total_cycles > clean.run.total_cycles
        assert fell.abort_cycles >= 0

    def test_clean_run_never_falls_back(self, space):
        index, keys, truth = build_direct_index(space, num_keys=500)
        column = materialized_probe_column(space, keys, count=100)
        outcome = offload_probe(index, column, fallback_to_host=True)
        assert outcome.fell_back is False
