"""Public-API surface tests: exports resolve and everything is documented."""

import importlib
import inspect
import pkgutil

import repro


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_alls_resolve():
    for module in iter_repro_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_every_module_has_a_docstring():
    for module in iter_repro_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_every_public_item_is_documented():
    """Deliverable: doc comments on every public class and function."""
    undocumented = []
    for module in iter_repro_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its definition site
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ and method.__doc__.strip()):
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}")
    assert not undocumented, (
        f"{len(undocumented)} undocumented public items: "
        + ", ".join(sorted(undocumented)[:40]))


def test_version_is_exposed():
    assert repro.__version__.count(".") == 2


def test_error_hierarchy():
    from repro import errors
    for name in ("ConfigError", "SimulationError", "MemoryError_",
                 "AssemblerError", "WidxFault", "PlanError",
                 "WorkloadError"):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError), name
    assert issubclass(errors.SegmentationFault, errors.MemoryError_)
    assert issubclass(errors.AlignmentError, errors.MemoryError_)
    assert issubclass(errors.RegisterBudgetExceeded, errors.AssemblerError)
