"""Tests for the live driver's clocks."""

import pytest

from repro.errors import ServeError
from repro.live.clock import ManualClock, WallClock


class FakeTime:
    def __init__(self, start=100.0):
        self.t = start

    def __call__(self):
        return self.t


class TestWallClock:
    def test_starts_near_zero(self):
        fake = FakeTime()
        clock = WallClock(cycles_per_second=1000.0, time_fn=fake)
        assert clock.now() == 0.0

    def test_converts_seconds_to_cycles(self):
        fake = FakeTime()
        clock = WallClock(cycles_per_second=1000.0, time_fn=fake)
        fake.t += 2.5
        assert clock.now() == pytest.approx(2500.0)

    def test_seconds_until_future_cycle(self):
        fake = FakeTime()
        clock = WallClock(cycles_per_second=1000.0, time_fn=fake)
        assert clock.seconds_until(500.0) == pytest.approx(0.5)

    def test_seconds_until_past_cycle_is_zero(self):
        fake = FakeTime()
        clock = WallClock(cycles_per_second=1000.0, time_fn=fake)
        fake.t += 1.0
        assert clock.seconds_until(500.0) == 0.0

    def test_rejects_bad_frequency(self):
        with pytest.raises(ServeError):
            WallClock(cycles_per_second=0.0)

    def test_real_monotonic_default_is_monotonic(self):
        clock = WallClock()
        first = clock.now()
        assert clock.now() >= first >= 0.0


class TestManualClock:
    def test_starts_where_told(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance_moves_forward(self):
        clock = ManualClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now() == 10.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ServeError):
            ManualClock().advance(-1.0)

    def test_advance_to_is_monotonic(self):
        clock = ManualClock()
        clock.advance_to(50.0)
        clock.advance_to(25.0)  # no-op, never goes backwards
        assert clock.now() == 50.0

    def test_seconds_until_is_always_zero(self):
        assert ManualClock().seconds_until(1.0e9) == 0.0
