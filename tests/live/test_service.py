"""Deterministic-replay tests for the live serving driver.

Everything here drives :class:`~repro.live.service.LiveService` from a
:class:`~repro.live.clock.ManualClock` — no asyncio, no sleeping, no
dependence on host speed.  The differential tests replay the same
request schedules through the discrete-event driver and compare
outcomes, pinning the live driver to the extracted core's semantics.
"""

import pytest

from repro.errors import ServeError
from repro.live.clock import ManualClock
from repro.live.service import LiveService
from repro.serve.control import parse_controller
from repro.serve.core import ResilienceConfig
from repro.serve.policies import parse_policy
from repro.serve.service import ServiceModel
from repro.serve.simulate import build_requests, simulate_service

MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})


def replay(requests, *, policy="fifo", cores=1, resilience=None,
           walkers=None):
    """Push a request schedule through a LiveService and finalize it."""
    service = LiveService(MODEL, policy=policy, cores=cores,
                          resilience=resilience, clock=ManualClock(),
                          walkers=walkers)
    for request in requests:
        service.clock.advance_to(request.arrival)
        service.offer(keys=request.keys, now=request.arrival)
    service.close()
    service.drain()
    return service


class TestBasicServing:
    def test_single_request_served_at_service_time(self):
        settled = []
        service = LiveService(
            MODEL, clock=ManualClock(),
            on_settled=lambda r, s, t: settled.append((r.seq, s, t)))
        assert service.offer(now=0.0)["status"] == "admitted"
        service.close()
        service.drain()
        result = service.result()
        assert result.completed == 1
        assert settled == [(0, "served", 100.0)]
        assert result.latency.count == 1
        assert result.makespan == 100.0

    def test_queued_requests_serve_back_to_back(self):
        requests = build_requests(5.0, 10, 8, seed=3,
                                  arrival="deterministic")
        service = replay(requests, policy="fifo")
        result = service.result()
        assert result.completed == 10
        assert result.shed == result.expired == 0

    def test_batching_policy_groups_backlog(self):
        # The live driver is work-conserving: the first arrival starts
        # alone, the four that land while the core is busy form one
        # size-capped batch when it frees up.
        service = LiveService(MODEL, policy="size:4", clock=ManualClock())
        for _ in range(5):
            service.offer(now=0.0)
        service.close()
        service.drain()
        result = service.result()
        assert result.stats["serve.batches"]["value"] == 2
        assert result.makespan == 100.0 + 280.0

    def test_deadline_policy_holds_the_batch_open(self):
        policy = parse_policy("deadline:50")
        service = LiveService(MODEL, policy=policy, clock=ManualClock())
        service.offer(now=0.0)
        service.clock.advance_to(30.0)
        service.offer(now=30.0)  # lands inside the hold window
        service.close()
        service.drain()
        result = service.result()
        # One batch of two, started when the hold expired at t=50.
        assert result.stats["serve.batches"]["value"] == 1
        assert result.makespan == 50.0 + 160.0

    def test_offer_validates_key_count(self):
        service = LiveService(MODEL, clock=ManualClock())
        with pytest.raises(ServeError, match="calibrated"):
            service.offer(keys=99)

    def test_offer_after_close_raises(self):
        service = LiveService(MODEL, clock=ManualClock())
        service.close()
        with pytest.raises(ServeError, match="closed"):
            service.offer()

    def test_result_needs_close_and_drain(self):
        service = LiveService(MODEL, clock=ManualClock())
        service.offer(now=0.0)
        with pytest.raises(ServeError, match="closed, drained"):
            service.result()

    def test_drain_needs_close(self):
        service = LiveService(MODEL, clock=ManualClock())
        with pytest.raises(ServeError, match="close"):
            service.drain()

    def test_unbounded_admission_never_sheds(self):
        requests = build_requests(50.0, 40, 8, seed=5)
        result = replay(requests, policy="fifo").result()
        assert result.shed == 0
        assert result.completed == 40


class TestAdmissionAndDeadlines:
    def test_shed_policy_bounds_the_queue(self):
        requests = build_requests(60.0, 80, 8, seed=7)
        result = replay(requests, policy="shed:4:fifo").result()
        assert result.shed > 0
        assert result.completed + result.shed + result.expired == 80

    def test_timeout_policy_expires_stale_requests(self):
        requests = build_requests(60.0, 60, 8, seed=9)
        result = replay(requests, policy="timeout:300:fifo").result()
        assert result.expired > 0
        assert result.completed + result.shed + result.expired == 60

    def test_settled_callback_covers_every_admitted_request(self):
        settled = []
        requests = build_requests(60.0, 60, 8, seed=11)
        service = LiveService(
            MODEL, policy="shed:4:timeout:400:fifo", clock=ManualClock(),
            on_settled=lambda r, s, t: settled.append((r.seq, s)))
        admitted = 0
        for request in requests:
            service.clock.advance_to(request.arrival)
            if service.offer(now=request.arrival)["status"] == "admitted":
                admitted += 1
        service.close()
        service.drain()
        service.result()
        assert len(settled) == admitted
        assert {status for _seq, status in settled} <= {"served", "expired"}

    def test_conservation_across_policies(self):
        requests = build_requests(40.0, 100, 8, seed=13)
        for spec in ("fifo", "size:4", "shed:8:size:2",
                     "shed:8:timeout:1000:size:2", "deadline:100:4"):
            result = replay(requests, policy=spec).result()
            assert (result.completed + result.shed + result.expired
                    == 100), spec


class TestDifferentialAgainstDES:
    """The live driver and the DES driver run the same core — identical
    schedules must produce identical serving outcomes."""

    @pytest.mark.parametrize("spec,cores", [
        ("fifo", 1), ("fifo", 2), ("size:4", 1), ("size:4", 3),
    ])
    def test_plain_path_matches_des(self, spec, cores):
        requests = build_requests(12.0, 60, 8, seed=21)
        des = simulate_service(requests, MODEL, policy=parse_policy(spec),
                               cores=cores)
        live = replay(requests, policy=spec, cores=cores).result()
        assert live.completed == des.completed
        assert live.makespan == pytest.approx(des.makespan)
        assert live.latency.count == des.latency.count
        assert live.p50 == des.p50
        assert live.p99 == des.p99

    @pytest.mark.parametrize("spec", ["shed:6:size:2", "timeout:800:fifo"])
    def test_resilient_path_matches_des(self, spec):
        requests = build_requests(30.0, 80, 8, seed=23)
        resilience = ResilienceConfig(slo=2000.0)
        des = simulate_service(requests, MODEL, policy=parse_policy(spec),
                               cores=2, resilience=resilience)
        live = replay(requests, policy=spec, cores=2,
                      resilience=ResilienceConfig(slo=2000.0)).result()
        assert live.completed == des.completed
        assert live.shed == des.shed
        assert live.expired == des.expired
        assert live.in_slo == des.in_slo
        assert live.p99 == des.p99


class TestAdaptiveControl:
    RESILIENCE = ResilienceConfig(
        slo=2500.0, controller=parse_controller("p99:2000:2:3:all"))

    def overloaded(self, walkers=(2, 4)):
        requests = build_requests(20.0, 400, 8, seed=42)
        return replay(requests, policy="shed:64:size:4",
                      resilience=self.RESILIENCE, walkers=walkers)

    def test_controller_fires_and_walkers_flex(self):
        service = self.overloaded()
        result = service.result()
        assert int(service.adaptations.value) >= 1
        assert int(service.walkers_allocated.value) >= 1
        assert int(service.walkers_released.value) >= 1
        assert result.completed + result.shed + result.expired == 400
        assert result.shed > 0

    def test_walkers_start_frugal_under_a_controller(self):
        service = LiveService(MODEL, resilience=self.RESILIENCE,
                              clock=ManualClock(), walkers=(2, 4))
        assert service.walkers_active == 2

    def test_walkers_start_full_power_without_a_controller(self):
        service = LiveService(MODEL, clock=ManualClock(), walkers=(2, 4))
        assert service.walkers_active == 4

    def test_frugal_walkers_scale_service_time(self):
        service = LiveService(MODEL, resilience=self.RESILIENCE,
                              clock=ManualClock(), walkers=(2, 4))
        service.offer(now=0.0)
        service.close()
        service.drain()
        # 2 of 4 walkers active: the single request costs 2x calibrated.
        assert service.result().makespan == 200.0

    def test_replay_is_deterministic(self):
        first = self.overloaded().summary()
        second = self.overloaded().summary()
        assert first == second

    def test_adaptations_counted_in_registry(self):
        service = self.overloaded()
        stats = service.result().stats
        assert stats["live.adaptations"]["value"] == service.adaptations.value
        assert "live.walkers_allocated" in stats
        assert "live.walkers_released" in stats

    def test_bad_walker_range_rejected(self):
        with pytest.raises(ServeError, match="walkers"):
            LiveService(MODEL, clock=ManualClock(), walkers=(0, 4))
        with pytest.raises(ServeError, match="walkers"):
            LiveService(MODEL, clock=ManualClock(), walkers=(4, 2))
