"""End-to-end tests for the asyncio live transport.

Every test runs the full in-process stack — ``start_server`` on an
ephemeral localhost port plus a real TCP client — in deterministic
replay mode, so outcomes are independent of host speed.  Tests drive
their own event loop with ``asyncio.run``; no pytest plugin needed.
"""

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.live.client import run_burst
from repro.live.clock import ManualClock, WallClock
from repro.live.server import LiveServer, start_server
from repro.live.service import LiveService
from repro.obs import Trail
from repro.serve.control import parse_controller
from repro.serve.core import ResilienceConfig
from repro.serve.service import ServiceModel
from repro.serve.simulate import build_requests

MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})


def overload_service():
    resilience = ResilienceConfig(
        slo=2500.0, controller=parse_controller("p99:2000:2:3:all"))
    return LiveService(MODEL, policy="shed:64:size:4",
                       resilience=resilience, clock=ManualClock(),
                       walkers=(2, 4))


async def serve_burst(service, requests, *, trail=None, shutdown=True):
    server = await start_server(service, trail=trail)
    outcome = await run_burst("127.0.0.1", server.port, requests,
                              shutdown=shutdown)
    if shutdown:
        await server.wait_closed()
    else:
        server._stopping.set()
        await server.wait_closed()
    return outcome


async def raw_session(service, lines, *, trail=None):
    """Send raw protocol lines; collect one response line per send."""
    server = await start_server(service, trail=trail)
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    replies = []
    for line in lines:
        writer.write(line.encode("utf-8") + b"\n")
        await writer.drain()
        replies.append(json.loads(await reader.readline()))
    writer.close()
    server._stopping.set()
    await server.wait_closed()
    return replies


class TestEndToEnd:
    def test_burst_conserves_and_answers_every_request(self):
        requests = build_requests(20.0, 80, 8, seed=42)
        outcome = asyncio.run(serve_burst(overload_service(), requests))
        result = outcome["result"]
        assert result["conservation"] is True
        assert result["requests"] == 80
        assert (result["completed"] + result["shed"] + result["expired"]
                == 80)
        # Every request got a settlement line: shed immediately, admitted
        # on completion — none lost in the transport.
        assert len(outcome["responses"]) == 80
        assert not outcome["errors"]

    def test_served_responses_carry_latency(self):
        requests = build_requests(5.0, 12, 8, seed=3)
        outcome = asyncio.run(
            serve_burst(LiveService(MODEL, clock=ManualClock()), requests))
        statuses = {r["status"] for r in outcome["responses"].values()}
        assert statuses == {"served"}
        # >= one service time, modulo float accumulation in virtual time.
        assert all(r["latency"] > 99.0
                   for r in outcome["responses"].values())

    def test_shed_requests_answer_immediately(self):
        requests = build_requests(80.0, 60, 8, seed=7)
        service = LiveService(MODEL, policy="shed:2:fifo",
                              clock=ManualClock())
        outcome = asyncio.run(serve_burst(service, requests))
        shed = [r for r in outcome["responses"].values()
                if r["status"] == "shed"]
        assert shed and outcome["result"]["shed"] == len(shed)

    def test_adaptive_actions_surface_in_the_result(self):
        requests = build_requests(20.0, 400, 8, seed=42)
        result = asyncio.run(
            serve_burst(overload_service(), requests))["result"]
        assert result["adaptations"] >= 1
        assert result["walkers_allocated"] >= 1

    def test_stats_snapshot_without_shutdown(self):
        requests = build_requests(5.0, 10, 8, seed=3)
        outcome = asyncio.run(serve_burst(
            LiveService(MODEL, clock=ManualClock()), requests,
            shutdown=False))
        assert outcome["result"] is None
        assert outcome["stats"]["offered"] == 10

    def test_replay_runs_are_identical(self):
        requests = build_requests(20.0, 120, 8, seed=42)
        first = asyncio.run(serve_burst(overload_service(), requests))
        second = asyncio.run(serve_burst(overload_service(), requests))
        assert first["result"] == second["result"]
        assert first["responses"] == second["responses"]


class TestProtocol:
    def test_unknown_op_and_bad_json_answer_with_errors(self):
        replies = asyncio.run(raw_session(
            LiveService(MODEL, clock=ManualClock()),
            ['{"op": "nope"}', "not json"]))
        assert "unknown op" in replies[0]["error"]
        assert "bad message" in replies[1]["error"]

    def test_wrong_key_count_is_a_protocol_error(self):
        replies = asyncio.run(raw_session(
            LiveService(MODEL, clock=ManualClock()),
            ['{"op": "probe", "keys": 3, "at": 0.0}']))
        assert "calibrated" in replies[0]["error"]

    def test_trail_op_without_a_ring_is_an_error(self):
        replies = asyncio.run(raw_session(
            LiveService(MODEL, clock=ManualClock()), ['{"op": "trail"}']))
        assert "no trail ring" in replies[0]["error"]

    def test_trail_op_serves_captured_entries(self):
        trail = Trail(capacity=8)
        trail.record("walker0", [17], 0.0, 42.0,
                     [(1.0, 0x1000, "L1"), (9.0, 0x2000, "DRAM")])
        trail.record("walker1", [23], 5.0, 60.0, [(6.0, 0x3000, "LLC")])
        replies = asyncio.run(raw_session(
            LiveService(MODEL, clock=ManualClock()),
            ['{"op": "trail"}', '{"op": "trail", "last": 1}'],
            trail=trail))
        assert replies[0]["recorded"] == 2
        assert len(replies[0]["trails"]) == 2
        assert len(replies[1]["trails"]) == 1
        assert replies[1]["trails"][0]["walker"] == "walker1"

    def test_replay_mode_requires_a_manual_clock(self):
        service = LiveService(MODEL, clock=WallClock())
        with pytest.raises(ServeError, match="ManualClock"):
            LiveServer(service, replay=True)


class TestDemo:
    def test_demo_main_passes_its_own_checks(self):
        import io

        from repro.live.__main__ import main
        out = io.StringIO()
        assert main(["--demo", "--requests", "120"], out=out) == 0
        payload = json.loads(out.getvalue())
        result = payload["live_demo"]
        assert result["conservation"] is True
        assert result["adaptations"] >= 1

    def test_demo_requires_the_flag(self):
        import io

        from repro.live.__main__ import main
        assert main([], out=io.StringIO()) == 2
