"""Property-based tests for the B+-tree and its Widx traversal."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.db.btree import BPlusTree, KEY_PAD
from repro.db.column import Column
from repro.db.types import DataType
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_tree_search

tree_keys = st.lists(st.integers(min_value=1, max_value=KEY_PAD - 1),
                     min_size=1, max_size=150, unique=True)


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys)
def test_search_equals_dict(keys):
    space = AddressSpace()
    payloads = list(range(1, len(keys) + 1))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(keys, payloads))
    for key in keys:
        assert tree.search(key) == truth[key]
    for missing in (min(keys) - 1, max(keys) + 1):
        if 0 < missing < KEY_PAD and missing not in truth:
            assert tree.search(missing) is None


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys,
       bounds=st.tuples(st.integers(0, KEY_PAD - 1),
                        st.integers(0, KEY_PAD - 1)))
def test_range_scan_equals_sorted_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    space = AddressSpace()
    payloads = list(range(len(keys)))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(keys, payloads))
    expected = [(k, truth[k]) for k in sorted(keys) if low <= k <= high]
    assert tree.range_scan(low, high) == expected


@settings(max_examples=25, deadline=None)
@given(keys=tree_keys)
def test_tree_shape_invariants(keys):
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(len(keys))))
    stats = tree.stats()
    assert stats.num_keys == len(keys)
    assert stats.leaves >= (len(keys) + 3) // 4
    assert stats.height >= 1
    # Every leaf is reachable and the leaf chain covers all keys in order.
    scan = tree.range_scan(0, KEY_PAD - 1)
    assert [k for k, _ in scan] == sorted(keys)


@settings(max_examples=12, deadline=None)
@given(keys=st.lists(st.integers(min_value=1, max_value=2**30),
                     min_size=1, max_size=60, unique=True),
       extra=st.lists(st.integers(min_value=2**30 + 1, max_value=2**31),
                      max_size=15),
       walkers=st.sampled_from([1, 3]))
def test_widx_tree_search_equals_software(keys, extra, walkers):
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(1, len(keys) + 1)))
    probes = keys + extra
    column = Column("p", DataType.U32, np.asarray(probes, dtype=np.uint32))
    column.materialize(space)
    outcome = offload_tree_search(
        tree, column, config=DEFAULT_CONFIG.with_walkers(walkers))
    assert outcome.validated is True
    assert outcome.matches == len(keys)
