"""Property-based tests for the B+-tree and its Widx traversal."""

import bisect

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.db.btree import FANOUT, BPlusTree, KEY_PAD
from repro.mem.physmem import NULL_PTR
from repro.db.column import Column
from repro.db.types import DataType
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_tree_search

tree_keys = st.lists(st.integers(min_value=1, max_value=KEY_PAD - 1),
                     min_size=1, max_size=150, unique=True)


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys)
def test_search_equals_dict(keys):
    space = AddressSpace()
    payloads = list(range(1, len(keys) + 1))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(keys, payloads))
    for key in keys:
        assert tree.search(key) == truth[key]
    for missing in (min(keys) - 1, max(keys) + 1):
        if 0 < missing < KEY_PAD and missing not in truth:
            assert tree.search(missing) is None


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys,
       bounds=st.tuples(st.integers(0, KEY_PAD - 1),
                        st.integers(0, KEY_PAD - 1)))
def test_range_scan_equals_sorted_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    space = AddressSpace()
    payloads = list(range(len(keys)))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(keys, payloads))
    expected = [(k, truth[k]) for k in sorted(keys) if low <= k <= high]
    assert tree.range_scan(low, high) == expected


@settings(max_examples=25, deadline=None)
@given(keys=tree_keys)
def test_tree_shape_invariants(keys):
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(len(keys))))
    stats = tree.stats()
    assert stats.num_keys == len(keys)
    assert stats.leaves >= (len(keys) + 3) // 4
    assert stats.height >= 1
    # Every leaf is reachable and the leaf chain covers all keys in order.
    scan = tree.range_scan(0, KEY_PAD - 1)
    assert [k for k, _ in scan] == sorted(keys)


def leftmost_leaf(tree):
    node = tree.root
    while not tree.node_is_leaf(node):
        node = tree.node_child(node, 0)
    return node


def node_keys(tree, node):
    return [tree.node_key(node, slot) for slot in range(FANOUT)]


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys)
def test_bulk_load_fills_leaves_and_pads_the_last(keys):
    """Bulk load packs FANOUT keys per leaf; only the last leaf may be
    partial, and unused slots are KEY_PAD (which sorts after all keys)."""
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(len(keys))))
    leaf, seen_leaves = leftmost_leaf(tree), 0
    while leaf != NULL_PTR:
        seen_leaves += 1
        slots = node_keys(tree, leaf)
        real = [k for k in slots if k != KEY_PAD]
        assert slots == real + [KEY_PAD] * (FANOUT - len(real))
        if tree.next_leaf(leaf) != NULL_PTR:
            assert len(real) == FANOUT, "only the last leaf may be partial"
        leaf = tree.next_leaf(leaf)
    assert seen_leaves == tree.leaf_count == (len(keys) + FANOUT - 1) // FANOUT


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys)
def test_leaf_chain_is_complete_and_sorted(keys):
    """Walking next-leaf pointers from the leftmost leaf yields exactly
    the loaded keys, globally sorted — no key is orphaned or duplicated."""
    space = AddressSpace()
    payloads = list(range(100, 100 + len(keys)))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(keys, payloads))
    chained = []
    leaf = leftmost_leaf(tree)
    while leaf != NULL_PTR:
        for slot in range(FANOUT):
            key = tree.node_key(leaf, slot)
            if key != KEY_PAD:
                chained.append((key, tree.node_payload(leaf, slot)))
        leaf = tree.next_leaf(leaf)
    assert [k for k, _ in chained] == sorted(keys)
    assert all(truth[k] == p for k, p in chained)


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys)
def test_node_counts_and_height_are_consistent(keys):
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(len(keys))))
    stats = tree.stats()
    # Height is the number of levels a descent visits.
    assert len(list(tree.descend_path(keys[0]))) == stats.height
    # Internal node count follows from repeatedly grouping FANOUT+1 children.
    expected_internal, level = 0, stats.leaves
    while level > 1:
        level = (level + FANOUT) // (FANOUT + 1)
        expected_internal += level
    assert stats.internal_nodes == expected_internal
    assert stats.total_nodes * 64 == tree.footprint_bytes


@settings(max_examples=40, deadline=None)
@given(keys=tree_keys,
       probes=st.lists(st.integers(min_value=1, max_value=KEY_PAD - 1),
                       min_size=1, max_size=60))
def test_search_matches_sorted_list_oracle(keys, probes):
    """search() against the classic oracle: bisect into the sorted key
    list, hit iff present — over arbitrary probe keys, hit or miss."""
    space = AddressSpace()
    payloads = list(range(1, len(keys) + 1))
    tree = BPlusTree(space, keys, payloads)
    pairs = sorted(zip(keys, payloads))
    sorted_keys = [k for k, _ in pairs]
    for probe in probes:
        slot = bisect.bisect_left(sorted_keys, probe)
        if slot < len(sorted_keys) and sorted_keys[slot] == probe:
            assert tree.search(probe) == pairs[slot][1]
        else:
            assert tree.search(probe) is None


@settings(max_examples=12, deadline=None)
@given(keys=st.lists(st.integers(min_value=1, max_value=2**30),
                     min_size=1, max_size=60, unique=True),
       extra=st.lists(st.integers(min_value=2**30 + 1, max_value=2**31),
                      max_size=15),
       walkers=st.sampled_from([1, 3]))
def test_widx_tree_search_equals_software(keys, extra, walkers):
    space = AddressSpace()
    tree = BPlusTree(space, keys, list(range(1, len(keys) + 1)))
    probes = keys + extra
    column = Column("p", DataType.U32, np.asarray(probes, dtype=np.uint32))
    column.materialize(space)
    outcome = offload_tree_search(
        tree, column, config=DEFAULT_CONFIG.with_walkers(walkers))
    assert outcome.validated is True
    assert outcome.matches == len(keys)
