"""Property-based tests for the assembler and the unit's ALU semantics."""

from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace
from repro.sim.engine import Engine
from repro.sim.resources import BoundedQueue
from repro.widx.assembler import assemble
from repro.widx.unit import WidxUnit

M64 = (1 << 64) - 1

value64 = st.integers(min_value=0, max_value=M64)
shift = st.integers(min_value=1, max_value=63)


def run_unit(source, constants=None):
    """Assemble and execute an H-role program; return emitted tuples."""
    space = AddressSpace()
    engine = Engine()
    program = assemble(source)
    out = BoundedQueue(engine, 64)
    unit = WidxUnit("u", program, engine, MemoryHierarchy(DEFAULT_CONFIG),
                    space.memory, out_queue=out)
    if constants:
        unit.configure(constants)
    engine.process(unit.run())
    engine.run()
    emitted = []
    while len(out):
        emitted.append(out.get().value)
    return emitted


@settings(max_examples=40, deadline=None)
@given(a=value64, b=value64)
def test_add_and_xor_match_python(a, b):
    emitted = run_unit("""
        .role H
          add r4, r2, r3
          xor r5, r2, r3
          and r6, r2, r3
          emit r4, r5, r6
    """, constants={2: a, 3: b})
    assert emitted == [((a + b) & M64, a ^ b, a & b)]


@settings(max_examples=40, deadline=None)
@given(a=value64, s=shift)
def test_shifts_match_python(a, s):
    emitted = run_unit(f"""
        .role H
          shl r4, r2, #{s}
          shr r5, r2, #{s}
          emit r4, r5
    """, constants={2: a})
    assert emitted == [((a << s) & M64, a >> s)]


@settings(max_examples=40, deadline=None)
@given(a=value64, b=value64, s=shift)
def test_fused_ops_match_python(a, b, s):
    emitted = run_unit(f"""
        .role H
          add-shf r4, r2, r3, #{s}
          xor-shf r5, r2, r3, #-{s}
          emit r4, r5
    """, constants={2: a, 3: b})
    assert emitted == [((a + ((b << s) & M64)) & M64, a ^ (b >> s))]


@settings(max_examples=40, deadline=None)
@given(a=value64, b=value64)
def test_compares_match_python(a, b):
    emitted = run_unit("""
        .role H
          cmp r4, r2, r3
          cmp-le r5, r2, r3
          emit r4, r5
    """, constants={2: a, 3: b})
    assert emitted == [(int(a == b), int(a <= b))]


@settings(max_examples=25, deadline=None)
@given(count=st.integers(min_value=1, max_value=30))
def test_counted_loop_iterates_exactly(count):
    emitted = run_unit(f"""
        .role H
        .const r2 = {count}
        loop:
          add r3, r3, #1
          add r2, r2, #-1
          ble r2, r0, done
          ba loop
        done:
          emit r3
    """)
    assert emitted == [(count,)]


@settings(max_examples=25, deadline=None)
@given(values=st.lists(value64, min_size=1, max_size=8))
def test_assembly_roundtrip_preserves_instruction_count(values):
    lines = [".role H"]
    for i, value in enumerate(values):
        lines.append(f".const r{20 + (i % 10)} = {value}")
    lines.append("  add r1, r1, #1")
    program = assemble("\n".join(lines))
    assert len(program.instructions) == 1
    for index, value in program.constants.items():
        assert 0 <= value <= M64
