"""Property-based tests for serving-layer resilience.

Two families of invariant, each over a randomized grid the example
tests cannot cover:

1. **Conservation under shedding**: for any policy (plain, shed,
   timeout, composed), offered rate, core count, and fault rate, every
   request is accounted for exactly once —
   ``arrived == served + shed + expired`` — and the run's own runtime
   check (the simulation raises on violation) never fires.

2. **Fault-schedule monotonicity**: death draws are shared across
   rates, so raising the fault rate scales the same schedule by
   ``1/rate`` — every death happens no later, the dead-walker count at
   any instant never decreases, and the deaths landing within any
   horizon never decrease.  This is the mechanism that makes goodput
   degrade monotonically at the figure level (asserted there on the
   fixed grid; realized goodput is not pointwise monotone because an
   earlier death can shift batch boundaries either way).
"""

from hypothesis import given, settings, strategies as st

from repro.serve.faults import WalkerFaultModel
from repro.serve.policies import parse_policy
from repro.serve.service import ServiceModel
from repro.serve.simulate import ResilienceConfig, run_open_loop

MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})
FALLBACK = ServiceModel("host", 8, {1: 300.0, 2: 520.0, 4: 960.0})

POLICY_SPECS = ("fifo", "size:4", "shed:4", "shed:16", "timeout:2000",
                "shed:8:timeout:2500", "shed:4:timeout:1500:size:2")


@settings(max_examples=40, deadline=None)
@given(spec=st.sampled_from(POLICY_SPECS),
       load=st.floats(min_value=0.2, max_value=3.0),
       cores=st.integers(min_value=1, max_value=4),
       fault_rate=st.sampled_from([0.0, 20.0, 80.0]),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_conservation_under_shedding_and_faults(spec, load, cores,
                                                fault_rate, seed):
    shedding = "shed" in spec
    if fault_rate > 0 and not shedding:
        # Faults without shedding can be legitimately unbounded; the
        # conservation grid only covers configurations that drain.
        fault_rate = 0.0
    faults = WalkerFaultModel(seed=seed, rate=fault_rate,
                              walkers_per_core=2)
    resilience = ResilienceConfig(
        slo=5000.0, faults=faults if faults.active else None,
        fallback=FALLBACK if faults.active else None)
    rate = load * cores * MODEL.saturation_rate()
    result = run_open_loop(MODEL, rate=rate, num_requests=120,
                           policy=parse_policy(spec), cores=cores,
                           seed=seed, resilience=resilience)
    assert result.completed + result.shed + result.expired == 120
    assert 0 <= result.in_slo <= result.completed
    assert result.latency.count == result.completed
    if not shedding:
        assert result.shed == 0
    if "timeout" not in spec:
        assert result.expired == 0


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       walkers=st.integers(min_value=1, max_value=8),
       low=st.floats(min_value=0.5, max_value=50.0),
       factor=st.floats(min_value=1.0, max_value=20.0),
       core=st.integers(min_value=0, max_value=3))
def test_death_schedule_is_monotone_in_rate(seed, walkers, low, factor,
                                            core):
    high = low * factor
    slow = WalkerFaultModel(seed=seed, rate=low, walkers_per_core=walkers)
    fast = WalkerFaultModel(seed=seed, rate=high, walkers_per_core=walkers)
    slow_times = slow.death_times(core)
    fast_times = fast.death_times(core)
    assert len(slow_times) == len(fast_times) == walkers
    # Shared draws: the faster schedule is the slow one scaled by
    # low/high, so every death is no later...
    for a, b in zip(slow_times, fast_times):
        assert b <= a
    # ...the dead count at any instant never decreases...
    for probe in list(slow_times) + list(fast_times) + [0.0, 1e6]:
        crossed_slow = sum(1 for t in slow_times if t <= probe)
        crossed_fast = sum(1 for t in fast_times if t <= probe)
        assert crossed_fast >= crossed_slow
    # ...and any horizon contains at least as many deaths.
    for horizon in (1e3, 1e5, 1e7):
        assert sum(1 for t in fast_times if t <= horizon) >= \
            sum(1 for t in slow_times if t <= horizon)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 12),
       load=st.floats(min_value=0.4, max_value=1.5))
def test_goodput_under_faults_never_beats_fault_free(seed, load):
    """The end-to-end form of monotonicity that *does* hold pointwise:
    a faulted run never out-performs the fault-free run of the same
    workload on goodput (capacity only degrades, and the SLO accounting
    sees every late completion)."""
    rate = load * 2 * MODEL.saturation_rate()

    def goodput(fault_rate):
        faults = WalkerFaultModel(seed=seed, rate=fault_rate,
                                  walkers_per_core=2)
        resilience = ResilienceConfig(
            slo=4000.0, faults=faults if faults.active else None,
            fallback=FALLBACK if faults.active else None)
        return run_open_loop(MODEL, rate=rate, num_requests=150,
                             policy=parse_policy("shed:16"), cores=2,
                             seed=seed, resilience=resilience).goodput

    clean = goodput(0.0)
    for fault_rate in (25.0, 100.0):
        assert goodput(fault_rate) <= clean + 1e-9
