"""Property-based tests for the gap-filling resource model.

The rewrite that made :class:`PipelinedResource` safe for out-of-order
request times (dataflow-issued OoO loads, multiple cores) must preserve
two invariants regardless of arrival order:

1. **No grant before its request**: every grant time >= its ``now``.
2. **Capacity**: at any instant, at most ``servers`` grants are in
   service (grant <= t < grant + service).
"""

from hypothesis import given, settings, strategies as st

from repro.sim.resources import OccupancyPool, PipelinedResource

arrival_times = st.lists(st.floats(min_value=0, max_value=5_000,
                                   allow_nan=False, allow_infinity=False),
                         min_size=1, max_size=120)


def max_concurrency(grants, service):
    events = []
    for grant in grants:
        events.append((grant, 1))
        events.append((grant + service, -1))
    events.sort()
    live = peak = 0
    for _time, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


@settings(max_examples=60, deadline=None)
@given(nows=arrival_times,
       servers=st.integers(min_value=1, max_value=4),
       service=st.sampled_from([1.0, 3.5, 14.3]))
def test_no_time_travel_and_capacity(nows, servers, service):
    resource = PipelinedResource(servers=servers, service=service)
    grants = []
    for now in nows:
        grant = resource.request(now)
        assert grant >= now - 1e-9
        grants.append(grant)
    assert max_concurrency(grants, service) <= servers
    assert resource.grants == len(nows)


@settings(max_examples=40, deadline=None)
@given(nows=arrival_times)
def test_port_grants_fall_on_integer_cycles(nows):
    resource = PipelinedResource(servers=2, service=1.0)
    for now in nows:
        grant = resource.request(now)
        assert grant == int(grant)


@settings(max_examples=40, deadline=None)
@given(base=st.floats(min_value=0, max_value=1000, allow_nan=False),
       count=st.integers(min_value=1, max_value=40),
       service=st.sampled_from([1.0, 7.0]))
def test_saturated_stream_is_work_conserving(base, count, service):
    """Back-to-back requests at one instant serialize with no idle gaps."""
    resource = PipelinedResource(servers=1, service=service)
    grants = sorted(resource.request(base) for _ in range(count))
    for first, second in zip(grants, grants[1:]):
        assert abs(second - first - service) < 1e-6


@settings(max_examples=40, deadline=None)
@given(nows=arrival_times)
def test_older_request_can_fill_a_gap(nows):
    """A request far in the future must not starve an older one."""
    resource = PipelinedResource(servers=1, service=10.0)
    resource.request(100_000.0)      # future reservation
    grant = resource.request(5.0)    # old request: must fit long before it
    assert grant < 1_000.0


@settings(max_examples=40, deadline=None)
@given(pairs=st.lists(st.tuples(st.floats(0, 2_000, allow_nan=False),
                                st.floats(1, 50, allow_nan=False)),
                      min_size=1, max_size=60),
       capacity=st.integers(min_value=1, max_value=5))
def test_occupancy_pool_never_exceeds_capacity(pairs, capacity):
    pool = OccupancyPool(capacity=capacity)
    intervals = []
    now = 0.0
    for offset, duration in sorted(pairs):
        now = max(now, offset)
        start = pool.acquire(now)
        assert start >= now
        pool.release_at(start + duration)
        intervals.append((start, start + duration))
    assert max_concurrency([s for s, _ in intervals], 0.0) <= capacity or True
    # Proper check: overlapping holds never exceed capacity.
    events = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((end, -1))
    events.sort()
    live = 0
    for _time, delta in events:
        live += delta
        assert live <= capacity
    assert pool.peak <= capacity
