"""Property-based tests: Widx execution is functionally identical to the
software probe loop, across schemas, hash functions, organizations and key
distributions.  This is the repository's central correctness invariant."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.db.column import Column
from repro.db.hashfn import KERNEL_HASH, ROBUST_HASH_32
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT, monetdb_layout
from repro.db.types import DataType
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_probe

key32 = st.integers(min_value=1, max_value=2**31)


def run_equivalence(build_keys, probe_values, *, indirect, mode, walkers,
                    hash_spec):
    space = AddressSpace()
    if indirect:
        base = Column("base", DataType.U32, np.asarray(build_keys,
                                                       dtype=np.uint32))
        base.materialize(space)
        index = HashIndex(space, monetdb_layout(4),
                          choose_num_buckets(len(build_keys)), hash_spec,
                          capacity=len(build_keys), key_column=base)
        for row, key in enumerate(build_keys):
            index.insert(key, row)
    else:
        index = HashIndex(space, KERNEL_LAYOUT,
                          choose_num_buckets(len(build_keys)), hash_spec,
                          capacity=len(build_keys))
        for row, key in enumerate(build_keys):
            index.insert(key, row + 1)
    column = Column("probes", DataType.U32,
                    np.asarray(probe_values, dtype=np.uint32))
    column.materialize(space)
    config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)
    # offload_probe raises WidxFault if the accelerated result diverges
    # from the functional reference.
    outcome = offload_probe(index, column, config=config, validate=True)
    assert outcome.validated is True
    return outcome


@settings(max_examples=25, deadline=None)
@given(build=st.lists(key32, min_size=1, max_size=80, unique=True),
       extra_probes=st.lists(key32, max_size=20),
       mode=st.sampled_from(["shared", "private", "coupled"]),
       walkers=st.sampled_from([1, 2, 4]))
def test_widx_equals_software_probe(build, extra_probes, mode, walkers):
    probes = build[: max(1, len(build) // 2)] + extra_probes
    run_equivalence(build, probes, indirect=False, mode=mode,
                    walkers=walkers, hash_spec=ROBUST_HASH_32)


@settings(max_examples=15, deadline=None)
@given(build=st.lists(key32, min_size=1, max_size=60, unique=True),
       walkers=st.sampled_from([1, 3]))
def test_widx_equals_software_probe_indirect(build, walkers):
    probes = build + [max(build) + 5]
    run_equivalence(build, probes, indirect=True, mode="shared",
                    walkers=walkers, hash_spec=ROBUST_HASH_32)


@settings(max_examples=15, deadline=None)
@given(build=st.lists(key32, min_size=1, max_size=60, unique=True))
def test_widx_handles_duplicate_probe_keys(build):
    probes = [build[0]] * 7 + build
    outcome = run_equivalence(build, probes, indirect=False, mode="shared",
                              walkers=2, hash_spec=KERNEL_HASH)
    assert outcome.matches >= 7


@settings(max_examples=10, deadline=None)
@given(build=st.lists(st.integers(min_value=1, max_value=50), min_size=2,
                      max_size=40))
def test_widx_emits_every_duplicate_build_match(build):
    """Duplicate build keys form chains; every node must be emitted."""
    probes = sorted(set(build))
    space = AddressSpace()
    index = HashIndex(space, KERNEL_LAYOUT, choose_num_buckets(len(build)),
                      ROBUST_HASH_32, capacity=len(build))
    expected = 0
    for row, key in enumerate(build):
        index.insert(key, row + 1)
    for key in probes:
        expected += len(index.probe(key))
    column = Column("probes", DataType.U32,
                    np.asarray(probes, dtype=np.uint32))
    column.materialize(space)
    outcome = offload_probe(index, column)
    assert outcome.matches == expected
