"""Property-based tests on cache/TLB/memory-system invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, DEFAULT_CONFIG
from repro.mem.cache import CacheArray, CacheLevel
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physmem import BASE_ADDRESS

addresses = st.integers(min_value=BASE_ADDRESS,
                        max_value=BASE_ADDRESS + (1 << 22))


def tiny_cache():
    return CacheConfig(size_bytes=2048, block_bytes=64, associativity=2,
                       latency_cycles=1, ports=1, mshrs=2)


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=4096),
                       min_size=1, max_size=400))
def test_cache_never_exceeds_capacity(blocks):
    cfg = tiny_cache()
    array = CacheArray(cfg)
    for block in blocks:
        array.insert(block)
    assert array.resident_blocks() <= cfg.num_blocks
    # Per-set occupancy never exceeds associativity.
    for entries in array._sets.values():
        assert len(entries) <= cfg.associativity


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=64),
                       min_size=1, max_size=100))
def test_insert_then_immediate_lookup_always_hits(blocks):
    array = CacheArray(tiny_cache())
    for block in blocks:
        array.insert(block)
        assert array.lookup(block)


@settings(max_examples=30, deadline=None)
@given(accesses=st.lists(st.tuples(st.integers(0, 200),
                                   st.floats(min_value=0.5, max_value=20)),
                         min_size=1, max_size=120))
def test_level_accounting_identity(accesses):
    level = CacheLevel(tiny_cache(), "L1")
    now = 0.0
    for block, gap in accesses:
        now += gap
        outcome = level.probe(block, now)
        if outcome is not None and outcome < 0:
            start = level.begin_miss(now)
            level.finish_miss(block, start + 30.0)
    level.stats.check()
    assert level.mshrs.peak <= level.cfg.mshrs


@settings(max_examples=20, deadline=None)
@given(addrs=st.lists(addresses, min_size=1, max_size=150))
def test_hierarchy_monotonic_completion_and_consistent_stats(addrs):
    mh = MemoryHierarchy(DEFAULT_CONFIG)
    now = 0.0
    for addr in addrs:
        aligned = addr & ~7
        result = mh.load(aligned, now)
        assert result.complete >= now  # no time travel
        assert result.tlb_stall >= 0
        assert result.level in ("L1", "LLC", "DRAM")
        now = result.complete
    mh.stats.check()
    assert mh.stats.loads == len(addrs)
    assert mh.stats.tlb.accesses == len(addrs)


@settings(max_examples=20, deadline=None)
@given(addrs=st.lists(addresses, min_size=1, max_size=60))
def test_rereading_is_never_slower_than_cold(addrs):
    mh = MemoryHierarchy(DEFAULT_CONFIG)
    now = 0.0
    for addr in addrs:
        aligned = addr & ~7
        cold = mh.load(aligned, now)
        warm = mh.load(aligned, cold.complete)
        assert (warm.complete - cold.complete) <= (cold.complete - now) + 1
        now = warm.complete
