"""Property-based tests on cache/TLB/memory-system invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, DEFAULT_CONFIG
from repro.mem.cache import CacheArray, CacheLevel
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physmem import BASE_ADDRESS

addresses = st.integers(min_value=BASE_ADDRESS,
                        max_value=BASE_ADDRESS + (1 << 22))


def tiny_cache():
    return CacheConfig(size_bytes=2048, block_bytes=64, associativity=2,
                       latency_cycles=1, ports=1, mshrs=2)


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=4096),
                       min_size=1, max_size=400))
def test_cache_never_exceeds_capacity(blocks):
    cfg = tiny_cache()
    array = CacheArray(cfg)
    for block in blocks:
        array.insert(block)
    assert array.resident_blocks() <= cfg.num_blocks
    # Per-set occupancy never exceeds associativity.
    for entries in array._sets.values():
        assert len(entries) <= cfg.associativity


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=64),
                       min_size=1, max_size=100))
def test_insert_then_immediate_lookup_always_hits(blocks):
    array = CacheArray(tiny_cache())
    for block in blocks:
        array.insert(block)
        assert array.lookup(block)


@settings(max_examples=30, deadline=None)
@given(accesses=st.lists(st.tuples(st.integers(0, 200),
                                   st.floats(min_value=0.5, max_value=20)),
                         min_size=1, max_size=120))
def test_level_accounting_identity(accesses):
    level = CacheLevel(tiny_cache(), "L1")
    now = 0.0
    for block, gap in accesses:
        now += gap
        outcome = level.probe(block, now)
        if outcome is not None and outcome < 0:
            start = level.begin_miss(now)
            level.finish_miss(block, start + 30.0)
    level.stats.check()
    assert level.mshrs.peak <= level.cfg.mshrs


@settings(max_examples=20, deadline=None)
@given(addrs=st.lists(addresses, min_size=1, max_size=150))
def test_hierarchy_monotonic_completion_and_consistent_stats(addrs):
    mh = MemoryHierarchy(DEFAULT_CONFIG)
    now = 0.0
    for addr in addrs:
        aligned = addr & ~7
        result = mh.load(aligned, now)
        assert result.complete >= now  # no time travel
        assert result.tlb_stall >= 0
        assert result.level in ("L1", "LLC", "DRAM")
        now = result.complete
    mh.stats.check()
    assert mh.stats.loads == len(addrs)
    assert mh.stats.tlb.accesses == len(addrs)


@settings(max_examples=20, deadline=None)
@given(addrs=st.lists(addresses, min_size=1, max_size=60))
def test_rereading_is_never_slower_than_cold(addrs):
    mh = MemoryHierarchy(DEFAULT_CONFIG)
    now = 0.0
    for addr in addrs:
        aligned = addr & ~7
        cold = mh.load(aligned, now)
        warm = mh.load(aligned, cold.complete)
        assert (warm.complete - cold.complete) <= (cold.complete - now) + 1
        now = warm.complete


# ----------------------------------------------------------------------
# LRU model properties: CacheArray vs a transparent dict+list model
# ----------------------------------------------------------------------
#
# The model below is written for obviousness, independently of both the
# optimized flat tick-LRU array AND the ReferenceCacheArray used by the
# differential tests: per set, a plain list ordered LRU -> MRU.  Any
# sequence of lookup/insert/invalidate drawn by hypothesis must produce
# identical hits, victims and residency on the real array.

class _LruModel:
    def __init__(self, cfg):
        self.cfg = cfg
        self.sets = {}

    def _set(self, block):
        return self.sets.setdefault(block % self.cfg.num_sets, [])

    def lookup(self, block):
        order = self._set(block)
        if block in order:
            order.remove(block)
            order.append(block)
            return True
        return False

    def insert(self, block):
        order = self._set(block)
        if block in order:
            order.remove(block)
            order.append(block)
            return None
        victim = None
        if len(order) >= self.cfg.associativity:
            victim = order.pop(0)
        order.append(block)
        return victim

    def invalidate(self, block):
        order = self._set(block)
        if block in order:
            order.remove(block)

    def present(self, block):
        return block in self._set(block)

    def resident(self):
        return sum(len(order) for order in self.sets.values())


cache_ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "insert", "invalidate", "present"]),
              st.integers(min_value=0, max_value=95)),
    min_size=1, max_size=300)


@settings(max_examples=120, deadline=None)
@given(ops=cache_ops)
def test_cache_array_matches_lru_model(ops):
    cfg = tiny_cache()
    array = CacheArray(cfg)
    model = _LruModel(cfg)
    for op, block in ops:
        if op == "lookup":
            assert array.lookup(block) == model.lookup(block)
        elif op == "insert":
            assert array.insert(block) == model.insert(block)
        elif op == "invalidate":
            array.invalidate(block)
            model.invalidate(block)
        else:
            assert array.present(block) == model.present(block)
    assert array.resident_blocks() == model.resident()


@settings(max_examples=60, deadline=None)
@given(ops=cache_ops)
def test_reference_cache_array_matches_lru_model(ops):
    """The differential oracle itself obeys the same transparent model."""
    from repro.mem.reference import ReferenceCacheArray

    cfg = tiny_cache()
    array = ReferenceCacheArray(cfg)
    model = _LruModel(cfg)
    for op, block in ops:
        if op == "lookup":
            assert array.lookup(block) == model.lookup(block)
        elif op == "insert":
            assert array.insert(block) == model.insert(block)
        elif op == "invalidate":
            array.invalidate(block)
            model.invalidate(block)
        else:
            assert array.present(block) == model.present(block)
    assert array.resident_blocks() == model.resident()


# ----------------------------------------------------------------------
# TLB properties: reach, capacity and LRU victims vs a dict+list model
# ----------------------------------------------------------------------

def tiny_tlb():
    from repro.config import TlbConfig
    return TlbConfig(entries=8, page_bytes=4096, in_flight=2,
                     miss_latency_cycles=35)


@settings(max_examples=60, deadline=None)
@given(pages=st.lists(st.integers(min_value=0, max_value=30),
                      min_size=1, max_size=200))
def test_tlb_matches_lru_model_and_capacity(pages):
    from repro.mem.tlb import Tlb

    cfg = tiny_tlb()
    tlb = Tlb(cfg)
    order = []   # LRU -> MRU page list, the transparent model
    for page in pages:
        tlb.warm(page * cfg.page_bytes)
        if page in order:
            order.remove(page)
        elif len(order) >= cfg.entries:
            order.pop(0)
        order.append(page)
        assert len(tlb._entries) <= cfg.entries
        assert set(tlb._entries) == set(order)
    # Recency agrees too, not just membership: a full sweep of fresh
    # pages must evict in exact model order.
    for extra in range(31, 31 + cfg.entries):
        tlb.warm(extra * cfg.page_bytes)
        if len(order) >= cfg.entries:
            order.pop(0)
        order.append(extra)
        assert set(tlb._entries) == set(order)


@settings(max_examples=40, deadline=None)
@given(pages=st.lists(st.integers(min_value=0, max_value=7),
                      min_size=1, max_size=40))
def test_tlb_reach_after_warming_is_stall_free(pages):
    """Any working set within reach (<= entries pages), once warmed,
    translates with zero stall at any address inside those pages."""
    from repro.mem.tlb import Tlb

    cfg = tiny_tlb()
    tlb = Tlb(cfg)
    for page in pages:
        tlb.warm(page * cfg.page_bytes)
    now = 100.0
    for page in set(pages):
        ready, stall = tlb.translate(page * cfg.page_bytes + 123, now)
        assert stall == 0.0
        assert ready == now
    assert tlb.stats.misses.value == 0
