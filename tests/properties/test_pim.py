"""Property-based tests for the bank-side (PIM) walker backend.

Three families of invariants the near-memory attachment must hold:

1. **Per-bank serialization** — however accesses arrive, no bank ever
   has more than ``walkers_per_bank`` accesses in service at once, and
   every access completes no earlier than one full bank service after
   its arrival.
2. **Monotonicity in parallelism** — on a fixed access trace, doubling
   the bank count (which refines the block->bank partition) or the
   per-bank slot count never makes the makespan worse; seeded full
   offloads agree.
3. **Launch additivity** — the host->PIM launch latency lands in
   ``config_cycles`` and *only* there: traversal cycles and payloads are
   bit-identical across launch values, and the configuration cost moves
   by exactly the delta.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import PimConfig
from repro.db.column import Column
from repro.db.datagen import make_rng, probe_keys, unique_keys
from repro.db.hashfn import ROBUST_HASH_32
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT
from repro.db.types import DataType
from repro.mem.dram import DramBankPorts
from repro.mem.layout import AddressSpace
from repro.pim import pim_config
from repro.widx.offload import offload_probe

#: An access trace: (block, arrival) pairs, arrivals not necessarily in
#: time order (walkers issue independently).
traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255),
              st.floats(min_value=0, max_value=2_000,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=100)


def max_concurrency(intervals):
    """Peak overlap of (start, end) service intervals.

    Endpoints are quantized to a microsecond-scale grid: the starts are
    reconstructed as ``complete - latency``, and back-to-back grants can
    land within one float ulp of each other, which must count as
    touching, not overlapping.
    """
    events = []
    for start, end in intervals:
        events.append((round(start, 6), 1))
        events.append((round(end, 6), -1))
    events.sort()
    live = peak = 0
    for _time, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


def replay(trace, *, banks, walkers_per_bank):
    """Run a trace through fresh bank ports; returns per-bank service
    intervals and the makespan."""
    ports = DramBankPorts(
        PimConfig(num_banks=banks, walkers_per_bank=walkers_per_bank),
        freq_ghz=2.0)
    per_bank = {index: [] for index in range(banks)}
    makespan = 0.0
    for block, now in trace:
        complete = ports.access(block, now)
        start = complete - ports.latency_cycles
        assert start >= now - 1e-9
        assert complete >= now + ports.latency_cycles - 1e-9
        per_bank[ports.bank_of(block)].append((start, complete))
        makespan = max(makespan, complete)
    return per_bank, makespan


@settings(max_examples=60, deadline=None)
@given(trace=traces,
       banks=st.sampled_from([1, 2, 4, 8]),
       walkers_per_bank=st.integers(min_value=1, max_value=3))
def test_no_bank_exceeds_its_walker_parallelism(trace, banks,
                                                walkers_per_bank):
    per_bank, _makespan = replay(trace, banks=banks,
                                 walkers_per_bank=walkers_per_bank)
    for intervals in per_bank.values():
        assert max_concurrency(intervals) <= walkers_per_bank


@settings(max_examples=40, deadline=None)
@given(trace=traces, banks=st.sampled_from([1, 2, 4]))
def test_doubling_banks_never_hurts_the_makespan(trace, banks):
    """block % 2B refines the block % B partition: every bank at 2B
    serves a subset of one bank's requests at B, so the trace can only
    finish sooner (or equally soon)."""
    _bank_map, coarse = replay(trace, banks=banks, walkers_per_bank=2)
    _bank_map, fine = replay(trace, banks=2 * banks, walkers_per_bank=2)
    assert fine <= coarse + 1e-9


@settings(max_examples=40, deadline=None)
@given(trace=traces, walkers_per_bank=st.sampled_from([1, 2, 4]))
def test_doubling_bank_slots_never_hurts_the_makespan(trace,
                                                      walkers_per_bank):
    _bank_map, tight = replay(trace, banks=2,
                              walkers_per_bank=walkers_per_bank)
    _bank_map, wide = replay(trace, banks=2,
                             walkers_per_bank=2 * walkers_per_bank)
    assert wide <= tight + 1e-9


# ---------------------------------------------------------------------------
# seeded full offloads: the same laws hold end to end
# ---------------------------------------------------------------------------

def build_workload(seed, num_keys=800, probes=120):
    space = AddressSpace()
    rng = make_rng(seed)
    keys = unique_keys(num_keys, 4, rng)
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(num_keys, 1.0),
                      ROBUST_HASH_32, capacity=num_keys)
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
    import numpy as np
    values = probe_keys(np.asarray(keys), probes, 1.0, 4, make_rng(seed + 2))
    column = Column("probes", DataType.for_key_bytes(4), values)
    column.materialize(space)
    return index, column, probes


def offload_cycles(index, column, probes, **overrides):
    config = pim_config(walkers=4, **overrides)
    outcome = offload_probe(index, column, config=config, probes=probes)
    return outcome


def test_seeded_offload_speedup_is_monotone_in_bank_parallelism():
    for seed in (11, 29):
        index, column, probes = build_workload(seed)
        totals = [offload_cycles(index, column, probes,
                                 banks=banks).run.total_cycles
                  for banks in (1, 2, 4, 8)]
        assert totals == sorted(totals, reverse=True)
        slots = [offload_cycles(index, column, probes, banks=2,
                                walkers_per_bank=wpb).run.total_cycles
                 for wpb in (1, 2, 4)]
        assert slots == sorted(slots, reverse=True)


# ---------------------------------------------------------------------------
# launch additivity
# ---------------------------------------------------------------------------

_LAUNCH_INDEX, _LAUNCH_COLUMN, _LAUNCH_PROBES = build_workload(7,
                                                               num_keys=500,
                                                               probes=60)
_LAUNCH_BASE = offload_cycles(_LAUNCH_INDEX, _LAUNCH_COLUMN, _LAUNCH_PROBES,
                              launch_cycles=0.0)


@settings(max_examples=12, deadline=None)
@given(launch=st.integers(min_value=0, max_value=100_000)
              .map(lambda halves: halves / 2))
def test_launch_latency_is_strictly_additive_and_timing_neutral(launch):
    """Half-integer launch draws keep the float sums exact, so the
    additivity assertion can demand equality, not approximation."""
    outcome = offload_cycles(_LAUNCH_INDEX, _LAUNCH_COLUMN, _LAUNCH_PROBES,
                             launch_cycles=launch)
    assert (outcome.run.config_cycles - _LAUNCH_BASE.run.config_cycles
            == launch)
    assert outcome.run.total_cycles == _LAUNCH_BASE.run.total_cycles
    assert tuple(outcome.payloads) == tuple(_LAUNCH_BASE.payloads)
