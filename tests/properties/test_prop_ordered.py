"""Property-based tests for the ordered-index zoo.

Three invariant families:

* **Ordering**: the trie and wormhole are *ordered* indexes — loading
  any key set and iterating yields globally sorted items, range scans
  equal the sorted filter, and point lookups agree with the classic
  bisect-into-a-sorted-list oracle, hit or miss.
* **Batched descent**: the level-wise batched B+-tree traversal fetches
  each node at most once per batch (the amortization it exists for) and
  its results are exactly the per-probe results, key for key.
* **Structural**: wormhole's MetaTrieHash always lands the descent on a
  leaf at or before the probe's true leaf, so the chain walk never has
  to move backwards.
"""

import bisect

from hypothesis import given, settings, strategies as st

from repro.db.btree import BPlusTree, KEY_PAD, batched_search
from repro.db.trie import MlpTrie
from repro.db.wormhole import WormholeIndex
from repro.mem.layout import AddressSpace

ordered_keys = st.lists(st.integers(min_value=1, max_value=2**31 - 1),
                        min_size=1, max_size=120, unique=True)


def build(cls, keys):
    space = AddressSpace()
    payloads = list(range(1, len(keys) + 1))
    return cls(space, keys, payloads), dict(zip(keys, payloads))


# ---------------------------------------------------------------------------
# ordering invariants: trie and wormhole are ordered indexes
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys, cls=st.sampled_from([MlpTrie, WormholeIndex]))
def test_insert_then_iterate_is_sorted(keys, cls):
    index, truth = build(cls, keys)
    items = list(index.items())
    assert [k for k, _ in items] == sorted(keys)
    assert all(truth[k] == p for k, p in items)


@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys,
       probes=st.lists(st.integers(min_value=1, max_value=2**31 - 1),
                       min_size=1, max_size=60),
       cls=st.sampled_from([MlpTrie, WormholeIndex]))
def test_search_matches_sorted_list_oracle(keys, probes, cls):
    """search() against the classic oracle: bisect into the sorted key
    list, hit iff present — over arbitrary probe keys, hit or miss."""
    index, _truth = build(cls, keys)
    pairs = sorted(zip(keys, range(1, len(keys) + 1)))
    sorted_keys = [k for k, _ in pairs]
    for probe in probes:
        slot = bisect.bisect_left(sorted_keys, probe)
        if slot < len(sorted_keys) and sorted_keys[slot] == probe:
            assert index.search(probe) == pairs[slot][1]
        else:
            assert index.search(probe) is None


@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys,
       bounds=st.tuples(st.integers(0, 2**31 - 1),
                        st.integers(0, 2**31 - 1)),
       cls=st.sampled_from([MlpTrie, WormholeIndex]))
def test_range_scan_equals_sorted_filter(keys, bounds, cls):
    low, high = min(bounds), max(bounds)
    index, truth = build(cls, keys)
    expected = [(k, truth[k]) for k in sorted(keys) if low <= k <= high]
    assert index.range_scan(low, high) == expected


@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys, cls=st.sampled_from([MlpTrie, WormholeIndex]))
def test_all_three_indexes_agree_item_for_item(keys, cls):
    """The zoo's structures are different layouts of the same map: each
    ordered index's items equal the B+-tree's on the same load."""
    index, _truth = build(cls, keys)
    tree, _ = build(BPlusTree, keys)
    assert list(index.items()) == tree.range_scan(0, KEY_PAD - 1)


@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys,
       probes=st.lists(st.integers(min_value=1, max_value=2**31 - 1),
                       min_size=1, max_size=40))
def test_wormhole_locate_leaf_never_overshoots(keys, probes):
    """The MetaTrieHash descent must land at or before the probe's true
    leaf: the subsequent chain walk only moves forward."""
    index, _truth = build(WormholeIndex, keys)
    for probe in probes:
        leaf, _probed = index.locate_leaf(probe)
        assert index.leaf_key(leaf, 0) <= max(probe, min(keys))


# ---------------------------------------------------------------------------
# batched descent: node sharing and permutation-equality
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys,
       probes=st.lists(st.integers(min_value=1, max_value=2**31 - 1),
                       min_size=1, max_size=60))
def test_batched_search_visits_each_node_at_most_once(keys, probes):
    tree, _truth = build(BPlusTree, keys)
    visits = []
    batched_search(tree, probes, visit_log=visits)
    assert len(visits) == len(set(visits))
    # And never more fetches than one full per-probe descent would pay.
    assert len(visits) <= len(probes) * tree.stats().height


@settings(max_examples=40, deadline=None)
@given(keys=ordered_keys,
       probes=st.lists(st.integers(min_value=1, max_value=2**31 - 1),
                       min_size=1, max_size=60))
def test_batched_search_equals_per_probe_search(keys, probes):
    """The batched traversal is an amortization, not a semantic change:
    results align with per-probe search() key for key, misses included."""
    tree, _truth = build(BPlusTree, keys)
    assert batched_search(tree, probes) == [tree.search(p) for p in probes]


@settings(max_examples=25, deadline=None)
@given(keys=ordered_keys,
       probes=st.lists(st.integers(min_value=1, max_value=2**31 - 1),
                       min_size=2, max_size=40),
       split=st.integers(min_value=1, max_value=39))
def test_batched_search_is_batch_size_invariant(keys, probes, split):
    """Splitting one batch into two sub-batches changes the node sharing
    but never the results."""
    split = min(split, len(probes) - 1)
    tree, _truth = build(BPlusTree, keys)
    whole = batched_search(tree, probes)
    parts = (batched_search(tree, probes[:split])
             + batched_search(tree, probes[split:]))
    assert whole == parts
