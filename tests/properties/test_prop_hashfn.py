"""Property-based tests for hash functions and their Widx compilation.

The central equivalence: for any key, the Python evaluation of a HashSpec
must equal what the Widx dispatcher's fused-instruction code computes —
this is what guarantees software and accelerator probe the same bucket.
"""

from hypothesis import given, settings, strategies as st

from repro.db.hashfn import (ALL_HASHES, HashSpec, HashStep, MASK64)
from repro.widx.programs import _hash_body

any_key = st.integers(min_value=0, max_value=MASK64)

step_strategy = st.one_of(
    st.builds(HashStep, st.sampled_from(["xor_shl", "xor_shr", "add_shl"]),
              st.integers(min_value=1, max_value=63)),
    st.builds(HashStep, st.sampled_from(["shr", "shl"]),
              st.integers(min_value=1, max_value=63)),
    st.builds(HashStep, st.sampled_from(["and_const", "xor_const",
                                         "add_const"]),
              st.just(0),
              st.integers(min_value=1, max_value=MASK64)),
)


@settings(max_examples=100, deadline=None)
@given(key=any_key)
def test_builtin_hashes_stay_in_domain(key):
    for spec in ALL_HASHES.values():
        value = spec(key)
        assert 0 <= value <= MASK64


@settings(max_examples=100, deadline=None)
@given(key=any_key, steps=st.lists(step_strategy, min_size=1, max_size=8))
def test_random_specs_are_deterministic_and_bounded(key, steps):
    spec = HashSpec("random", tuple(steps))
    assert spec(key) == spec(key)
    assert 0 <= spec(key) <= MASK64


@settings(max_examples=50, deadline=None)
@given(key=any_key,
       bits=st.integers(min_value=1, max_value=20))
def test_bucket_of_is_masked_hash(key, bits):
    for spec in ALL_HASHES.values():
        buckets = 1 << bits
        assert spec.bucket_of(key, buckets) == spec(key) % buckets


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=10))
def test_every_spec_compiles_to_widx_code(steps):
    spec = HashSpec("random", tuple(steps))
    lines, constants = _hash_body(spec.steps, "r5", "r6")
    assert len(lines) == len(steps)  # one fused instruction per step
    const_steps = [s for s in steps if s.kind.endswith("_const")]
    assert len(constants) == len(const_steps)
