"""Property-based tests: the hash index matches a dict reference exactly."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.db.hashfn import KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT, WIDE_LAYOUT
from repro.mem.layout import AddressSpace

key32 = st.integers(min_value=1, max_value=2**31)
key64 = st.integers(min_value=1, max_value=2**62)
payload32 = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=60, deadline=None)
@given(entries=st.lists(st.tuples(key32, payload32), min_size=1, max_size=200),
       probes=st.lists(key32, max_size=50))
def test_index_equals_dict_reference(entries, probes):
    space = AddressSpace()
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(len(entries)), ROBUST_HASH_32,
                      capacity=len(entries))
    reference = defaultdict(list)
    for key, payload in entries:
        index.insert(key, payload)
        reference[key].append(payload)
    for key, _ in entries:
        assert sorted(index.probe(key)) == sorted(reference[key])
    for key in probes:
        assert sorted(index.probe(key)) == sorted(reference.get(key, []))


@settings(max_examples=30, deadline=None)
@given(entries=st.lists(st.tuples(key64, key64), min_size=1, max_size=100,
                        unique_by=lambda t: t[0]))
def test_wide_layout_equals_reference(entries):
    space = AddressSpace()
    index = HashIndex(space, WIDE_LAYOUT, choose_num_buckets(len(entries)),
                      ROBUST_HASH_64, capacity=len(entries))
    for key, payload in entries:
        index.insert(key, payload)
    for key, payload in entries:
        assert index.probe(key) == [payload]


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(key32, min_size=1, max_size=300, unique=True),
       depth=st.sampled_from([0.5, 1.0, 2.0, 4.0]))
def test_stats_invariants(keys, depth):
    space = AddressSpace()
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(len(keys), depth), KERNEL_HASH,
                      capacity=len(keys))
    for row, key in enumerate(keys):
        index.insert(key, row + 1)
    stats = index.stats()
    assert stats.num_keys == len(keys)
    assert stats.used_buckets <= min(stats.num_buckets, len(keys))
    assert stats.used_buckets + stats.overflow_nodes == len(keys)
    assert stats.max_chain * stats.used_buckets >= len(keys) / 4
    assert index.footprint_bytes >= stats.num_buckets * KERNEL_LAYOUT.stride


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(key32, min_size=2, max_size=120, unique=True))
def test_chain_walk_terminates_and_covers_all_keys(keys):
    space = AddressSpace()
    index = HashIndex(space, KERNEL_LAYOUT, choose_num_buckets(len(keys)),
                      ROBUST_HASH_32, capacity=len(keys))
    for row, key in enumerate(keys):
        index.insert(key, row)
    # Every key is reachable by walking its own bucket chain.
    for key in keys:
        chain = list(index.walk_chain(key))
        assert len(chain) <= len(keys)
        assert any(index.node_key(node) == key for node in chain)
