"""Differential tests: bulk-mode serving replay vs the event engine.

:func:`repro.serve.bulk.simulate_service_bulk` promises *bit identity*
with :func:`repro.serve.simulate.simulate_service` — every ServeResult
field, the latency distribution snapshot and the full stats registry
(per-core queue metrics and engine event counts included) — or a
:class:`~repro.sim.bulk.BulkFallback` refusal, never a near miss.
"""

import pytest

from repro.obs import StatsRegistry
from repro.serve.arrivals import Request
from repro.serve.bulk import simulate_service_bulk
from repro.serve.policies import FifoPolicy, SchedulingPolicy, parse_policy
from repro.serve.service import ServiceModel
from repro.serve.simulate import build_requests, simulate_service
from repro.sim.bulk import BulkFallback

MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})


def assert_identical(des, bulk):
    assert des.latency.to_dict() == bulk.latency.to_dict()
    assert des.stats == bulk.stats
    assert (des.completed, des.requests) == (bulk.completed, bulk.requests)
    assert des.makespan == bulk.makespan
    assert des.first_arrival == bulk.first_arrival
    assert des.achieved == bulk.achieved
    assert (des.label, des.policy, des.offered, des.cores) == \
        (bulk.label, bulk.policy, bulk.offered, bulk.cores)


def both(requests, *, policy_spec="fifo", cores=2, offered=0.0):
    des = simulate_service(requests, MODEL, policy=parse_policy(policy_spec),
                           cores=cores, offered=offered)
    bulk = simulate_service_bulk(requests, MODEL,
                                 policy=parse_policy(policy_spec),
                                 cores=cores, offered=offered)
    return des, bulk


# ---------------------------------------------------------------------------
# differential twin: policy x cores x load grid on Poisson arrivals
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy_spec",
                         ["fifo", "size:1", "size:4", "size:16",
                          "deadline:300", "deadline:300:4"])
@pytest.mark.parametrize("cores", [1, 2, 4])
@pytest.mark.parametrize("rate", [2.0, 12.0, 40.0])
def test_poisson_grid_bit_identical(policy_spec, cores, rate):
    requests = build_requests(rate, 250, 8, clients=3, seed=9)
    des, bulk = both(requests, policy_spec=policy_spec, cores=cores,
                     offered=rate)
    assert_identical(des, bulk)


def test_single_request_stream():
    requests = build_requests(5.0, 1, 8, seed=3)
    des, bulk = both(requests, cores=1)
    assert_identical(des, bulk)


def test_deterministic_arrivals_replay_or_fall_back():
    """Evenly spaced arrivals hit exact event ties at some loads; the
    bulk path must either match the DES exactly or refuse — and the
    ``bulk=True`` wrapper must be identical to the DES either way."""
    for rate in (3.0, 10.0, 25.0):
        requests = build_requests(rate, 120, 8, arrival="deterministic")
        des = simulate_service(requests, MODEL, policy=FifoPolicy(), cores=2)
        wrapped = simulate_service(requests, MODEL, policy=FifoPolicy(),
                                   cores=2, bulk=True)
        assert_identical(des, wrapped)
        try:
            bulk = simulate_service_bulk(requests, MODEL,
                                         policy=FifoPolicy(), cores=2)
        except BulkFallback:
            continue
        assert_identical(des, bulk)


def test_bulk_flag_on_run_paths_is_bit_identical():
    requests = build_requests(18.0, 300, 8, clients=2, seed=21)
    for policy_spec in ("fifo", "size:8", "deadline:250:8"):
        des = simulate_service(requests, MODEL,
                               policy=parse_policy(policy_spec), cores=3)
        wrapped = simulate_service(requests, MODEL,
                                   policy=parse_policy(policy_spec), cores=3,
                                   bulk=True)
        assert_identical(des, wrapped)


def test_prepopulated_registry_accumulates_identically():
    requests = build_requests(9.0, 150, 8, seed=4)
    seed_a, seed_b = StatsRegistry(), StatsRegistry()
    for registry in (seed_a, seed_b):
        registry.scope("serve").counter("completed").value += 7
        registry.scope("serve").distribution("latency").record(3.5)
    des = simulate_service(requests, MODEL, policy=FifoPolicy(), cores=2,
                           registry=seed_a)
    bulk = simulate_service_bulk(requests, MODEL, policy=FifoPolicy(),
                                 cores=2, registry=seed_b)
    assert_identical(des, bulk)
    assert seed_a.to_dict() == seed_b.to_dict()


# ---------------------------------------------------------------------------
# fallback triggers
# ---------------------------------------------------------------------------

def make_requests(arrivals):
    return [Request(seq=i, client=0, arrival=t, keys=8)
            for i, t in enumerate(arrivals)]


def test_falls_back_on_unknown_policy_subclass():
    class CustomPolicy(FifoPolicy):
        pass

    with pytest.raises(BulkFallback):
        simulate_service_bulk(make_requests([10.0, 20.0]), MODEL,
                              policy=CustomPolicy(), cores=1)


def test_falls_back_on_first_emission_at_time_zero():
    with pytest.raises(BulkFallback):
        simulate_service_bulk(make_requests([0.0, 10.0]), MODEL,
                              policy=FifoPolicy(), cores=1)


def test_falls_back_on_emission_tied_with_completion():
    # First request served [10, 110); the second emission lands exactly
    # on the completion instant.
    with pytest.raises(BulkFallback):
        simulate_service_bulk(make_requests([10.0, 110.0, 500.0]), MODEL,
                              policy=FifoPolicy(), cores=1)


def test_fallback_cases_still_served_exactly_by_the_wrapper():
    streams = [[0.0, 10.0], [10.0, 110.0, 500.0]]
    for arrivals in streams:
        requests = make_requests(arrivals)
        des = simulate_service(requests, MODEL, policy=FifoPolicy(), cores=1)
        wrapped = simulate_service(requests, MODEL, policy=FifoPolicy(),
                                   cores=1, bulk=True)
        assert_identical(des, wrapped)


# ---------------------------------------------------------------------------
# resilience: bulk replays slo-only accounting and declines everything
# contended (shedding, deadlines, faults, controllers)
# ---------------------------------------------------------------------------

def test_bulk_slo_only_matches_resilient_des_bit_identical():
    from repro.serve.simulate import ResilienceConfig
    requests = build_requests(10.0, 200, 8, seed=42)
    resilience = ResilienceConfig(slo=1500.0)
    des = simulate_service(requests, MODEL, policy=FifoPolicy(), cores=2,
                           resilience=resilience)
    bulk = simulate_service_bulk(requests, MODEL, policy=FifoPolicy(),
                                 cores=2, resilience=resilience)
    assert bulk.in_slo == des.in_slo
    assert bulk.slo == des.slo == 1500.0
    assert bulk.latency.to_dict() == des.latency.to_dict()
    assert bulk.goodput == des.goodput
    assert bulk.stats == des.stats


def test_bulk_declines_shed_and_timeout_wrappers():
    requests = build_requests(10.0, 50, 8, seed=42)
    for spec in ("shed:4", "timeout:2000", "shed:8:timeout:1000:size:2"):
        with pytest.raises(BulkFallback):
            simulate_service_bulk(requests, MODEL,
                                  policy=parse_policy(spec), cores=2)


def test_bulk_declines_queue_depth_faults_and_controllers():
    from repro.serve.control import parse_controller
    from repro.serve.faults import WalkerFaultModel
    from repro.serve.simulate import ResilienceConfig
    requests = build_requests(10.0, 50, 8, seed=42)
    with pytest.raises(BulkFallback):
        simulate_service_bulk(requests, MODEL, policy=FifoPolicy(),
                              cores=2, queue_depth=4)
    fallback = ServiceModel("host", 8, {1: 300.0})
    faulted = ResilienceConfig(
        slo=1000.0,
        faults=WalkerFaultModel(seed=1, rate=4.0, walkers_per_core=2),
        fallback=fallback)
    with pytest.raises(BulkFallback):
        simulate_service_bulk(requests, MODEL, policy=FifoPolicy(),
                              cores=2, resilience=faulted)
    controlled = ResilienceConfig(slo=1000.0,
                                  controller=parse_controller("p99:1000"))
    with pytest.raises(BulkFallback):
        simulate_service_bulk(requests, MODEL, policy=FifoPolicy(),
                              cores=2, resilience=controlled)


def test_bulk_flag_with_resilience_falls_back_to_des_exactly():
    """The user-facing wrapper: --bulk plus shedding silently replays
    on the DES and the results match a non-bulk run bit-for-bit."""
    requests = build_requests(30.0, 200, 8, seed=42)
    des = simulate_service(requests, MODEL,
                           policy=parse_policy("shed:4"), cores=2)
    wrapped = simulate_service(requests, MODEL,
                               policy=parse_policy("shed:4"), cores=2,
                               bulk=True)
    assert wrapped.latency.to_dict() == des.latency.to_dict()
    assert wrapped.shed == des.shed
    assert wrapped.stats == des.stats
