"""Tests for the batch-scheduling policies, driven on a real engine."""

import pytest

from repro.errors import ServeError
from repro.serve.arrivals import Request
from repro.serve.policies import (BatchByDeadline, BatchBySize, FifoPolicy,
                                  parse_policy)
from repro.sim.engine import Engine
from repro.sim.resources import BoundedQueue


def request(seq, arrival=0.0):
    return Request(seq=seq, client=0, arrival=arrival, keys=1)


def drive(policy, feed):
    """Run one queue: ``feed(engine, queue)`` produces, the policy
    consumes until close; returns the list of collected batches."""
    engine = Engine()
    queue = BoundedQueue(engine, 64, name="test")
    batches = []

    def consumer():
        while True:
            batch = yield from policy.collect(queue)
            if batch is None:
                return
            batches.append([r.seq for r in batch])

    engine.process(feed(engine, queue), name="feed")
    engine.process(consumer(), name="consumer")
    engine.run()
    return batches


def burst_then_close(items, gap=0.0):
    def feed(engine, queue):
        for i, delay in zip(items, [gap] * len(items)):
            if delay:
                yield delay
            yield queue.put(request(i))
        queue.close()
    return feed


def test_fifo_serves_one_request_per_batch():
    batches = drive(FifoPolicy(), burst_then_close([0, 1, 2]))
    assert batches == [[0], [1], [2]]


def test_batch_by_size_absorbs_backlog_up_to_cap():
    batches = drive(BatchBySize(2), burst_then_close([0, 1, 2, 3, 4]))
    assert batches == [[0, 1], [2, 3], [4]]


def test_batch_by_size_does_not_wait_for_future_arrivals():
    # 100-cycle gaps: each request is alone in the queue when collected.
    batches = drive(BatchBySize(4), burst_then_close([0, 1, 2], gap=100.0))
    assert batches == [[0], [1], [2]]


def test_batch_by_deadline_holds_the_batch_open():
    def feed(engine, queue):
        yield queue.put(request(0))
        yield 10.0
        yield queue.put(request(1))
        yield 10.0
        yield queue.put(request(2))
        queue.close()

    # 50-cycle deadline: all three arrivals land inside the window.
    batches = drive(BatchByDeadline(50.0), feed)
    assert batches == [[0, 1, 2]]


def test_batch_by_deadline_respects_the_cap():
    batches = drive(BatchByDeadline(50.0, max_batch=2),
                    burst_then_close([0, 1, 2, 3]))
    assert batches == [[0, 1], [2, 3]]


def test_batch_by_deadline_zero_wait_equals_greedy_sweep():
    assert (drive(BatchByDeadline(0.0), burst_then_close([0, 1, 2]))
            == drive(BatchBySize(10**9), burst_then_close([0, 1, 2])))


def test_policies_return_none_on_closed_empty_queue():
    def feed(engine, queue):
        queue.close()
        return
        yield  # pragma: no cover

    for policy in (FifoPolicy(), BatchBySize(3), BatchByDeadline(10.0)):
        assert drive(policy, feed) == []


def test_parse_policy_round_trip():
    assert isinstance(parse_policy("fifo"), FifoPolicy)
    sized = parse_policy("size:8")
    assert isinstance(sized, BatchBySize) and sized.max_batch == 8
    deadline = parse_policy("deadline:250")
    assert isinstance(deadline, BatchByDeadline)
    assert deadline.wait == 250.0 and deadline.max_batch is None
    capped = parse_policy("deadline:250:16")
    assert capped.wait == 250.0 and capped.max_batch == 16


@pytest.mark.parametrize("spec", ["", "lifo", "size", "size:0", "size:x",
                                  "deadline", "deadline:-1", "deadline:1:0",
                                  "fifo:2"])
def test_parse_policy_rejects_bad_specs(spec):
    with pytest.raises(ServeError):
        parse_policy(spec)


def test_policy_constructor_validation():
    with pytest.raises(ServeError):
        BatchBySize(0)
    with pytest.raises(ServeError):
        BatchByDeadline(-1.0)
    with pytest.raises(ServeError):
        BatchByDeadline(1.0, max_batch=0)


@pytest.mark.parametrize("wait", [float("inf"), float("nan")])
def test_deadline_rejects_non_finite_waits(wait):
    """Regression: a non-finite hold window used to pass the ``< 0``
    check; an infinite wait deadlocks the collect loop (the deadline
    never arrives) and NaN disables the hold comparison entirely."""
    with pytest.raises(ServeError):
        BatchByDeadline(wait)


# ---------------------------------------------------------------------------
# admission wrappers: shed:QDEPTH and timeout:CYCLES compose around any
# base policy and are transparent to batch collection
# ---------------------------------------------------------------------------

def test_parse_shed_wrapper():
    from repro.serve.policies import (ShedPolicy, admission_depth,
                                      base_policy, request_timeout)
    policy = parse_policy("shed:16")
    assert isinstance(policy, ShedPolicy)
    assert admission_depth(policy) == 16
    assert request_timeout(policy) is None
    assert isinstance(base_policy(policy), FifoPolicy)
    assert policy.name == "shed:16:fifo"


def test_parse_timeout_wrapper():
    from repro.serve.policies import (TimeoutPolicy, admission_depth,
                                      base_policy, request_timeout)
    policy = parse_policy("timeout:2500")
    assert isinstance(policy, TimeoutPolicy)
    assert request_timeout(policy) == 2500.0
    assert admission_depth(policy) is None
    assert isinstance(base_policy(policy), FifoPolicy)
    assert policy.name == "timeout:2500:fifo"


def test_wrappers_compose_recursively():
    from repro.serve.policies import (admission_depth, base_policy,
                                      request_timeout)
    policy = parse_policy("shed:8:timeout:3000:size:4")
    assert admission_depth(policy) == 8
    assert request_timeout(policy) == 3000.0
    inner = base_policy(policy)
    assert isinstance(inner, BatchBySize) and inner.max_batch == 4
    assert policy.name == "shed:8:timeout:3000:size:4"


def test_wrapped_policy_collects_like_its_base():
    """The wrapper is an admission annotation: batch collection must be
    exactly the base policy's."""
    def feed(engine, queue):
        for seq in range(6):
            yield queue.put(request(seq))
        queue.close()

    plain = drive(BatchBySize(3), feed)
    wrapped = drive(parse_policy("shed:100:size:3"), feed)
    assert wrapped == plain == [[0, 1, 2], [3, 4, 5]]


@pytest.mark.parametrize("spec", ["shed", "shed:0", "shed:x", "timeout",
                                  "timeout:0", "timeout:-5", "timeout:nan",
                                  "shed:4:lifo", "timeout:10:shed"])
def test_parse_wrapper_rejects_bad_specs(spec):
    with pytest.raises(ServeError):
        parse_policy(spec)


def test_wrapper_constructor_validation():
    from repro.serve.policies import ShedPolicy, TimeoutPolicy
    with pytest.raises(ServeError):
        ShedPolicy(0, FifoPolicy())
    with pytest.raises(ServeError):
        TimeoutPolicy(float("inf"), FifoPolicy())
    with pytest.raises(ServeError):
        TimeoutPolicy(0.0, FifoPolicy())


# ---------------------------------------------------------------------------
# parse_policy hardening: malformed and duplicated wrapper specs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ["shed:4:shed:8", "timeout:10:timeout:20",
                                  "shed:4:timeout:10:shed:2",
                                  "timeout:5:shed:4:timeout:9:fifo"])
def test_parse_policy_rejects_duplicate_wrappers(spec):
    with pytest.raises(ServeError) as excinfo:
        parse_policy(spec)
    assert "duplicate" in str(excinfo.value)
    assert repr(spec) in str(excinfo.value)


@pytest.mark.parametrize("spec", ["shed:4:", "timeout:10:", "fifo:",
                                  "shed:4::fifo", ":fifo", ":", ""])
def test_parse_policy_rejects_empty_tokens(spec):
    with pytest.raises(ServeError):
        parse_policy(spec)


def test_parse_policy_error_names_offending_token():
    with pytest.raises(ServeError) as excinfo:
        parse_policy("shed:8:lifo")
    message = str(excinfo.value)
    assert "'lifo'" in message          # the offending token, by name
    assert "fifo" in message            # ... and the valid policies
    assert "deadline" in message
    assert "timeout" in message


def test_parse_policy_error_lists_valid_policies_on_arity():
    with pytest.raises(ServeError) as excinfo:
        parse_policy("size:2:3")
    message = str(excinfo.value)
    assert "'size:2:3'" in message
    assert "valid policies" in message


def test_parse_policy_mixed_wrappers_still_compose():
    """Hardening must not reject the supported mixed nesting."""
    from repro.serve.policies import (admission_depth, base_policy,
                                      request_timeout)
    policy = parse_policy("shed:8:timeout:1000:size:2")
    assert admission_depth(policy) == 8
    assert request_timeout(policy) == 1000.0
    assert isinstance(base_policy(policy), BatchBySize)
