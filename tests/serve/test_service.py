"""Tests for service-time calibration on the detailed simulators."""

import pytest

from repro.errors import ServeError
from repro.serve.service import ServiceMeasurement, ServiceModel, measure_service
from repro.workloads.hashjoin_kernel import build_kernel_workload


@pytest.fixture(scope="module")
def small_workload():
    return build_kernel_workload("Small", 64, seed=42)


def test_core_backend_measures_whole_batch_cost(small_workload):
    index, probes = small_workload
    one = measure_service(index, probes, backend="inorder", batch_keys=8)
    four = measure_service(index, probes, backend="inorder", batch_keys=32)
    assert one.cycles > 0
    assert four.cycles > one.cycles
    # Per-key cost must not grow with batch size (warm-up amortizes).
    assert four.cycles_per_key <= one.cycles_per_key
    assert one.stats  # registry snapshot attached


def test_widx_backend_includes_configuration_cost(small_workload):
    index, probes = small_workload
    measurement = measure_service(index, probes, backend="widx",
                                  batch_keys=8, walkers=1, mode="shared")
    assert measurement.backend == "widx"
    assert measurement.walkers == 1 and measurement.mode == "shared"
    # Config cycles are folded in: a batch costs more than the raw run
    # of the same offload without them would.
    from repro.widx.offload import offload_probe
    outcome = offload_probe(index, probes, config=None or
                            __import__("repro.config",
                                       fromlist=["DEFAULT_CONFIG"]
                                       ).DEFAULT_CONFIG.with_widx(
                                           num_walkers=1, mode="shared"),
                            probes=8)
    assert measurement.cycles == pytest.approx(
        outcome.run.total_cycles + outcome.run.config_cycles)


def test_widx_beats_inorder_at_every_calibrated_batch(small_workload):
    """The acceptance criterion's calibration-level core: Widx service
    time is strictly below the in-order core's at equal batch size."""
    index, probes = small_workload
    for batch_keys in (8, 16, 32):
        core = measure_service(index, probes, backend="inorder",
                               batch_keys=batch_keys)
        widx = measure_service(index, probes, backend="widx",
                               batch_keys=batch_keys, walkers=1,
                               mode="shared")
        assert widx.cycles < core.cycles


def test_measurement_validation(small_workload):
    index, probes = small_workload
    with pytest.raises(ServeError):
        measure_service(index, probes, backend="inorder", batch_keys=0)
    with pytest.raises(ServeError):
        measure_service(index, probes, backend="inorder", batch_keys=10**6)
    with pytest.raises(ServeError):
        measure_service(index, probes, backend="widx", batch_keys=8)
    with pytest.raises(ServeError):
        measure_service(index, probes, backend="inorder", batch_keys=8,
                        walkers=2)
    with pytest.raises(ServeError):
        measure_service(index, probes, backend="vliw", batch_keys=8)


def test_model_from_measurements_checks_key_multiples():
    good = ServiceMeasurement(backend="inorder", kind="kernel", name="Small",
                              walkers=0, mode="", batch_keys=16, cycles=50.0)
    model = ServiceModel.from_measurements("inorder", 8, [good])
    assert model.calibrated_batches == [2]
    bad = ServiceMeasurement(backend="inorder", kind="kernel", name="Small",
                             walkers=0, mode="", batch_keys=12, cycles=50.0)
    with pytest.raises(ServeError):
        ServiceModel.from_measurements("inorder", 8, [bad])


def test_scaled_model_multiplies_every_batch_cost():
    model = ServiceModel("m", 8, {1: 100.0, 2: 160.0, 4: 280.0})
    double = model.scaled(2.0)
    for batch in (1, 2, 3, 4, 8):
        assert double.cycles_for(batch) == pytest.approx(
            2.0 * model.cycles_for(batch))
    assert double.keys_per_request == model.keys_per_request
    # The original is untouched (scaled returns a copy).
    assert model.cycles_for(1) == 100.0


def test_scaled_rejects_non_positive_and_non_finite_factors():
    model = ServiceModel("m", 8, {1: 100.0})
    for factor in (0.0, -1.0, float("inf"), float("nan")):
        with pytest.raises(ServeError):
            model.scaled(factor)
