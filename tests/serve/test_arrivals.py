"""Property and unit tests for the open-loop arrival processes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServeError
from repro.serve.arrivals import (DeterministicArrivals, PoissonArrivals,
                                  Request, merge_requests)

rates = st.floats(min_value=0.01, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31)
counts = st.integers(min_value=1, max_value=300)


# ---------------------------------------------------------------------------
# determinism and structure
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(rate=rates, seed=seeds, count=counts)
def test_poisson_is_deterministic_per_seed(rate, seed, count):
    a = PoissonArrivals(rate, seed=seed).times(count)
    b = PoissonArrivals(rate, seed=seed).times(count)
    assert a == b


@settings(max_examples=50, deadline=None)
@given(rate=rates, seed=seeds, count=counts)
def test_poisson_times_strictly_increase(rate, seed, count):
    times = PoissonArrivals(rate, seed=seed).times(count)
    assert len(times) == count
    assert all(a < b for a, b in zip(times, times[1:]))
    assert times[0] > 0


@settings(max_examples=30, deadline=None)
@given(seed=seeds, count=counts)
def test_different_seeds_give_different_patterns(seed, count):
    a = PoissonArrivals(1.0, seed=seed).times(max(count, 5))
    b = PoissonArrivals(1.0, seed=seed + 1).times(max(count, 5))
    assert a != b


@settings(max_examples=50, deadline=None)
@given(rate=rates, seed=seeds, count=counts, factor=st.floats(1.1, 10.0))
def test_rate_scaling_compresses_the_same_pattern(rate, seed, count, factor):
    """The p99-monotonicity acceptance rests on this: same seed at a
    higher rate is the *identical* pattern on a compressed time scale."""
    slow = PoissonArrivals(rate, seed=seed).times(count)
    fast = PoissonArrivals(rate * factor, seed=seed).times(count)
    for s, f in zip(slow, fast):
        assert f == pytest.approx(s / factor, rel=1e-12)


def test_poisson_mean_gap_matches_rate_within_tolerance():
    """The sample mean inter-arrival gap converges on 1000/rate."""
    rate = 4.0
    process = PoissonArrivals(rate, seed=7)
    times = process.times(20_000)
    gaps = [b - a for a, b in zip([0.0] + times, times)]
    mean = sum(gaps) / len(gaps)
    # 20k exponential samples: the sample mean is within a few percent
    # of the true mean with overwhelming probability at this fixed seed.
    assert math.isclose(mean, process.mean_gap(), rel_tol=0.05)


def test_deterministic_arrivals_are_evenly_spaced():
    times = DeterministicArrivals(2.0).times(4)
    assert times == [500.0, 1000.0, 1500.0, 2000.0]


@settings(max_examples=30, deadline=None)
@given(rate=rates, count=counts)
def test_deterministic_mean_gap_is_exact(rate, count):
    process = DeterministicArrivals(rate)
    times = process.times(count)
    assert times[-1] == pytest.approx(count * process.mean_gap())


# ---------------------------------------------------------------------------
# requests and merging
# ---------------------------------------------------------------------------

def test_requests_carry_sequence_client_and_keys():
    requests = PoissonArrivals(1.0, seed=3).requests(5, keys_per_request=8,
                                                     client=2)
    assert [r.seq for r in requests] == [0, 1, 2, 3, 4]
    assert all(r.client == 2 and r.keys == 8 for r in requests)
    assert all(a.arrival < b.arrival
               for a, b in zip(requests, requests[1:]))


@settings(max_examples=40, deadline=None)
@given(seed=seeds,
       clients=st.integers(min_value=1, max_value=6),
       per_client=st.integers(min_value=1, max_value=40))
def test_merge_preserves_global_order_and_renumbers(seed, clients, per_client):
    streams = [PoissonArrivals(1.0, seed=seed + c).requests(
                   per_client, keys_per_request=4, client=c)
               for c in range(clients)]
    merged = merge_requests(streams)
    assert len(merged) == clients * per_client
    assert [r.seq for r in merged] == list(range(len(merged)))
    assert all(a.arrival <= b.arrival for a, b in zip(merged, merged[1:]))
    # Each client's requests keep their relative order.
    for c in range(clients):
        arrivals = [r.arrival for r in merged if r.client == c]
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == per_client


def test_merge_breaks_ties_by_client():
    tie = [Request(seq=0, client=1, arrival=10.0, keys=1)]
    other = [Request(seq=0, client=0, arrival=10.0, keys=1)]
    merged = merge_requests([tie, other])
    assert [r.client for r in merged] == [0, 1]


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rate", [0.0, -1.0])
def test_non_positive_rates_rejected(rate):
    with pytest.raises(ServeError):
        PoissonArrivals(rate)
    with pytest.raises(ServeError):
        DeterministicArrivals(rate)


@pytest.mark.parametrize("rate", [float("inf"), float("nan"), -float("inf")])
def test_non_finite_rates_rejected(rate):
    """Regression: an infinite rate used to pass the ``> 0`` check and
    produce a zero mean gap — the whole stream landing at one instant —
    and NaN poisoned every downstream arrival time."""
    with pytest.raises(ServeError):
        PoissonArrivals(rate)
    with pytest.raises(ServeError):
        DeterministicArrivals(rate)


def test_keys_per_request_must_be_positive():
    with pytest.raises(ServeError):
        DeterministicArrivals(1.0).requests(3, keys_per_request=0)
