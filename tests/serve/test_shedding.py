"""Tests for admission control, load shedding, and request deadlines."""

import pytest

from repro.errors import ServeError
from repro.obs import StatsRegistry
from repro.serve.policies import FifoPolicy, parse_policy
from repro.serve.service import ServiceModel
from repro.serve.simulate import (ResilienceConfig, run_open_loop,
                                  simulate_service)
from repro.serve.arrivals import Request

MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})


def run(rate, *, policy=None, cores=2, requests=300, seed=42, **kwargs):
    return run_open_loop(MODEL, rate=rate, num_requests=requests,
                         policy=policy or FifoPolicy(), cores=cores,
                         seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# clean-path parity: the resilient pair is bit-identical when nothing
# resilient actually fires
# ---------------------------------------------------------------------------

def test_slo_only_run_matches_plain_run_bit_identical():
    plain = run(10.0)
    resilient = run(10.0, resilience=ResilienceConfig(slo=5000.0))
    assert resilient.latency.to_dict() == plain.latency.to_dict()
    assert resilient.makespan == plain.makespan
    assert resilient.completed == plain.completed
    assert (resilient.shed, resilient.expired) == (0, 0)


def test_unreached_shed_depth_matches_plain_run():
    """A shed bound deeper than the worst backlog never fires, and the
    run is bit-identical to the plain path."""
    plain = run(10.0)
    shed = run(10.0, policy=parse_policy("shed:100000"))
    assert shed.latency.to_dict() == plain.latency.to_dict()
    assert shed.makespan == plain.makespan
    assert shed.shed == 0


def test_slo_accounting_counts_in_slo_completions():
    # An SLO above the worst latency counts everything; below the best
    # service time, nothing; in between, strictly some of each.
    everything = run(10.0, resilience=ResilienceConfig(slo=1e12))
    assert everything.in_slo == everything.completed
    assert everything.goodput == pytest.approx(everything.achieved)
    nothing = run(10.0, resilience=ResilienceConfig(slo=1.0))
    assert nothing.in_slo == 0
    assert nothing.goodput == 0.0
    some = run(10.0, resilience=ResilienceConfig(slo=everything.p50))
    assert 0 < some.in_slo < some.completed
    assert 0.0 < some.goodput < some.achieved
    span = some.makespan - some.first_arrival
    assert some.goodput == pytest.approx(some.in_slo * 1000.0 / span)


# ---------------------------------------------------------------------------
# shedding
# ---------------------------------------------------------------------------

def test_overload_with_shed_policy_sheds_and_conserves():
    rate = 3 * 2 * MODEL.saturation_rate()
    result = run(rate, policy=parse_policy("shed:4"), requests=400)
    assert result.shed > 0
    assert result.completed + result.shed + result.expired == 400
    registry = StatsRegistry.from_dict(result.stats)
    assert registry.get("serve.shed").value == result.shed


def test_shedding_bounds_the_tail_under_overload():
    """Shedding trades completions for latency: the shed run's p99 is
    bounded by the (small) queue it admits into."""
    rate = 3 * 2 * MODEL.saturation_rate()
    unbounded = run(rate, requests=400)
    shed = run(rate, policy=parse_policy("shed:4"), requests=400)
    assert shed.p99 < unbounded.p99
    assert shed.completed < 400
    assert shed.shed_fraction > 0


def test_tighter_shed_depth_sheds_weakly_more():
    rate = 3 * 2 * MODEL.saturation_rate()
    loose = run(rate, policy=parse_policy("shed:64"), requests=400)
    tight = run(rate, policy=parse_policy("shed:4"), requests=400)
    assert tight.shed >= loose.shed


def test_queue_depth_with_shed_wrapper_takes_the_tighter_bound():
    rate = 3 * 2 * MODEL.saturation_rate()
    a = run(rate, policy=parse_policy("shed:100"), queue_depth=4,
            requests=400)
    b = run(rate, policy=parse_policy("shed:4"), requests=400)
    assert a.shed == b.shed
    assert a.latency.to_dict() == b.latency.to_dict()


# ---------------------------------------------------------------------------
# the admission-queue-full contract (satellite): a full queue without a
# declared shed depth must raise, never silently block
# ---------------------------------------------------------------------------

def test_full_queue_without_shed_policy_raises_serve_error():
    rate = 3 * 2 * MODEL.saturation_rate()
    with pytest.raises(ServeError, match="shed"):
        run(rate, queue_depth=2, requests=400)


def test_full_queue_error_names_the_queue_and_the_fix():
    rate = 3 * 2 * MODEL.saturation_rate()
    with pytest.raises(ServeError, match=r"admit.*full.*never block"):
        run(rate, queue_depth=2, requests=400)


def test_queue_depth_validation():
    with pytest.raises(ServeError):
        run(10.0, queue_depth=0)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

def test_timeout_policy_expires_late_requests_and_conserves():
    rate = 3 * 2 * MODEL.saturation_rate()
    result = run(rate, policy=parse_policy("timeout:2000"), requests=400)
    assert result.expired > 0
    assert result.completed + result.shed + result.expired == 400
    # Every *served* request met its deadline: expiry covers in-service
    # doom, so no completion can exceed timeout.
    assert result.latency.max <= 2000.0
    registry = StatsRegistry.from_dict(result.stats)
    assert registry.get("serve.expired").value == result.expired


def test_unreachable_timeout_expires_nothing():
    plain = run(10.0)
    result = run(10.0, policy=parse_policy("timeout:1e9"))
    assert result.expired == 0
    assert result.latency.to_dict() == plain.latency.to_dict()


def test_shed_and_timeout_compose():
    rate = 3 * 2 * MODEL.saturation_rate()
    result = run(rate, policy=parse_policy("shed:8:timeout:2500"),
                 requests=400)
    assert result.shed > 0
    assert result.completed + result.shed + result.expired == 400
    assert result.latency.max <= 2500.0


def test_expired_requests_never_occupy_service_capacity():
    """A request that cannot meet its deadline is dropped before the
    core commits cycles to it, so the served requests' throughput does
    not degrade as the timeout tightens."""
    rate = 3 * 2 * MODEL.saturation_rate()
    tight = run(rate, policy=parse_policy("timeout:1500"), requests=400)
    loose = run(rate, policy=parse_policy("timeout:4000"), requests=400)
    assert tight.expired >= loose.expired
    assert tight.completed <= loose.completed


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def test_resilient_run_is_deterministic():
    rate = 3 * 2 * MODEL.saturation_rate()
    a = run(rate, policy=parse_policy("shed:8:timeout:3000"), requests=400)
    b = run(rate, policy=parse_policy("shed:8:timeout:3000"), requests=400)
    assert a.latency.to_dict() == b.latency.to_dict()
    assert (a.completed, a.shed, a.expired) == (b.completed, b.shed,
                                                b.expired)
    assert a.stats == b.stats


def test_shifted_stream_sheds_identically():
    """Admission decisions depend on backlog, not absolute time."""
    base = [Request(seq=i, client=0, arrival=10.0 * i, keys=8)
            for i in range(100)]
    shifted = [Request(seq=r.seq, client=r.client,
                       arrival=r.arrival + 50_000.0, keys=r.keys)
               for r in base]
    policy_a = parse_policy("shed:3")
    policy_b = parse_policy("shed:3")
    a = simulate_service(base, MODEL, policy=policy_a, cores=1)
    b = simulate_service(shifted, MODEL, policy=policy_b, cores=1)
    assert a.shed == b.shed
    assert a.completed == b.completed
