"""Tests for the open-loop serving simulation."""

import pytest

from repro.errors import ServeError
from repro.obs import StatsRegistry
from repro.serve.arrivals import Request
from repro.serve.policies import BatchByDeadline, BatchBySize, FifoPolicy
from repro.serve.service import ServiceModel
from repro.serve.simulate import (build_requests, run_open_loop,
                                  simulate_service)

#: A synthetic calibration: 100 cycles for one request, amortizing to
#: 70/request at batch 4 — shaped like the real Widx measurements.
MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})


def run(rate, *, policy=None, cores=2, requests=300, seed=42, **kwargs):
    return run_open_loop(MODEL, rate=rate, num_requests=requests,
                         policy=policy or FifoPolicy(), cores=cores,
                         seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# service model
# ---------------------------------------------------------------------------

def test_service_model_interpolates_and_extrapolates():
    assert MODEL.cycles_for(1) == 100.0
    assert MODEL.cycles_for(2) == 160.0
    assert MODEL.cycles_for(3) == pytest.approx(220.0)   # midpoint of 2..4
    assert MODEL.cycles_for(8) == pytest.approx(280.0 + 4 * 60.0)
    assert MODEL.saturation_rate() == pytest.approx(10.0)
    assert MODEL.saturation_rate(4) == pytest.approx(4000.0 / 280.0)


def test_service_model_validation():
    with pytest.raises(ServeError):
        ServiceModel("m", 8, {})
    with pytest.raises(ServeError):
        ServiceModel("m", 8, {0: 10.0})
    with pytest.raises(ServeError):
        ServiceModel("m", 8, {1: 0.0})
    with pytest.raises(ServeError):
        ServiceModel("m", 0, {1: 10.0})
    with pytest.raises(ServeError):
        MODEL.cycles_for(0)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def test_same_seed_same_result_bit_identical():
    a = run(10.0)
    b = run(10.0)
    assert a.latency.to_dict() == b.latency.to_dict()
    assert a.stats == b.stats
    assert (a.completed, a.makespan) == (b.completed, b.makespan)


def test_different_seed_different_latencies():
    assert run(10.0, seed=1).stats != run(10.0, seed=2).stats


# ---------------------------------------------------------------------------
# conservation and accounting
# ---------------------------------------------------------------------------

def test_every_request_completes_and_is_recorded():
    result = run(12.0, requests=250)
    assert result.completed == result.requests == 250
    assert result.latency.count == 250
    registry = StatsRegistry.from_dict(result.stats)
    assert registry.get("serve.completed").value == 250
    assert registry.get("serve.batches").value >= 1
    assert registry.get("serve.busy_cycles").value > 0


def test_latency_is_at_least_the_service_time():
    result = run(2.0)  # light load: mostly pure service time
    # Engine time arithmetic (arrival + delay - arrival) can lose an ulp.
    assert result.latency.min >= MODEL.cycles_for(1) * (1 - 1e-12)


def test_makespan_covers_the_last_arrival():
    result = run(10.0)
    assert result.makespan > 0
    assert result.achieved > 0


def test_achieved_is_measured_from_the_first_arrival():
    """Regression: achieved used to divide by the full makespan, so the
    idle lead-in before the first request counted as busy time and
    understated throughput at low loads and small request counts."""
    requests = [Request(seq=0, client=0, arrival=5000.0, keys=8),
                Request(seq=1, client=0, arrival=5100.0, keys=8)]
    result = simulate_service(requests, MODEL, policy=FifoPolicy(), cores=1)
    assert result.first_arrival == 5000.0
    span = result.makespan - result.first_arrival
    assert result.achieved == result.completed * 1000.0 / span
    # The old formula (divide by the whole makespan) was visibly lower.
    assert result.achieved > result.completed * 1000.0 / result.makespan


def test_achieved_is_invariant_under_a_shifted_stream():
    """Delaying every arrival by a constant must not change achieved
    throughput: the served window shifts with the work."""
    base = [Request(seq=i, client=0, arrival=100.0 * (i + 1), keys=8)
            for i in range(20)]
    shifted = [Request(seq=r.seq, client=r.client,
                       arrival=r.arrival + 40_000.0, keys=r.keys)
               for r in base]
    a = simulate_service(base, MODEL, policy=FifoPolicy(), cores=2)
    b = simulate_service(shifted, MODEL, policy=FifoPolicy(), cores=2)
    assert a.achieved == pytest.approx(b.achieved, rel=1e-12)


# ---------------------------------------------------------------------------
# open-loop load behaviour
# ---------------------------------------------------------------------------

def test_p99_weakly_non_decreasing_in_offered_load():
    saturation = 2 * MODEL.saturation_rate()
    previous = -1.0
    for fraction in (0.2, 0.4, 0.6, 0.8, 0.95, 1.2):
        result = run(fraction * saturation)
        assert result.p99 >= previous
        previous = result.p99


def test_overload_saturates_throughput_not_latency():
    """Beyond saturation the backlog (and tail) grows but achieved
    throughput tops out near capacity — the open-loop signature."""
    saturation = 2 * MODEL.saturation_rate()
    at_cap = run(0.95 * saturation, requests=400)
    beyond = run(2.0 * saturation, requests=400)
    assert beyond.p99 > 2 * at_cap.p99
    assert beyond.achieved <= saturation * 1.05
    assert beyond.achieved == pytest.approx(saturation, rel=0.15)


def test_quantiles_are_ordered():
    result = run(15.0)
    assert result.p50 <= result.p95 <= result.p99
    assert result.latency.min <= result.p50
    assert result.p99 <= result.latency.max


# ---------------------------------------------------------------------------
# batching policies under load
# ---------------------------------------------------------------------------

def test_batching_beats_fifo_on_throughput_under_overload():
    """With economies of scale in the service curve, sweeping the backlog
    in batches clears an overload faster than FIFO."""
    rate = 3 * MODEL.saturation_rate()  # far beyond 1-core FIFO capacity
    fifo = run(rate, cores=1, policy=FifoPolicy(), requests=200)
    batched = run(rate, cores=1, policy=BatchBySize(4), requests=200)
    assert batched.makespan < fifo.makespan
    assert batched.achieved > fifo.achieved


def test_deadline_batching_trades_light_load_latency():
    """At light load a deadline policy pays its hold-open delay."""
    rate = 0.2 * MODEL.saturation_rate()
    fifo = run(rate, cores=1, policy=FifoPolicy())
    held = run(rate, cores=1, policy=BatchByDeadline(400.0))
    assert held.p50 > fifo.p50


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_rejects_empty_request_stream():
    with pytest.raises(ServeError):
        simulate_service([], MODEL, policy=FifoPolicy(), cores=1)


def test_rejects_mismatched_keys_per_request():
    bad = [Request(seq=0, client=0, arrival=1.0, keys=99)]
    with pytest.raises(ServeError):
        simulate_service(bad, MODEL, policy=FifoPolicy(), cores=1)


def test_rejects_bad_core_and_client_counts():
    requests = build_requests(1.0, 4, 8)
    with pytest.raises(ServeError):
        simulate_service(requests, MODEL, policy=FifoPolicy(), cores=0)
    with pytest.raises(ServeError):
        build_requests(1.0, 4, 8, clients=0)
    with pytest.raises(ServeError):
        build_requests(1.0, 2, 8, clients=3)
    with pytest.raises(ServeError):
        build_requests(1.0, 4, 8, arrival="uniform")


def test_multi_client_streams_merge_into_one_ordered_stream():
    requests = build_requests(4.0, 30, 8, clients=3, seed=5)
    assert len(requests) == 30
    assert [r.seq for r in requests] == list(range(30))
    assert all(a.arrival <= b.arrival
               for a, b in zip(requests, requests[1:]))
    assert {r.client for r in requests} == {0, 1, 2}
    result = simulate_service(requests, MODEL, policy=FifoPolicy(), cores=2)
    assert result.completed == 30
