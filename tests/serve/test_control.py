"""Tests for the degraded-mode controller."""

import pytest

from repro.errors import ServeError
from repro.obs import StatsRegistry
from repro.serve.control import (Controller, ControllerSpec, parse_controller)
from repro.serve.faults import WalkerFaultModel
from repro.serve.policies import FifoPolicy, parse_policy
from repro.serve.service import ServiceModel
from repro.serve.simulate import ResilienceConfig, run_open_loop

MODEL = ServiceModel("synthetic", 8, {1: 100.0, 2: 160.0, 4: 280.0})
FALLBACK = ServiceModel("host", 8, {1: 300.0, 2: 520.0, 4: 960.0})


# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------

def test_parse_controller_full_spec():
    spec = parse_controller("p99:5000:3:4:all")
    assert spec.window == 5000.0
    assert spec.breach == 3
    assert spec.recover == 4
    assert spec.action == "all"


def test_parse_controller_defaults():
    spec = parse_controller("p99:2000")
    assert spec.window == 2000.0
    assert spec.breach == 2
    assert spec.recover == 3
    assert spec.action == "shed"


def test_parse_controller_rejects_bad_specs():
    for bad in ("", "p99", "p50:1000", "p99:0", "p99:1000:0",
                "p99:1000:2:0", "p99:1000:2:3:explode",
                "p99:1000:2:3:all:extra"):
        with pytest.raises(ServeError):
            parse_controller(bad)


def test_controller_spec_validation():
    with pytest.raises(ServeError):
        ControllerSpec(window=0.0)
    with pytest.raises(ServeError):
        ControllerSpec(window=100.0, margin=0.0)
    with pytest.raises(ServeError):
        ControllerSpec(window=100.0, action="panic")
    with pytest.raises(ServeError):
        ControllerSpec(window=100.0, spares=-1)


def test_shed_depth_tightens_with_level():
    spec = ControllerSpec(window=100.0, depth=16)
    assert spec.shed_depth_at(0) is None
    assert spec.shed_depth_at(1) == 16
    assert spec.shed_depth_at(2) == 8
    assert spec.shed_depth_at(3) == 4
    assert spec.shed_depth_at(10) == 1   # floors at 1, never 0


# ---------------------------------------------------------------------------
# the hysteretic state machine (engine-free)
# ---------------------------------------------------------------------------

def test_controller_degrades_after_consecutive_breaches():
    ctl = Controller(ControllerSpec(window=100.0, breach=2, recover=3),
                     slo=1000.0)
    assert ctl.observe(2000.0) == 0       # first breach: not yet
    assert ctl.level == 0
    assert ctl.observe(2000.0) == 1       # second consecutive: degrade
    assert ctl.level == 1
    assert ctl.breaches == 2
    assert ctl.degradations == 1


def test_breach_streak_resets_on_a_clean_window():
    ctl = Controller(ControllerSpec(window=100.0, breach=2, recover=3),
                     slo=1000.0)
    ctl.observe(2000.0)
    assert ctl.observe(100.0) == 0        # clean window breaks the streak
    assert ctl.observe(2000.0) == 0       # streak starts over
    assert ctl.level == 0


def test_controller_recovers_hysteretically():
    ctl = Controller(ControllerSpec(window=100.0, breach=1, recover=3),
                     slo=1000.0)
    assert ctl.observe(2000.0) == 1
    assert ctl.level == 1
    assert ctl.observe(100.0) == 0        # 1 clean
    assert ctl.observe(100.0) == 0        # 2 clean
    assert ctl.observe(100.0) == -1       # 3 clean: recover one level
    assert ctl.level == 0
    assert ctl.recoveries == 1


def test_margin_treats_near_slo_as_breach():
    """The controller regulates against margin * slo, not the SLO
    itself, so it reacts before the SLO is actually blown."""
    ctl = Controller(ControllerSpec(window=100.0, breach=1, margin=0.8),
                     slo=1000.0)
    assert ctl.observe(900.0) == 1        # above 800 = breach
    ctl2 = Controller(ControllerSpec(window=100.0, breach=1, margin=0.8),
                      slo=1000.0)
    assert ctl2.observe(700.0) == 0


def test_empty_window_breaches_only_while_degraded():
    """No completions at level 0 means idle (clean); at level > 0 it
    means the system is so degraded nothing finished — keep degrading."""
    ctl = Controller(ControllerSpec(window=100.0, breach=1, recover=2),
                     slo=1000.0)
    assert ctl.observe(None) == 0
    assert ctl.level == 0
    ctl.observe(2000.0)                   # degrade to 1
    assert ctl.observe(None) == 1         # empty while degraded: worse
    assert ctl.level == 2


def test_level_is_capped_and_peak_is_tracked():
    ctl = Controller(ControllerSpec(window=100.0, breach=1, max_level=2),
                     slo=1000.0)
    for _ in range(5):
        ctl.observe(9000.0)
    assert ctl.level == 2
    assert ctl.peak_level == 2


# ---------------------------------------------------------------------------
# closed loop on the serving simulation
# ---------------------------------------------------------------------------

def overloaded(controller_spec, *, requests=400, fault_rate=0.0, seed=42):
    rate = 3 * 2 * MODEL.saturation_rate()   # far beyond capacity
    faults = WalkerFaultModel(seed=seed, rate=fault_rate,
                              walkers_per_core=2)
    resilience = ResilienceConfig(
        slo=2000.0, controller=parse_controller(controller_spec),
        faults=faults if faults.active else None,
        fallback=FALLBACK if faults.active else None)
    return run_open_loop(MODEL, rate=rate, num_requests=requests,
                         policy=FifoPolicy(), cores=2, seed=seed,
                         resilience=resilience)


def test_controller_sheds_under_overload_and_conserves():
    result = overloaded("p99:2000:1:3:shed")
    registry = StatsRegistry.from_dict(result.stats)
    assert registry.get("serve.controller.degradations").value >= 1
    assert registry.get("serve.controller.peak_level").value >= 1
    assert result.shed > 0                   # shedding was switched on
    assert result.completed + result.shed + result.expired == \
        result.requests


def test_controller_shedding_beats_no_controller_on_goodput():
    """Under sustained overload, shedding keeps the admitted traffic
    in-SLO: goodput (not throughput) is what the controller buys."""
    rate = 3 * 2 * MODEL.saturation_rate()
    plain = run_open_loop(MODEL, rate=rate, num_requests=400,
                          policy=FifoPolicy(), cores=2, seed=42,
                          resilience=ResilienceConfig(slo=2000.0))
    controlled = overloaded("p99:2000:1:3:shed")
    assert controlled.goodput > plain.goodput
    assert controlled.p99 < plain.p99


def test_controller_run_is_deterministic():
    a = overloaded("p99:2000:1:3:all", fault_rate=40.0)
    b = overloaded("p99:2000:1:3:all", fault_rate=40.0)
    assert a.latency.to_dict() == b.latency.to_dict()
    assert (a.shed, a.completed, a.makespan) == (b.shed, b.completed,
                                                 b.makespan)


def test_walker_action_repairs_dead_cores():
    """The 'walkers' action spends spare walkers on the most-degraded
    core; with faults landing early the repair must show up in the
    recovery counters and keep the run conserving."""
    result = overloaded("p99:1500:1:2:walkers", fault_rate=60.0)
    assert result.faults > 0
    assert result.completed + result.shed + result.expired == \
        result.requests
    registry = StatsRegistry.from_dict(result.stats)
    assert registry.get("serve.controller.windows").value >= 1


def test_makespan_is_last_completion_not_last_window():
    """The controller ticks on a fixed window and may outlive the
    drain; the reported makespan must still be the last completion."""
    result = overloaded("p99:100000:1:3:shed")  # windows far apart
    plain = run_open_loop(MODEL, rate=3 * 2 * MODEL.saturation_rate(),
                          num_requests=400, policy=FifoPolicy(), cores=2,
                          seed=42, resilience=ResilienceConfig(slo=2000.0))
    # One idle mega-window must not inflate the makespan.
    assert result.makespan <= plain.makespan * 1.01


def test_controller_requires_an_slo():
    with pytest.raises(ServeError):
        ResilienceConfig(controller=parse_controller("p99:1000"))
