"""Tests for the seeded walker-fault model behind the serving layer."""

import pytest

from repro.errors import ServeError
from repro.serve.faults import (CoreCapacity, WalkerFaultModel,
                                build_capacities, fault_draw)
from repro.serve.service import ServiceModel
from repro.serve.policies import FifoPolicy
from repro.serve.simulate import ResilienceConfig, run_open_loop

MODEL = ServiceModel("widx", 8, {1: 100.0, 2: 160.0, 4: 280.0})
FALLBACK = ServiceModel("host", 8, {1: 300.0, 2: 520.0, 4: 960.0})


def run(rate, *, fault_rate, walkers=2, requests=300, seed=42, **kwargs):
    faults = WalkerFaultModel(seed=seed, rate=fault_rate,
                              walkers_per_core=walkers)
    resilience = ResilienceConfig(
        slo=5000.0, faults=faults if faults.active else None,
        fallback=FALLBACK if faults.active else None)
    return run_open_loop(MODEL, rate=rate, num_requests=requests,
                         policy=FifoPolicy(), cores=2, seed=seed,
                         resilience=resilience, **kwargs)


# ---------------------------------------------------------------------------
# the seeded draw and the death schedule
# ---------------------------------------------------------------------------

def test_fault_draw_is_deterministic_and_uniform_range():
    a = fault_draw(42, "walker-death", "core0/walker0")
    b = fault_draw(42, "walker-death", "core0/walker0")
    assert a == b
    assert 0.0 <= a < 1.0
    assert fault_draw(42, "walker-death", "core0/walker1") != a
    assert fault_draw(43, "walker-death", "core0/walker0") != a


def test_death_times_are_deterministic_and_sorted():
    model = WalkerFaultModel(seed=7, rate=4.0, walkers_per_core=4)
    times = model.death_times(0)
    assert times == model.death_times(0)
    assert list(times) == sorted(times)
    assert len(times) == 4
    assert all(t > 0 for t in times)
    assert model.death_times(1) != times  # per-core schedules differ


def test_death_times_scale_exactly_as_one_over_rate():
    """Shared draws: raising the rate compresses the *same* schedule,
    which is the mechanism behind goodput degradation being monotone."""
    slow = WalkerFaultModel(seed=7, rate=2.0, walkers_per_core=3)
    fast = WalkerFaultModel(seed=7, rate=8.0, walkers_per_core=3)
    for a, b in zip(slow.death_times(0), fast.death_times(0)):
        assert b == pytest.approx(a / 4.0, rel=1e-12)


def test_zero_rate_is_inactive_with_an_empty_schedule():
    model = WalkerFaultModel(seed=7, rate=0.0, walkers_per_core=4)
    assert not model.active
    assert model.death_times(0) == ()


def test_fault_model_validation():
    with pytest.raises(ServeError):
        WalkerFaultModel(seed=1, rate=-1.0, walkers_per_core=2)
    with pytest.raises(ServeError):
        WalkerFaultModel(seed=1, rate=float("nan"), walkers_per_core=2)
    with pytest.raises(ServeError):
        WalkerFaultModel(seed=1, rate=1.0, walkers_per_core=-1)


# ---------------------------------------------------------------------------
# CoreCapacity: the time-varying service curve
# ---------------------------------------------------------------------------

def test_capacity_degrades_stepwise_with_each_death():
    cap = CoreCapacity((100.0, 200.0), 2, MODEL, FALLBACK)
    clean = cap.cycles_for(1, 50.0)
    assert clean == MODEL.cycles_for(1)
    half = cap.cycles_for(1, 150.0)       # one of two walkers dead: 2x
    assert half == pytest.approx(2.0 * clean)
    dead = cap.cycles_for(1, 250.0)       # all dead: host fallback
    assert dead == FALLBACK.cycles_for(1)
    assert cap.dead(50.0) == 0
    assert cap.dead(100.0) == 1           # deaths take effect at the instant
    assert cap.dead(250.0) == 2
    assert cap.faults_by(150.0) == 1
    assert cap.faults_by(1e9) == 2


def test_capacity_next_death_is_strictly_after():
    cap = CoreCapacity((100.0, 200.0), 2, MODEL, FALLBACK)
    assert cap.next_death_after(0.0) == 100.0
    assert cap.next_death_after(100.0) == 200.0
    assert cap.next_death_after(200.0) is None


def test_repair_restores_one_walker():
    cap = CoreCapacity((100.0, 200.0), 2, MODEL, FALLBACK)
    assert cap.dead(300.0) == 2
    assert cap.repair(300.0)
    assert cap.dead(300.0) == 1
    assert cap.cycles_for(1, 300.0) == pytest.approx(
        2.0 * MODEL.cycles_for(1))
    assert cap.repair(300.0)
    assert cap.dead(300.0) == 0
    assert not cap.repair(300.0)          # nothing left to repair


def test_capacity_requires_a_fallback_when_walkers_can_all_die():
    with pytest.raises(ServeError):
        CoreCapacity((100.0,), 2, MODEL, None)


def test_build_capacities_inactive_model_yields_static_cores():
    caps = build_capacities(None, 3, MODEL, None)
    assert len(caps) == 3
    assert all(cap.deaths == () for cap in caps)
    assert all(cap.cycles_for(1, 1e9) == MODEL.cycles_for(1)
               for cap in caps)


# ---------------------------------------------------------------------------
# ResilienceConfig validation
# ---------------------------------------------------------------------------

def test_resilience_config_validation():
    with pytest.raises(ServeError):
        ResilienceConfig(slo=0.0)
    active = WalkerFaultModel(seed=1, rate=4.0, walkers_per_core=2)
    with pytest.raises(ServeError):
        ResilienceConfig(faults=active)   # active faults need a fallback
    # An inactive fault model needs nothing.
    idle = WalkerFaultModel(seed=1, rate=0.0, walkers_per_core=2)
    assert not ResilienceConfig(faults=idle).active
    assert ResilienceConfig(slo=100.0).active


# ---------------------------------------------------------------------------
# end-to-end: faults degrade the serving run without breaking it
# ---------------------------------------------------------------------------

def test_fault_rate_zero_matches_fault_free_run_bit_identical():
    clean = run(10.0, fault_rate=0.0)
    zero = run(10.0, fault_rate=0.0)
    assert clean.latency.to_dict() == zero.latency.to_dict()
    assert clean.faults == 0


def test_faults_land_degrade_latency_and_conserve():
    # Rate chosen so deaths land inside this run's ~30k-cycle makespan.
    clean = run(10.0, fault_rate=0.0, requests=400)
    faulty = run(10.0, fault_rate=40.0, requests=400)
    assert faulty.faults > 0
    assert faulty.completed + faulty.shed + faulty.expired == 400
    assert faulty.p99 > clean.p99
    assert faulty.goodput < clean.goodput
    assert faulty.makespan > clean.makespan


def test_fault_run_is_deterministic():
    a = run(10.0, fault_rate=40.0, requests=400)
    b = run(10.0, fault_rate=40.0, requests=400)
    assert a.latency.to_dict() == b.latency.to_dict()
    assert (a.faults, a.completed, a.makespan) == (b.faults, b.completed,
                                                   b.makespan)


def test_all_walkers_dead_still_serves_via_fallback():
    """A rate high enough to kill every walker almost immediately must
    not deadlock or lose requests — the cores limp on the host model."""
    result = run(5.0, fault_rate=1e6, requests=100)
    assert result.faults == 2 * 2              # every walker on both cores
    assert result.completed + result.shed + result.expired == 100
    assert result.completed > 0
