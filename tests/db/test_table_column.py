"""Tests for tables, columns and data types."""

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import PlanError
from repro.mem.layout import AddressSpace


class TestDataType:
    def test_widths(self):
        assert DataType.U32.nbytes == 4
        assert DataType.U64.nbytes == 8

    def test_for_key_bytes(self):
        assert DataType.for_key_bytes(4) is DataType.U32
        assert DataType.for_key_bytes(8) is DataType.U64
        with pytest.raises(ValueError):
            DataType.for_key_bytes(2)

    def test_max_values(self):
        assert DataType.U32.max_value == 2**32 - 1
        assert DataType.U64.max_value == 2**64 - 1


class TestColumn:
    def test_materialize_writes_values(self):
        space = AddressSpace()
        column = Column("k", DataType.U32, [10, 20, 30])
        region = column.materialize(space)
        assert space.memory.read_u32(region.base) == 10
        assert space.memory.read_u32(region.base + 8) == 30

    def test_address_of(self):
        space = AddressSpace()
        column = Column("k", DataType.U64, [1, 2, 3])
        column.materialize(space)
        assert column.address_of(2) == column.region.base + 16
        with pytest.raises(IndexError):
            column.address_of(3)

    def test_keys_pack_densely(self):
        space = AddressSpace()
        column = Column("k", DataType.U32, list(range(16)))
        column.materialize(space)
        addresses = list(column.iter_addresses())
        # Sixteen 4-byte keys fit exactly one 64 B block.
        assert addresses[-1] - addresses[0] == 60

    def test_unmaterialized_region_raises(self):
        column = Column("k", DataType.U32, [1])
        with pytest.raises(RuntimeError):
            _ = column.region

    def test_double_materialize_is_idempotent(self):
        space = AddressSpace()
        column = Column("k", DataType.U32, [1])
        first = column.materialize(space)
        second = column.materialize(space)
        assert first == second


class TestTable:
    def test_columns_must_match_length(self):
        table = Table("t", [Column("a", DataType.U32, [1, 2])])
        with pytest.raises(PlanError):
            table.add_column(Column("b", DataType.U32, [1]))

    def test_duplicate_column_rejected(self):
        table = Table("t", [Column("a", DataType.U32, [1])])
        with pytest.raises(PlanError):
            table.add_column(Column("a", DataType.U32, [2]))

    def test_unknown_column_error_lists_available(self):
        table = Table("t", [Column("a", DataType.U32, [1])])
        with pytest.raises(PlanError, match="available"):
            table.column("zz")

    def test_select_filters_rows(self):
        table = Table("t", [Column("a", DataType.U32, [1, 2, 3, 4])])
        picked = table.select(np.array([True, False, True, False]))
        assert picked.column("a").values.tolist() == [1, 3]

    def test_from_arrays_infers_types(self):
        table = Table.from_arrays(
            "t", small=np.array([1], dtype=np.uint32),
            big=np.array([1], dtype=np.uint64))
        assert table.column("small").dtype is DataType.U32
        assert table.column("big").dtype is DataType.U64

    def test_row_and_column_counts(self):
        table = Table("t", [Column("a", DataType.U32, [1, 2, 3]),
                            Column("b", DataType.U32, [4, 5, 6])])
        assert table.num_rows == 3
        assert table.num_columns == 2
        assert table.column_names == ["a", "b"]

    def test_empty_table(self):
        assert Table("empty").num_rows == 0


class TestCrossSpaceMaterialization:
    """Regression: a column materialized in one space must not leak its
    region into another space's simulation (addresses would be garbage)."""

    def test_second_space_materialization_rejected(self):
        space_a, space_b = AddressSpace(), AddressSpace()
        column = Column("k", DataType.U32, [1, 2, 3])
        column.materialize(space_a)
        with pytest.raises(RuntimeError, match="different address space"):
            column.materialize(space_b)

    def test_detached_copy_can_move_spaces(self):
        space_a, space_b = AddressSpace(), AddressSpace()
        column = Column("k", DataType.U32, [9, 8])
        column.materialize(space_a)
        copy = column.detached_copy()
        region = copy.materialize(space_b)
        assert space_b.memory.read_u32(region.base) == 9

    def test_hash_join_copies_foreign_probe_column(self):
        from repro.db.datagen import build_pair_tables
        from repro.db.operators.hashjoin import hash_join
        build, probe = build_pair_tables(200, 100, seed=44)
        executor_space = AddressSpace()
        probe.column("age").materialize(executor_space)
        join_space = AddressSpace()
        result = hash_join(join_space, build, probe, "age", "age",
                           indirect=True)
        assert result.probe_keys.space is join_space
        # And the offload over that join result validates end-to-end.
        from repro.widx.offload import offload_probe
        outcome = offload_probe(result.index, result.probe_keys, probes=50)
        assert outcome.validated is True
