"""Tests for the Wormhole-style hash-accelerated ordered index."""

import pytest

from repro.db.btree import FANOUT, KEY_PAD
from repro.db.datagen import make_rng, unique_keys
from repro.db.trie import MAX_DEPTH, probe_value
from repro.db.wormhole import WormholeIndex
from repro.errors import PlanError
from repro.mem.layout import AddressSpace


def make_wormhole(space, n=400, seed=3):
    keys = unique_keys(n, 4, make_rng(seed)).tolist()
    payloads = list(range(1, n + 1))
    index = WormholeIndex(space, keys, payloads)
    return index, sorted(keys), dict(zip(keys, payloads))


class TestConstruction:
    def test_every_key_searchable(self, space):
        index, _keys, truth = make_wormhole(space)
        for key, payload in truth.items():
            assert index.search(key) == payload

    def test_missing_keys_return_none(self, space):
        index, keys, _truth = make_wormhole(space)
        assert index.search(keys[-1] + 1) is None

    def test_single_key_index(self, space):
        index = WormholeIndex(space, [42], [7])
        assert index.search(42) == 7
        assert index.search(43) is None
        assert index.stats().leaves == 1

    def test_leaf_count_matches_btree_packing(self, space):
        index, _keys, _truth = make_wormhole(space, n=401)
        assert index.stats().leaves == (401 + FANOUT - 1) // FANOUT

    def test_duplicate_keys_rejected(self, space):
        with pytest.raises(PlanError):
            WormholeIndex(space, [1, 1, 2], [1, 2, 3])

    def test_empty_rejected(self, space):
        with pytest.raises(PlanError):
            WormholeIndex(space, [], [])

    def test_pad_value_keys_rejected(self, space):
        with pytest.raises(PlanError):
            WormholeIndex(space, [KEY_PAD], [1])


class TestMetaTrieHash:
    def test_every_anchor_prefix_is_present(self, space):
        """Prefix-closure: the meta table answers every (anchor, depth)
        probe, which is what makes the binary search sound."""
        index, _keys, _truth = make_wormhole(space, n=200)
        for anchor in index._anchors:
            for depth in range(1, MAX_DEPTH + 1):
                assert index.meta_lookup(probe_value(anchor, depth)) \
                    is not None

    def test_meta_entry_count_matches_distinct_prefixes(self, space):
        index, _keys, _truth = make_wormhole(space, n=200)
        distinct = {probe_value(anchor, depth)
                    for anchor in index._anchors
                    for depth in range(1, MAX_DEPTH + 1)}
        assert index.stats().meta_entries == len(distinct)

    def test_leaf_lo_is_a_valid_predecessor(self, space):
        """Every meta entry's leaf_lo lands at or before the first leaf
        whose anchor carries that prefix — the walk only moves forward."""
        index, _keys, _truth = make_wormhole(space, n=300)
        base = index.leaves.base
        for position, anchor in enumerate(index._anchors):
            for depth in range(1, MAX_DEPTH + 1):
                leaf_lo = index.meta_lookup(probe_value(anchor, depth))
                assert (leaf_lo - base) // 64 <= position

    def test_absent_prefix_returns_none(self, space):
        index = WormholeIndex(space, [0x10000000], [1])
        assert index.meta_lookup(probe_value(0x20000000, 1)) is None


class TestLocateLeaf:
    def test_locates_the_true_leaf_for_every_key(self, space):
        index, keys, _truth = make_wormhole(space, n=200)
        base = index.leaves.base
        for position, key in enumerate(keys):
            leaf, _probed = index.locate_leaf(key)
            assert (leaf - base) // 64 == position // FANOUT

    def test_binary_search_probes_at_most_log_depths(self, space):
        index, keys, _truth = make_wormhole(space, n=200)
        for key in keys[:50]:
            _leaf, probed = index.locate_leaf(key)
            assert len(probed) <= MAX_DEPTH.bit_length() + 1
            assert probed == sorted(set(probed), key=probed.index)

    def test_key_below_all_anchors_lands_on_first_leaf(self, space):
        index, keys, _truth = make_wormhole(space, n=100)
        if keys[0] > 0:
            leaf, _probed = index.locate_leaf(keys[0] - 1)
            assert leaf == index.first_leaf


class TestOrderedSemantics:
    def test_leaf_chain_is_sorted_and_complete(self, space):
        index, keys, truth = make_wormhole(space, n=250)
        items = list(index.items())
        assert [k for k, _ in items] == keys
        assert all(truth[k] == p for k, p in items)

    def test_range_scan_equals_sorted_filter(self, space):
        index, keys, truth = make_wormhole(space, n=250)
        low, high = keys[40], keys[120]
        assert index.range_scan(low, high) \
            == [(k, truth[k]) for k in keys[40:121]]

    def test_range_scan_spanning_leaf_boundary(self, space):
        index, keys, _truth = make_wormhole(space, n=100)
        low, high = keys[FANOUT - 1], keys[FANOUT]
        scan = index.range_scan(low, high)
        assert [k for k, _ in scan] == [low, high]

    def test_inverted_range_is_empty(self, space):
        index, _keys, _truth = make_wormhole(space, n=50)
        assert index.range_scan(10, 5) == []

    def test_agrees_with_an_independent_build_order(self, space):
        """Loading the same pairs in a different order builds the same
        logical index (layout is a function of the sorted key set)."""
        keys = unique_keys(64, 4, make_rng(9)).tolist()
        payloads = list(range(64))
        forward = WormholeIndex(space, keys, payloads, name="fwd")
        other_space = AddressSpace()
        backward = WormholeIndex(other_space, keys[::-1], payloads[::-1],
                                 name="bwd")
        assert list(forward.items()) == list(backward.items())
