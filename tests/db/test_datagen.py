"""Tests for workload data generation."""

import numpy as np
import pytest

from repro.db.datagen import (build_pair_tables, make_rng, probe_keys,
                              unique_keys, zipf_keys)


def test_unique_keys_are_unique():
    keys = unique_keys(5000, 4, make_rng(1))
    assert len(np.unique(keys)) == 5000


def test_unique_keys_avoid_zero_and_sentinel():
    keys = unique_keys(1000, 4, make_rng(2))
    assert keys.min() >= 1
    assert keys.max() < 0xFFFF_FFFF


def test_unique_keys_dtype_matches_width():
    assert unique_keys(10, 4, make_rng(3)).dtype == np.uint32
    assert unique_keys(10, 8, make_rng(3)).dtype == np.uint64


def test_probe_keys_full_match():
    build = unique_keys(100, 4, make_rng(4))
    probes = probe_keys(build, 1000, 1.0, 4, make_rng(5))
    assert set(probes.tolist()) <= set(build.tolist())


def test_probe_keys_partial_match_rate():
    build = unique_keys(500, 4, make_rng(6))
    probes = probe_keys(build, 20_000, 0.7, 4, make_rng(7))
    hits = np.isin(probes, build).mean()
    assert 0.65 < hits < 0.75


def test_probe_keys_zero_match():
    build = unique_keys(100, 4, make_rng(8))
    probes = probe_keys(build, 1000, 0.0, 4, make_rng(9))
    assert not np.isin(probes, build).any()


def test_probe_keys_validates_fraction():
    build = unique_keys(10, 4, make_rng(10))
    with pytest.raises(ValueError):
        probe_keys(build, 10, 1.5, 4, make_rng(11))


def test_zipf_skew_concentrates_mass():
    uniform = zipf_keys(20_000, 1000, 0.0, make_rng(12))
    skewed = zipf_keys(20_000, 1000, 1.2, make_rng(13))
    top_uniform = (uniform == np.bincount(uniform).argmax()).mean()
    top_skewed = (skewed == np.bincount(skewed).argmax()).mean()
    assert top_skewed > 5 * top_uniform


def test_zipf_range():
    keys = zipf_keys(1000, 50, 0.9, make_rng(14))
    assert keys.min() >= 1 and keys.max() <= 50


def test_zipf_validates_cardinality():
    with pytest.raises(ValueError):
        zipf_keys(10, 0, 1.0, make_rng(15))


def test_build_pair_tables_shape():
    build, probe = build_pair_tables(200, 600, key_bytes=8, seed=16)
    assert build.num_rows == 200
    assert probe.num_rows == 600
    assert build.column("age").dtype.nbytes == 8
    assert build.has_column("id")


def test_determinism_by_seed():
    a1, _ = build_pair_tables(100, 100, seed=17)
    a2, _ = build_pair_tables(100, 100, seed=17)
    assert (a1.column("age").values == a2.column("age").values).all()
