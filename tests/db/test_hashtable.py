"""Tests for the simulated-memory hash index."""

import pytest

from repro.db.hashfn import ROBUST_HASH_32
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT, WIDE_LAYOUT
from repro.errors import PlanError
from repro.mem.layout import AddressSpace
from tests.conftest import build_direct_index, build_indirect_index


class TestChooseNumBuckets:
    def test_power_of_two(self):
        for n in (1, 5, 1000, 4096):
            buckets = choose_num_buckets(n)
            assert buckets & (buckets - 1) == 0

    def test_respects_target_depth(self):
        assert choose_num_buckets(1024, 1.0) == 1024
        assert choose_num_buckets(1024, 2.0) == 512
        assert choose_num_buckets(1024, 4.0) == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_num_buckets(0)
        with pytest.raises(ValueError):
            choose_num_buckets(10, 0)


class TestDirectIndex:
    def test_every_inserted_key_is_found(self, space):
        index, keys, truth = build_direct_index(space, num_keys=1500)
        for key, payload in truth.items():
            assert index.probe(key) == [payload]

    def test_missing_keys_return_empty(self, space):
        index, keys, truth = build_direct_index(space, num_keys=500)
        absent = max(truth) + 1000
        assert index.probe(absent) == []

    def test_duplicate_keys_return_all_payloads(self, space):
        index = HashIndex(space, KERNEL_LAYOUT, 64, ROBUST_HASH_32,
                          capacity=10)
        index.insert(42, 1)
        index.insert(42, 2)
        index.insert(42, 3)
        assert sorted(index.probe(42)) == [1, 2, 3]

    def test_sentinel_key_rejected(self, space):
        index = HashIndex(space, KERNEL_LAYOUT, 64, ROBUST_HASH_32,
                          capacity=4)
        with pytest.raises(ValueError):
            index.insert(KERNEL_LAYOUT.empty_sentinel, 1)

    def test_capacity_exhaustion_detected(self, space):
        index = HashIndex(space, KERNEL_LAYOUT, 2, ROBUST_HASH_32, capacity=2)
        # Force three entries into two buckets: at most 1 can overflow.
        index.insert(1, 1)
        index.insert(2, 2)
        index.insert(3, 3)
        with pytest.raises(PlanError):
            for key in range(4, 20):
                index.insert(key, key)

    def test_stats_consistency(self, space):
        index, keys, truth = build_direct_index(space, num_keys=1000,
                                                nodes_per_bucket=2.0)
        stats = index.stats()
        assert stats.num_keys == 1000
        assert stats.used_buckets <= stats.num_buckets
        assert stats.overflow_nodes == 1000 - stats.used_buckets
        assert stats.max_chain >= 1
        assert stats.nodes_per_used_bucket >= 1.0

    def test_walk_chain_order_starts_at_header(self, space):
        index, keys, truth = build_direct_index(space, num_keys=200)
        key = int(keys[0])
        chain = list(index.walk_chain(key))
        assert chain[0] == index.bucket_addr(index.bucket_of_key(key))

    def test_probe_count_nodes_matches_chain(self, space):
        index, keys, truth = build_direct_index(space, num_keys=300)
        key = int(keys[5])
        _, visited = index.probe_count_nodes(key)
        assert visited == len(list(index.walk_chain(key)))

    def test_footprint_grows_with_overflow(self, space):
        index = HashIndex(space, KERNEL_LAYOUT, 64, ROBUST_HASH_32,
                          capacity=64)
        before = index.footprint_bytes
        index.insert(1, 1)
        index.insert(1 + 64 * 7, 2)  # likely different bucket; header only
        index.insert(1, 3)           # duplicate -> overflow node
        assert index.footprint_bytes > before

    def test_wide_layout_roundtrip(self, space):
        index = HashIndex(space, WIDE_LAYOUT, 128, ROBUST_HASH_32,
                          capacity=16)
        big_key = (1 << 40) + 7
        big_payload = (1 << 50) + 3
        index.insert(big_key, big_payload)
        assert index.probe(big_key) == [big_payload]

    def test_build_bulk(self, space):
        index = HashIndex(space, KERNEL_LAYOUT, 256, ROBUST_HASH_32,
                          capacity=100)
        index.build(range(1, 101), range(101, 201))
        assert index.num_keys == 100
        assert index.probe(50) == [150]

    def test_build_length_mismatch(self, space):
        index = HashIndex(space, KERNEL_LAYOUT, 64, ROBUST_HASH_32,
                          capacity=10)
        with pytest.raises(ValueError):
            index.build([1, 2], [1])


class TestIndirectIndex:
    def test_probe_returns_row_ids(self, space):
        index, keys, truth = build_indirect_index(space, num_keys=800)
        for key, row in list(truth.items())[:100]:
            assert index.probe(key) == [row]

    def test_key_loaded_from_base_column(self, space):
        index, keys, truth = build_indirect_index(space, num_keys=100)
        key = int(keys[3])
        chain = list(index.walk_chain(key))
        matching = [n for n in chain if index.node_key(n) == key]
        assert matching, "probe key must be found via the base column"

    def test_insert_validates_row_contents(self, space):
        index, keys, truth = build_indirect_index(space, num_keys=50)
        with pytest.raises(PlanError):
            index.insert(123456, 0)  # row 0 does not hold key 123456

    def test_requires_base_column(self, space):
        from repro.db.node import MONETDB_LAYOUT
        with pytest.raises(PlanError):
            HashIndex(space, MONETDB_LAYOUT, 64, ROBUST_HASH_32, capacity=8)

    def test_misses_return_empty(self, space):
        index, keys, truth = build_indirect_index(space, num_keys=200)
        assert index.probe(max(truth) + 999) == []


def test_bucket_count_must_be_power_of_two(space):
    with pytest.raises(ValueError):
        HashIndex(space, KERNEL_LAYOUT, 100, ROBUST_HASH_32, capacity=10)


def test_empty_bucket_chain_is_empty(space):
    index = HashIndex(space, KERNEL_LAYOUT, 64, ROBUST_HASH_32, capacity=4)
    index.insert(7, 1)
    empty_buckets = [b for b in range(64)
                     if b != index.bucket_of_key(7)]
    assert index.chain_length(empty_buckets[0]) == 0
