"""Tests for the shift-add hash function library."""

import pytest

from repro.db.hashfn import (ALL_HASHES, HashSpec, HashStep, KERNEL_HASH,
                             MASK64, ROBUST_HASH_32, ROBUST_HASH_64,
                             kernel_hash)


def test_kernel_hash_matches_listing1():
    # ((X) & MASK) ^ HPRIME with the default 24-bit mask.
    key = 0x12345678
    assert KERNEL_HASH(key) == (key & 0xFFFFFF) ^ 0xB16


def test_kernel_hash_mask_width_parametric():
    h = kernel_hash(16)
    assert h(0xABCDEF) == (0xABCDEF & 0xFFFF) ^ 0xB16


def test_kernel_hash_rejects_bad_width():
    with pytest.raises(ValueError):
        kernel_hash(0)
    with pytest.raises(ValueError):
        kernel_hash(64)


def test_hashes_are_deterministic():
    for spec in ALL_HASHES.values():
        assert spec(123456789) == spec(123456789)


def test_hashes_stay_in_64_bits():
    for spec in ALL_HASHES.values():
        assert 0 <= spec(MASK64) <= MASK64
        assert 0 <= spec(0) <= MASK64


def test_robust_hash_spreads_sequential_keys():
    buckets = 1 << 12
    slots = {ROBUST_HASH_32.bucket_of(key, buckets) for key in range(1000)}
    # Sequential keys should scatter widely (far better than trivial).
    assert len(slots) > 800


def test_robust64_differs_from_robust32():
    assert ROBUST_HASH_64(99999) != ROBUST_HASH_32(99999)


def test_bucket_of_requires_power_of_two():
    with pytest.raises(ValueError):
        KERNEL_HASH.bucket_of(1, 100)


def test_bucket_of_in_range():
    for key in (0, 1, 17, 2**31, 2**63):
        assert 0 <= ROBUST_HASH_64.bucket_of(key, 256) < 256


def test_compute_cycles_counts_steps():
    assert KERNEL_HASH.compute_cycles == 2
    assert ROBUST_HASH_32.compute_cycles == 6
    assert ROBUST_HASH_64.compute_cycles == 9


def test_step_validation():
    with pytest.raises(ValueError):
        HashStep("xor_shl", amount=0)
    with pytest.raises(ValueError):
        HashStep("and_const", const=0)
    with pytest.raises(ValueError):
        HashStep("bogus")


def test_empty_spec_rejected():
    with pytest.raises(ValueError):
        HashSpec("empty", ())


def test_step_semantics():
    assert HashStep("xor_shl", amount=4).apply(1) == 1 ^ (1 << 4)
    assert HashStep("xor_shr", amount=4).apply(0x100) == 0x100 ^ 0x10
    assert HashStep("add_shl", amount=1).apply(3) == 9
    assert HashStep("and_const", const=0xF).apply(0x1234) == 4
    assert HashStep("xor_const", const=0xFF).apply(0xF0) == 0x0F
    assert HashStep("add_const", const=5).apply(MASK64) == 4  # wraps
    assert HashStep("shr", amount=8).apply(0x1234) == 0x12
    assert HashStep("shl", amount=8).apply(0x12) == 0x1200
