"""Tests for grouped aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.column import Column
from repro.db.operators.groupby import group_by, group_by_reference
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import PlanError


def sample_table():
    return Table("t", [
        Column("g", DataType.U32, [2, 1, 2, 3, 1, 2]),
        Column("v", DataType.U32, [10, 20, 30, 40, 50, 60]),
    ])


def test_groups_sorted_by_key():
    out = group_by(sample_table(), "g", {"n": "count:*"})
    assert out.column("g").values.tolist() == [1, 2, 3]
    assert out.column("n").values.tolist() == [2, 3, 1]


def test_sum_min_max_mean():
    out = group_by(sample_table(), "g", {
        "total": "sum:v", "lo": "min:v", "hi": "max:v", "avg": "mean:v"})
    assert out.column("total").values.tolist() == [70, 100, 40]
    assert out.column("lo").values.tolist() == [20, 10, 40]
    assert out.column("hi").values.tolist() == [50, 60, 40]
    assert out.column("avg").values.tolist() == [35, 33, 40]


def test_single_group():
    table = Table("t", [Column("g", DataType.U32, [7, 7]),
                        Column("v", DataType.U32, [1, 2])])
    out = group_by(table, "g", {"s": "sum:v"})
    assert out.num_rows == 1
    assert out.column("s").values.tolist() == [3]


def test_empty_table_rejected():
    table = Table("t", [Column("g", DataType.U32, [])])
    with pytest.raises(PlanError):
        group_by(table, "g", {"n": "count:*"})


def test_bad_specs_rejected():
    with pytest.raises(PlanError):
        group_by(sample_table(), "g", {"x": "median:v"})
    with pytest.raises(PlanError):
        group_by(sample_table(), "g", {"x": "nocolon"})


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 1000)),
                     min_size=1, max_size=200))
def test_matches_dict_reference(rows):
    table = Table("t", [
        Column("g", DataType.U32, np.array([g for g, _ in rows],
                                           dtype=np.uint32)),
        Column("v", DataType.U32, np.array([v for _, v in rows],
                                           dtype=np.uint32)),
    ])
    aggregates = {"n": "count:*", "s": "sum:v", "lo": "min:v",
                  "hi": "max:v", "avg": "mean:v"}
    out = group_by(table, "g", aggregates)
    reference = group_by_reference(table, "g", aggregates)
    assert out.num_rows == len(reference)
    for row_index, record in enumerate(reference):
        assert int(out.column("g").values[row_index]) == record["g"]
        for name in aggregates:
            assert int(out.column(name).values[row_index]) == record[name], \
                (name, record)
