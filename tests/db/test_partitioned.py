"""Tests for the partitioned hash join."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.datagen import build_pair_tables
from repro.db.operators.hashjoin import reference_join
from repro.db.operators.partitioned import (partitioned_hash_join,
                                            partitioning_cycles)
from repro.errors import PlanError
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_probe


@pytest.fixture(scope="module")
def tables():
    return build_pair_tables(4_000, 10_000, match_fraction=0.8, seed=55)


class TestCorrectness:
    @pytest.mark.parametrize("bits", [1, 3, 5])
    def test_matches_reference_at_every_partition_count(self, tables, bits):
        build, probe = tables
        result = partitioned_hash_join(AddressSpace(), build, probe,
                                       "age", "age", payload_column="id",
                                       partition_bits=bits)
        assert result.pairs == reference_join(build, probe, "age", "age",
                                              "id")

    def test_partition_count(self, tables):
        build, probe = tables
        result = partitioned_hash_join(AddressSpace(), build, probe,
                                       "age", "age", partition_bits=4)
        assert result.num_partitions == 16
        assert len(result.partitions) + result.skipped_empty <= 16

    def test_partitions_are_disjoint_and_complete(self, tables):
        build, probe = tables
        result = partitioned_hash_join(AddressSpace(), build, probe,
                                       "age", "age", partition_bits=3)
        assert sum(p.build_rows for p in result.partitions) \
            == build.num_rows
        covered = sum(len(p.probe_rows) for p in result.partitions)
        assert covered <= probe.num_rows  # rows in empty partitions skipped

    def test_partition_footprints_shrink(self, tables):
        build, probe = tables
        coarse = partitioned_hash_join(AddressSpace(), build, probe,
                                       "age", "age", partition_bits=1)
        fine = partitioned_hash_join(AddressSpace(), build, probe,
                                     "age", "age", partition_bits=5)
        assert fine.max_partition_footprint() \
            < coarse.max_partition_footprint()

    def test_bits_validated(self, tables):
        build, probe = tables
        with pytest.raises(PlanError):
            partitioned_hash_join(AddressSpace(), build, probe, "age",
                                  "age", partition_bits=0)


class TestCostModel:
    def test_partitioning_cost_linear_in_rows(self):
        assert partitioning_cycles(20_000, 8) \
            == pytest.approx(2 * partitioning_cycles(10_000, 8))

    def test_cost_positive(self):
        assert partitioning_cycles(1, 4) > 0


class TestWidxOnPartitions:
    def test_widx_probes_each_partition(self, tables):
        """Paper §7: Widx 'is equally applicable to hash join algorithms
        that employ data partitioning' — each partition's index is just a
        hash index the walkers traverse."""
        build, probe = tables
        result = partitioned_hash_join(AddressSpace(), build, probe,
                                       "age", "age", payload_column="id",
                                       partition_bits=2)
        total_matches = 0
        for partition in result.partitions:
            outcome = offload_probe(partition.index, partition.probe_keys,
                                    config=DEFAULT_CONFIG)
            assert outcome.validated is True
            total_matches += outcome.matches
        assert total_matches == result.matches
