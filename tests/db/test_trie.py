"""Tests for the Cuckoo-Trie-style MLP-friendly hashed trie."""

import pytest

from repro.db.trie import (BUCKET_BYTES, KEY_LIMIT, MAX_DEPTH,
                           SLOTS_PER_BUCKET, MlpTrie, probe_value,
                           tag_value, _shared_nibbles, _terminal_depths)
from repro.db.datagen import make_rng, unique_keys
from repro.errors import PlanError
from repro.mem.physmem import NULL_PTR


def make_trie(space, n=400, seed=3):
    keys = unique_keys(n, 4, make_rng(seed)).tolist()
    payloads = list(range(1, n + 1))
    trie = MlpTrie(space, keys, payloads)
    return trie, sorted(keys), dict(zip(keys, payloads))


class TestProbeValues:
    def test_probe_value_prefixes_nest(self):
        key = 0xDEADBEEF
        for depth in range(1, MAX_DEPTH):
            shallow = probe_value(key, depth) - (1 << (32 + depth))
            deeper = probe_value(key, depth + 1) - (1 << (33 + depth))
            assert deeper >> 4 == shallow

    def test_probe_values_distinct_across_depths(self):
        """The depth tag keeps an all-zero prefix at depth d distinct
        from one at depth d+1 — aliasing here would merge trie levels."""
        values = {probe_value(0, d) for d in range(1, MAX_DEPTH + 1)}
        assert len(values) == MAX_DEPTH

    def test_tag_value_recovers_key(self):
        for depth in (1, 4, 8):
            assert tag_value(0xCAFE, depth) & 0xFFFFFFFF == 0xCAFE


class TestTerminalDepths:
    def test_distinct_prefixes_terminate_at_depth_one(self):
        assert _terminal_depths([0x10000000, 0x20000000, 0x30000000]) \
            == [1, 1, 1]

    def test_shared_prefixes_push_terminals_deeper(self):
        # 0x1234ABCD and 0x1234ABCE share 7 nibbles -> both at depth 8.
        depths = _terminal_depths([0x1234ABCD, 0x1234ABCE])
        assert depths == [8, 8]

    def test_depth_capped_at_max(self):
        assert all(d <= MAX_DEPTH
                   for d in _terminal_depths([1, 2, 3, 4]))

    def test_shared_nibbles(self):
        assert _shared_nibbles(0x12345678, 0x12345679) == 7
        assert _shared_nibbles(0x10000000, 0x20000000) == 0
        assert _shared_nibbles(5, 5) == MAX_DEPTH


class TestConstruction:
    def test_every_key_searchable(self, space):
        trie, _keys, truth = make_trie(space)
        for key, payload in truth.items():
            assert trie.search(key) == payload

    def test_missing_keys_return_none(self, space):
        trie, keys, truth = make_trie(space)
        assert trie.search(keys[-1] + 1) is None

    def test_single_key_trie(self, space):
        trie = MlpTrie(space, [42], [7])
        assert trie.search(42) == 7
        assert trie.search(41) is None
        assert trie.stats().max_depth == 1

    def test_buckets_are_cache_block_sized_and_power_of_two(self, space):
        trie, _keys, _truth = make_trie(space, n=300)
        assert trie.num_buckets & (trie.num_buckets - 1) == 0
        assert trie.buckets.size == trie.num_buckets * BUCKET_BYTES

    def test_stats_shape(self, space):
        trie, keys, _truth = make_trie(space, n=300)
        stats = trie.stats()
        assert stats.num_keys == 300
        assert 1 <= stats.mean_depth <= stats.max_depth <= MAX_DEPTH

    def test_footprint_covers_buckets_and_overflow(self, space):
        trie, _keys, _truth = make_trie(space, n=300)
        expected = trie.buckets.size
        if trie.overflow is not None:
            expected += trie.overflow.size
        assert trie.footprint_bytes == expected

    def test_duplicate_keys_rejected(self, space):
        with pytest.raises(PlanError):
            MlpTrie(space, [1, 1, 2], [1, 2, 3])

    def test_empty_rejected(self, space):
        with pytest.raises(PlanError):
            MlpTrie(space, [], [])

    def test_out_of_range_keys_rejected(self, space):
        with pytest.raises(PlanError):
            MlpTrie(space, [KEY_LIMIT], [1])
        with pytest.raises(PlanError):
            MlpTrie(space, [-1], [1])

    def test_mismatched_lengths_rejected(self, space):
        with pytest.raises(PlanError):
            MlpTrie(space, [1, 2], [1])


class TestBucketLayout:
    def test_search_reads_only_precomputable_buckets(self, space):
        """Every terminal is found in a bucket whose address is a pure
        function of (key, depth) — the MLP contract."""
        trie, keys, truth = make_trie(space, n=200)
        for key in keys[:50]:
            found = False
            for depth in range(1, MAX_DEPTH + 1):
                expect = tag_value(key, depth)
                for block in trie.chain_blocks(trie.bucket_addr(key, depth)):
                    for index in range(SLOTS_PER_BUCKET):
                        slot = block + 16 + index * 24
                        if trie.slot_tag(slot) == expect:
                            assert trie.slot_payload(slot) == truth[key]
                            found = True
            assert found

    def test_overflow_chains_terminate(self, space):
        trie, _keys, _truth = make_trie(space, n=500)
        for index in range(trie.num_buckets):
            bucket = trie.buckets.base + index * BUCKET_BYTES
            blocks = list(trie.chain_blocks(bucket))
            assert len(blocks) == len(set(blocks))  # no cycles


class TestOrderedSemantics:
    def test_terminal_chain_is_sorted_and_complete(self, space):
        trie, keys, truth = make_trie(space, n=250)
        items = list(trie.items())
        assert [k for k, _ in items] == keys
        assert all(truth[k] == p for k, p in items)

    def test_search_start_finds_first_at_or_above(self, space):
        trie, keys, _truth = make_trie(space, n=100)
        slot = trie.search_start(keys[10])
        assert trie.slot_tag(slot) & 0xFFFFFFFF == keys[10]
        slot = trie.search_start(keys[10] + 1)
        assert trie.slot_tag(slot) & 0xFFFFFFFF == keys[11]
        assert trie.search_start(keys[-1] + 1) == NULL_PTR

    def test_range_scan_equals_sorted_filter(self, space):
        trie, keys, truth = make_trie(space, n=250)
        low, high = keys[40], keys[120]
        assert trie.range_scan(low, high) \
            == [(k, truth[k]) for k in keys[40:121]]

    def test_inverted_range_is_empty(self, space):
        trie, _keys, _truth = make_trie(space, n=50)
        assert trie.range_scan(10, 5) == []
