"""Tests for the physical operators."""

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.datagen import build_pair_tables
from repro.db.operators.aggregate import aggregate_table
from repro.db.operators.hashjoin import hash_join, reference_join
from repro.db.operators.scan import Predicate, apply_predicate
from repro.db.operators.sort import sort_table
from repro.db.operators.sortmerge import sort_merge_cycles, sort_merge_join
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import PlanError
from repro.mem.layout import AddressSpace


def small_table():
    return Table("t", [
        Column("a", DataType.U32, [5, 1, 9, 3]),
        Column("b", DataType.U32, [10, 20, 30, 40]),
    ])


class TestScan:
    def test_each_operator(self):
        table = small_table()
        cases = {"<": [1, 3], "<=": [5, 1, 3], ">": [9], ">=": [5, 9],
                 "==": [5], "!=": [1, 9, 3]}
        for op, expected in cases.items():
            result = apply_predicate(table, Predicate("a", op, 5))
            assert result.column("a").values.tolist() == expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Predicate("a", "~", 5)

    def test_selection_keeps_all_columns_aligned(self):
        result = apply_predicate(small_table(), Predicate("a", ">", 2))
        assert result.column("b").values.tolist() == [10, 30, 40]


class TestHashJoin:
    def test_matches_reference_join(self):
        build, probe = build_pair_tables(800, 2400, match_fraction=0.75,
                                         seed=5)
        result = hash_join(AddressSpace(), build, probe, "age", "age",
                           payload_column="id")
        got = sorted(zip(result.table.column("probe_row").values.tolist(),
                         result.table.column("payload").values.tolist()))
        assert got == reference_join(build, probe, "age", "age", "id")

    def test_match_rate_tracks_fraction(self):
        build, probe = build_pair_tables(500, 4000, match_fraction=0.5,
                                         seed=6)
        result = hash_join(AddressSpace(), build, probe, "age", "age")
        assert 0.4 < result.match_rate < 0.6

    def test_indirect_join_equivalent_to_direct(self):
        build, probe = build_pair_tables(600, 1200, seed=7)
        space_a, space_b = AddressSpace(), AddressSpace()
        direct = hash_join(space_a, build, probe, "age", "age")
        indirect = hash_join(space_b, build, probe, "age", "age",
                             indirect=True)
        as_pairs = lambda r: sorted(zip(
            r.table.column("probe_row").values.tolist(),
            r.table.column("payload").values.tolist()))
        assert as_pairs(direct) == as_pairs(indirect)

    def test_nodes_visited_counted(self):
        build, probe = build_pair_tables(300, 900, seed=8)
        result = hash_join(AddressSpace(), build, probe, "age", "age")
        assert result.nodes_visited >= result.matches

    def test_duplicate_build_keys_emit_cross_product(self):
        build = Table("b", [Column("k", DataType.U32, [7, 7, 8]),
                            Column("id", DataType.U32, [1, 2, 3])])
        probe = Table("p", [Column("k", DataType.U32, [7])])
        result = hash_join(AddressSpace(), build, probe, "k", "k",
                           payload_column="id")
        assert sorted(result.table.column("payload").values.tolist()) == [1, 2]


class TestSortMerge:
    def test_agrees_with_hash_join(self):
        build, probe = build_pair_tables(400, 1600, match_fraction=0.6,
                                         seed=9)
        smj = sort_merge_join(build, probe, "age", "age", "id")
        ref = reference_join(build, probe, "age", "age", "id")
        assert smj == ref

    def test_handles_duplicates_on_both_sides(self):
        build = Table("b", [Column("k", DataType.U32, [5, 5]),
                            Column("id", DataType.U32, [1, 2])])
        probe = Table("p", [Column("k", DataType.U32, [5, 5, 6])])
        pairs = sort_merge_join(build, probe, "k", "k", "id")
        assert pairs == [(0, 1), (0, 2), (1, 1), (1, 2)]

    def test_cost_model_nlogn_shape(self):
        small = sort_merge_cycles(1000, 1000)
        big = sort_merge_cycles(4000, 4000)
        assert big > 4 * small  # superlinear


class TestSortAggregate:
    def test_sort_ascending_descending(self):
        table = small_table()
        asc = sort_table(table, "a")
        assert asc.column("a").values.tolist() == [1, 3, 5, 9]
        assert asc.column("b").values.tolist() == [20, 40, 10, 30]
        desc = sort_table(table, "a", descending=True)
        assert desc.column("a").values.tolist() == [9, 5, 3, 1]

    def test_aggregates(self):
        table = small_table()
        out = aggregate_table(table, {"s": "sum:a", "m": "max:b",
                                      "n": "count:*", "lo": "min:a",
                                      "avg": "mean:a"})
        assert out == {"s": 18.0, "m": 40.0, "n": 4.0, "lo": 1.0,
                       "avg": 4.5}

    def test_aggregate_empty_table(self):
        table = Table("e", [Column("a", DataType.U32, [])])
        assert aggregate_table(table, {"s": "sum:a"}) == {"s": 0.0}

    def test_bad_aggregate_specs(self):
        table = small_table()
        with pytest.raises(PlanError):
            aggregate_table(table, {"x": "nope:a"})
        with pytest.raises(PlanError):
            aggregate_table(table, {"x": "malformed"})
