"""Tests for query plans and the executor's cycle attribution."""

import pytest

from repro.db.datagen import build_pair_tables
from repro.db.executor import (CATEGORIES, QueryExecutor,
                               analytic_probe_cycles)
from repro.db.operators.scan import Predicate
from repro.db.plan import (AggregateNode, HashJoinNode, ScanNode, SortNode)
from repro.errors import PlanError
from tests.conftest import build_direct_index
from repro.mem.layout import AddressSpace


@pytest.fixture
def catalog():
    build, probe = build_pair_tables(600, 1800, match_fraction=0.8, seed=3)
    return {"A": build, "B": probe}


def join_plan():
    return HashJoinNode(ScanNode("A"), ScanNode("B"), "age", "age",
                        payload_column="id")


class TestExecutor:
    def test_scan_only_charges_scan(self, catalog):
        executor = QueryExecutor(catalog)
        profile = executor.execute(ScanNode("A"), "scan-only")
        assert profile.cycles["scan"] > 0
        assert profile.cycles["index"] == 0

    def test_join_charges_index_and_sortjoin(self, catalog):
        executor = QueryExecutor(catalog)
        profile = executor.execute(join_plan(), "join")
        assert profile.cycles["index"] > 0
        assert profile.cycles["sortjoin"] > 0
        assert profile.probe_tuples == 1800

    def test_full_plan_covers_all_categories(self, catalog):
        executor = QueryExecutor(catalog)
        plan = AggregateNode(SortNode(join_plan(), "payload"),
                             {"n": "count:*"})
        profile = executor.execute(plan, "full", other_overhead_fraction=0.1)
        for category in CATEGORIES:
            assert profile.cycles[category] > 0, category
        assert abs(sum(profile.breakdown().values()) - 1.0) < 1e-9

    def test_join_result_is_correct(self, catalog):
        executor = QueryExecutor(catalog)
        profile, result = executor.execute_with_result(join_plan(), "join")
        from repro.db.operators.hashjoin import reference_join
        ref = reference_join(catalog["A"], catalog["B"], "age", "age", "id")
        got = sorted(zip(result.column("probe_row").values.tolist(),
                         result.column("payload").values.tolist()))
        assert got == ref

    def test_predicate_scan_feeds_join(self, catalog):
        executor = QueryExecutor(catalog)
        plan = HashJoinNode(ScanNode("A", Predicate("age", ">", 0)),
                            ScanNode("B"), "age", "age")
        profile = executor.execute(plan, "filtered")
        assert profile.result_rows > 0

    def test_unknown_table_rejected(self, catalog):
        executor = QueryExecutor(catalog)
        with pytest.raises(PlanError, match="catalog"):
            executor.execute(ScanNode("missing"), "bad")

    def test_empty_build_side_rejected(self, catalog):
        executor = QueryExecutor(catalog)
        plan = HashJoinNode(
            ScanNode("A", Predicate("age", "==", 0)),  # selects nothing
            ScanNode("B"), "age", "age")
        with pytest.raises(PlanError):
            executor.execute(plan, "empty-build")

    def test_custom_probe_timing_provider(self, catalog):
        calls = []

        def provider(index, column):
            calls.append(index.num_keys)
            return 123.0

        executor = QueryExecutor(catalog, probe_timing=provider)
        profile = executor.execute(join_plan(), "custom")
        assert calls == [600]
        assert profile.cycles["index"] == pytest.approx(123.0 * 1800)

    def test_index_fraction_property(self, catalog):
        executor = QueryExecutor(catalog)
        profile = executor.execute(join_plan(), "frac")
        assert 0 < profile.index_fraction < 1

    def test_charge_unknown_category_rejected(self, catalog):
        executor = QueryExecutor(catalog)
        profile = executor.execute(ScanNode("A"), "x")
        with pytest.raises(PlanError):
            profile.charge("bogus", 1.0)


class TestAnalyticProbeCost:
    def test_cost_grows_with_locality_class(self, space):
        small, _, _ = build_direct_index(space, num_keys=400)
        big_space = AddressSpace()
        big, _, _ = build_direct_index(big_space, num_keys=400_000)
        from repro.db.column import Column
        from repro.db.types import DataType
        col = Column("p", DataType.U32, [1])
        assert (analytic_probe_cycles(big, col)
                > analytic_probe_cycles(small, col))

    def test_plan_pretty_print(self):
        plan = AggregateNode(SortNode(join_plan(), "payload"), {})
        text = plan.pretty()
        assert "HashJoin" in text and "Scan(A)" in text
        assert text.count("\n") >= 3


class TestGroupByNode:
    def test_group_by_in_a_plan(self, catalog):
        from repro.db.plan import GroupByNode
        executor = QueryExecutor(catalog)
        plan = GroupByNode(join_plan(), "payload", {"n": "count:*"})
        profile, result = executor.execute_with_result(plan, "grouped")
        assert profile.cycles["other"] > 0
        assert result.num_rows >= 1
        assert "GroupBy" in plan.describe()

    def test_group_by_total_matches_join_size(self, catalog):
        from repro.db.plan import GroupByNode
        executor = QueryExecutor(catalog)
        join_profile, join_result = executor.execute_with_result(
            join_plan(), "plain")
        grouped_profile, grouped = QueryExecutor(catalog).execute_with_result(
            GroupByNode(join_plan(), "payload", {"n": "count:*"}), "grouped")
        assert int(grouped.column("n").values.sum()) == join_result.num_rows
