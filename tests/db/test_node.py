"""Tests for node layouts."""

import pytest

from repro.db.node import (KERNEL_LAYOUT, MONETDB_LAYOUT, NodeLayout,
                           WIDE_LAYOUT, direct_layout, monetdb_layout)


def test_kernel_layout_is_compact():
    assert KERNEL_LAYOUT.stride == 16
    assert KERNEL_LAYOUT.key_bytes == 4
    assert not KERNEL_LAYOUT.indirect
    # Four nodes per 64 B block.
    assert 64 // KERNEL_LAYOUT.stride == 4


def test_wide_layout_for_double_integers():
    assert WIDE_LAYOUT.key_bytes == 8
    assert WIDE_LAYOUT.stride == 32


def test_monetdb_layout_is_indirect():
    assert MONETDB_LAYOUT.indirect
    assert MONETDB_LAYOUT.key_slot_bytes == 8  # row ids are 8 bytes


def test_shift_matches_stride():
    for layout in (KERNEL_LAYOUT, WIDE_LAYOUT, MONETDB_LAYOUT):
        assert 1 << layout.shift == layout.stride


def test_direct_layout_selector():
    assert direct_layout(4) is KERNEL_LAYOUT
    assert direct_layout(8) is WIDE_LAYOUT
    with pytest.raises(ValueError):
        direct_layout(16)


def test_monetdb_layout_selector():
    assert monetdb_layout(4) is MONETDB_LAYOUT
    wide = monetdb_layout(8)
    assert wide.indirect and wide.key_bytes == 8


def test_stride_must_be_power_of_two():
    with pytest.raises(ValueError):
        NodeLayout("bad", stride=24, key_bytes=4, payload_bytes=4,
                   key_offset=0, payload_offset=4, next_offset=8,
                   indirect=False, empty_sentinel=0)


def test_key_width_validated():
    with pytest.raises(ValueError):
        NodeLayout("bad", stride=16, key_bytes=2, payload_bytes=4,
                   key_offset=0, payload_offset=4, next_offset=8,
                   indirect=False, empty_sentinel=0)


def test_next_pointer_alignment_validated():
    with pytest.raises(ValueError):
        NodeLayout("bad", stride=16, key_bytes=4, payload_bytes=4,
                   key_offset=0, payload_offset=4, next_offset=4,
                   indirect=False, empty_sentinel=0)


def test_describe_mentions_indirection():
    assert "indirect" in MONETDB_LAYOUT.describe()
    assert "inline" in KERNEL_LAYOUT.describe()
