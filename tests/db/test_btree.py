"""Tests for the bulk-loaded B+-tree."""

import pytest

from repro.db.btree import BPlusTree, FANOUT, KEY_PAD, NODE_BYTES
from repro.db.datagen import make_rng, unique_keys
from repro.errors import PlanError
from repro.mem.layout import AddressSpace


def make_tree(space, n=500, seed=3):
    keys = unique_keys(n, 4, make_rng(seed)).tolist()
    payloads = list(range(1, n + 1))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(sorted(keys),
                     [p for _, p in sorted(zip(keys, payloads))]))
    return tree, sorted(keys), truth


class TestConstruction:
    def test_every_key_searchable(self, space):
        tree, keys, truth = make_tree(space)
        for key in keys:
            assert tree.search(key) == truth[key]

    def test_missing_keys_return_none(self, space):
        tree, keys, truth = make_tree(space)
        assert tree.search(keys[-1] + 1) is None
        assert tree.search(1 if 1 not in truth else 0) in (None,)

    def test_height_is_logarithmic(self, space):
        small, _, _ = make_tree(space, n=4)
        assert small.stats().height == 1
        big_space = AddressSpace()
        big, _, _ = make_tree(big_space, n=4000)
        # fanout-4 leaves, fanout-5 internals: height ~ log5(n/4) + 1
        assert 4 <= big.stats().height <= 7

    def test_leaf_count(self, space):
        tree, keys, truth = make_tree(space, n=500)
        expected = (500 + FANOUT - 1) // FANOUT
        assert tree.stats().leaves == expected

    def test_single_key_tree(self, space):
        tree = BPlusTree(space, [42], [7])
        assert tree.search(42) == 7
        assert tree.search(41) is None
        assert tree.stats().height == 1

    def test_footprint_is_node_aligned(self, space):
        tree, keys, truth = make_tree(space, n=100)
        assert tree.footprint_bytes % NODE_BYTES == 0
        assert tree.footprint_bytes == tree.stats().total_nodes * NODE_BYTES

    def test_duplicate_keys_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [1, 1, 2], [1, 2, 3])

    def test_empty_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [], [])

    def test_pad_value_keys_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [KEY_PAD], [1])

    def test_mismatched_lengths_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [1, 2], [1])


class TestRangeScan:
    def test_full_range_returns_sorted_keys(self, space):
        tree, keys, truth = make_tree(space, n=300)
        scan = tree.range_scan(0, KEY_PAD - 1)
        assert [k for k, _ in scan] == keys
        assert all(truth[k] == p for k, p in scan)

    def test_partial_range(self, space):
        tree, keys, truth = make_tree(space, n=300)
        low, high = keys[50], keys[90]
        scan = tree.range_scan(low, high)
        assert [k for k, _ in scan] == keys[50:91]

    def test_empty_range(self, space):
        tree, keys, truth = make_tree(space, n=50)
        assert tree.range_scan(10, 5) == []

    def test_range_outside_keys(self, space):
        tree, keys, truth = make_tree(space, n=50)
        assert tree.range_scan(keys[-1] + 1, keys[-1] + 100) == []

    def test_single_key_range(self, space):
        tree, keys, truth = make_tree(space, n=100)
        key = keys[10]
        assert tree.range_scan(key, key) == [(key, truth[key])]


class TestDescent:
    def test_path_length_equals_height(self, space):
        tree, keys, truth = make_tree(space, n=600)
        for key in keys[:20]:
            path = list(tree.descend_path(key))
            assert len(path) == tree.stats().height
            assert path[0] == tree.root
            assert tree.node_is_leaf(path[-1])

    def test_nodes_fit_one_cache_block(self, space):
        tree, keys, truth = make_tree(space, n=100)
        assert NODE_BYTES == 64
        for node in tree.descend_path(keys[0]):
            assert node % 64 == 0
