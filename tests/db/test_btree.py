"""Tests for the bulk-loaded B+-tree."""

import pytest

from repro.db.btree import (BPlusTree, FANOUT, KEY_PAD, NODE_BYTES,
                            batched_search)
from repro.db.datagen import make_rng, unique_keys
from repro.errors import PlanError
from repro.mem.layout import AddressSpace


def make_tree(space, n=500, seed=3):
    keys = unique_keys(n, 4, make_rng(seed)).tolist()
    payloads = list(range(1, n + 1))
    tree = BPlusTree(space, keys, payloads)
    truth = dict(zip(sorted(keys),
                     [p for _, p in sorted(zip(keys, payloads))]))
    return tree, sorted(keys), truth


class TestConstruction:
    def test_every_key_searchable(self, space):
        tree, keys, truth = make_tree(space)
        for key in keys:
            assert tree.search(key) == truth[key]

    def test_missing_keys_return_none(self, space):
        tree, keys, truth = make_tree(space)
        assert tree.search(keys[-1] + 1) is None
        assert tree.search(1 if 1 not in truth else 0) in (None,)

    def test_height_is_logarithmic(self, space):
        small, _, _ = make_tree(space, n=4)
        assert small.stats().height == 1
        big_space = AddressSpace()
        big, _, _ = make_tree(big_space, n=4000)
        # fanout-4 leaves, fanout-5 internals: height ~ log5(n/4) + 1
        assert 4 <= big.stats().height <= 7

    def test_leaf_count(self, space):
        tree, keys, truth = make_tree(space, n=500)
        expected = (500 + FANOUT - 1) // FANOUT
        assert tree.stats().leaves == expected

    def test_single_key_tree(self, space):
        tree = BPlusTree(space, [42], [7])
        assert tree.search(42) == 7
        assert tree.search(41) is None
        assert tree.stats().height == 1

    def test_footprint_is_node_aligned(self, space):
        tree, keys, truth = make_tree(space, n=100)
        assert tree.footprint_bytes % NODE_BYTES == 0
        assert tree.footprint_bytes == tree.stats().total_nodes * NODE_BYTES

    def test_duplicate_keys_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [1, 1, 2], [1, 2, 3])

    def test_empty_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [], [])

    def test_pad_value_keys_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [KEY_PAD], [1])

    def test_mismatched_lengths_rejected(self, space):
        with pytest.raises(PlanError):
            BPlusTree(space, [1, 2], [1])


class TestRangeScan:
    def test_full_range_returns_sorted_keys(self, space):
        tree, keys, truth = make_tree(space, n=300)
        scan = tree.range_scan(0, KEY_PAD - 1)
        assert [k for k, _ in scan] == keys
        assert all(truth[k] == p for k, p in scan)

    def test_partial_range(self, space):
        tree, keys, truth = make_tree(space, n=300)
        low, high = keys[50], keys[90]
        scan = tree.range_scan(low, high)
        assert [k for k, _ in scan] == keys[50:91]

    def test_empty_range(self, space):
        tree, keys, truth = make_tree(space, n=50)
        assert tree.range_scan(10, 5) == []

    def test_range_outside_keys(self, space):
        tree, keys, truth = make_tree(space, n=50)
        assert tree.range_scan(keys[-1] + 1, keys[-1] + 100) == []

    def test_single_key_range(self, space):
        tree, keys, truth = make_tree(space, n=100)
        key = keys[10]
        assert tree.range_scan(key, key) == [(key, truth[key])]


class TestRangeScanEdgeCases:
    """Regression coverage surfaced while building the batched traversal:
    the original suite only scanned multi-level trees with interior
    bounds, leaving the degenerate shapes (single leaf, padded tail) and
    the leaf-boundary crossings — exactly the places the level-wise
    walker shares node fetches — unpinned."""

    def test_empty_tree_cannot_exist_to_be_scanned(self, space):
        """The scan-an-empty-tree edge is excluded by construction: bulk
        load rejects the empty key set, so every scannable tree has at
        least one leaf and ``range_scan`` never sees a NULL root."""
        with pytest.raises(PlanError, match="empty"):
            BPlusTree(space, [], [])

    def test_single_leaf_full_range(self, space):
        tree = BPlusTree(space, [10, 20, 30], [1, 2, 3])
        assert tree.stats().leaves == 1
        assert tree.range_scan(0, KEY_PAD - 1) == [(10, 1), (20, 2), (30, 3)]

    def test_single_leaf_interior_and_empty_windows(self, space):
        tree = BPlusTree(space, [10, 20, 30], [1, 2, 3])
        assert tree.range_scan(15, 25) == [(20, 2)]
        assert tree.range_scan(11, 19) == []
        assert tree.range_scan(31, 99) == []

    def test_single_leaf_padded_slots_never_leak(self, space):
        """A partial leaf pads unused slots with KEY_PAD; a scan whose
        high bound sorts above every real key must stop at the padding,
        not emit it."""
        tree = BPlusTree(space, [5], [9])
        scan = tree.range_scan(0, KEY_PAD - 1)
        assert scan == [(5, 9)]
        assert all(k != KEY_PAD for k, _ in scan)

    def test_scan_spanning_one_leaf_boundary(self, space):
        """Bounds that straddle exactly one leaf seam: the scan must
        follow the next-leaf pointer mid-range."""
        keys = list(range(10, 10 + 10 * FANOUT * 2, 10))
        tree = BPlusTree(space, keys, list(range(len(keys))))
        low, high = keys[FANOUT - 1], keys[FANOUT]  # last of leaf 0, first of leaf 1
        assert tree.range_scan(low, high) == [(low, FANOUT - 1),
                                              (high, FANOUT)]

    def test_scan_spanning_many_leaves(self, space):
        keys = list(range(10, 10 + 10 * FANOUT * 5, 10))
        tree = BPlusTree(space, keys, list(range(len(keys))))
        low, high = keys[1], keys[-2]
        scan = tree.range_scan(low, high)
        assert [k for k, _ in scan] == keys[1:-1]

    def test_scan_starting_in_the_gap_between_leaves(self, space):
        """A low bound strictly between the last key of one leaf and the
        first of the next descends into the earlier leaf; the scan must
        skip past it without emitting anything below the bound."""
        keys = list(range(10, 10 + 10 * FANOUT * 3, 10))
        tree = BPlusTree(space, keys, list(range(len(keys))))
        low = keys[FANOUT - 1] + 1  # in the seam
        scan = tree.range_scan(low, keys[-1])
        assert [k for k, _ in scan] == keys[FANOUT:]

    def test_scan_into_the_padded_tail_leaf(self, space):
        """A key count that is not a multiple of FANOUT leaves the last
        leaf partial; a scan running past the last key must stop at its
        padding after crossing into it."""
        count = FANOUT * 2 + 1  # last leaf holds a single key
        keys = list(range(10, 10 + 10 * count, 10))
        tree = BPlusTree(space, keys, list(range(count)))
        scan = tree.range_scan(keys[-2], KEY_PAD - 1)
        assert [k for k, _ in scan] == keys[-2:]


class TestBatchedSearchEdgeCases:
    """The batched traversal's own degenerate shapes."""

    def test_empty_batch_returns_empty(self, space):
        tree, _keys, _truth = make_tree(space, n=20)
        assert batched_search(tree, []) == []

    def test_single_leaf_tree_batch(self, space):
        tree = BPlusTree(space, [10, 20, 30], [1, 2, 3])
        visits = []
        assert batched_search(tree, [30, 10, 99], visit_log=visits) \
            == [3, 1, None]
        assert visits == [tree.root]  # one node, fetched once

    def test_batch_of_identical_keys_shares_the_whole_path(self, space):
        tree, keys, truth = make_tree(space, n=200)
        probe = keys[17]
        visits = []
        results = batched_search(tree, [probe] * 8, visit_log=visits)
        assert results == [truth[probe]] * 8
        assert len(visits) == tree.stats().height  # one fetch per level


class TestDescent:
    def test_path_length_equals_height(self, space):
        tree, keys, truth = make_tree(space, n=600)
        for key in keys[:20]:
            path = list(tree.descend_path(key))
            assert len(path) == tree.stats().height
            assert path[0] == tree.root
            assert tree.node_is_leaf(path[-1])

    def test_nodes_fit_one_cache_block(self, space):
        tree, keys, truth = make_tree(space, n=100)
        assert NODE_BYTES == 64
        for node in tree.descend_path(keys[0]):
            assert node % 64 == 0
