"""Tests for index construction helpers and the operator cost models."""

import pytest

from repro.db.build import build_index, default_hash_for
from repro.db.cost import CostModel, DEFAULT_COST_MODEL
from repro.db.datagen import build_pair_tables
from repro.db.hashfn import ROBUST_HASH_32, ROBUST_HASH_64
from repro.mem.layout import AddressSpace


class TestBuildIndex:
    def test_direct_index_probes_back(self):
        build, _ = build_pair_tables(300, 10, seed=1)
        space = AddressSpace()
        index = build_index(space, build, "age", "id")
        keys = build.column("age").values
        ids = build.column("id").values
        assert index.probe(int(keys[7])) == [int(ids[7])]

    def test_default_payload_is_row_id(self):
        build, _ = build_pair_tables(100, 10, seed=2)
        index = build_index(AddressSpace(), build, "age")
        key = int(build.column("age").values[42])
        assert index.probe(key) == [42]

    def test_indirect_index_materializes_base_column(self):
        build, _ = build_pair_tables(150, 10, seed=3)
        space = AddressSpace()
        index = build_index(space, build, "age", indirect=True)
        assert index.key_column is not None
        assert index.key_column.is_materialized
        key = int(build.column("age").values[3])
        assert index.probe(key) == [3]

    def test_hash_defaults_by_width(self):
        assert default_hash_for(4) is ROBUST_HASH_32
        assert default_hash_for(8) is ROBUST_HASH_64

    def test_wide_keys_get_wide_layout(self):
        build, _ = build_pair_tables(80, 10, key_bytes=8, seed=4)
        index = build_index(AddressSpace(), build, "age")
        assert index.layout.key_bytes == 8

    def test_target_nodes_per_bucket_respected(self):
        build, _ = build_pair_tables(1024, 10, seed=5)
        shallow = build_index(AddressSpace(), build, "age",
                              target_nodes_per_bucket=1.0)
        deep = build_index(AddressSpace(), build, "age",
                           target_nodes_per_bucket=4.0)
        assert deep.num_buckets < shallow.num_buckets

    def test_empty_table_rejected(self):
        from repro.db.table import Table
        from repro.db.column import Column
        from repro.db.types import DataType
        table = Table("e", [Column("k", DataType.U32, [])])
        with pytest.raises(ValueError):
            build_index(AddressSpace(), table, "k")


class TestCostModel:
    def test_scan_cost_scales_with_rows_and_width(self):
        cost = DEFAULT_COST_MODEL
        assert cost.scan_cycles(2000, 8) > cost.scan_cycles(1000, 8)
        assert cost.scan_cycles(1000, 64) > cost.scan_cycles(1000, 8)

    def test_wide_scans_become_bandwidth_bound(self):
        cost = DEFAULT_COST_MODEL
        narrow = cost.scan_cycles(10_000, 4) / 10_000
        wide = cost.scan_cycles(10_000, 256) / 10_000
        assert wide > narrow * 5

    def test_sort_is_superlinear(self):
        cost = DEFAULT_COST_MODEL
        assert cost.sort_cycles(4000) > 4 * cost.sort_cycles(1000)

    def test_sort_of_trivial_inputs(self):
        assert DEFAULT_COST_MODEL.sort_cycles(0) == 0
        assert DEFAULT_COST_MODEL.sort_cycles(1) == 1

    def test_bytes_per_cycle_from_config(self):
        cost = CostModel()
        # 2 MCs x 12.8 GB/s x 0.7 eff / 2 GHz = 8.96 B/cycle.
        assert cost.bytes_per_cycle == pytest.approx(8.96)

    def test_linear_models(self):
        cost = DEFAULT_COST_MODEL
        assert cost.build_cycles(100) == 100 * cost.build_cycles_per_row
        assert cost.aggregate_cycles(10) == 10 * cost.aggregate_cycles_per_row
        assert cost.materialize_cycles(10) == 10 * cost.materialize_cycles_per_row
