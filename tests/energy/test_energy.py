"""Tests for the area/power/energy models against Section 6.3 anchors."""

import pytest

from repro.config import WidxConfig
from repro.energy.metrics import energy_report
from repro.energy.power import POWER_CONSTANTS, PowerModel


@pytest.fixture
def model():
    return PowerModel()


class TestArea:
    def test_six_unit_complex_matches_paper(self, model):
        """Paper: 6 units occupy 0.24 mm² and draw 320 mW."""
        widx = WidxConfig(num_walkers=4, mode="shared")
        area = model.widx_area(widx)
        assert area.widx_units == 6
        assert area.widx_area_mm2 == pytest.approx(0.234, abs=0.01)
        assert model.widx_power(widx) == pytest.approx(0.318, abs=0.01)

    def test_fraction_of_a8_about_18_percent(self, model):
        widx = WidxConfig(num_walkers=4)
        assert model.widx_area(widx).fraction_of_a8 == pytest.approx(
            0.18, abs=0.02)

    def test_single_unit_constants(self):
        assert POWER_CONSTANTS.widx_unit_area_mm2 == 0.039
        assert POWER_CONSTANTS.widx_unit_power_w == 0.053

    def test_area_scales_with_organization(self, model):
        shared = model.widx_area(WidxConfig(num_walkers=4, mode="shared"))
        private = model.widx_area(WidxConfig(num_walkers=4, mode="private"))
        assert private.widx_area_mm2 > shared.widx_area_mm2


class TestPower:
    def test_widx_design_far_below_ooo(self, model):
        assert model.design_power("widx") < 0.6 * model.design_power("ooo")

    def test_inorder_is_a8(self, model):
        assert model.design_power("inorder") == POWER_CONSTANTS.a8_power_w

    def test_widx_includes_idle_host(self, model):
        widx_power = model.design_power("widx")
        assert widx_power > POWER_CONSTANTS.ooo_idle_power_w

    def test_unknown_design_rejected(self, model):
        with pytest.raises(ValueError):
            model.design_power("tpu")

    def test_energy_proportional_to_runtime(self, model):
        one = model.energy("ooo", 1e9)
        two = model.energy("ooo", 2e9)
        assert two == pytest.approx(2 * one)


class TestFigure11:
    def paper_runtimes(self):
        """The paper's measured ratios: in-order 2.2x slower, Widx 3.1x
        faster than the OoO baseline."""
        return {"ooo": 100.0, "inorder": 220.0, "widx": 100.0 / 3.1}

    def test_paper_anchor_widx_saves_83_percent(self):
        report = energy_report(self.paper_runtimes())
        assert report.widx_energy_saving == pytest.approx(0.83, abs=0.02)

    def test_paper_anchor_inorder_saves_86_percent(self):
        report = energy_report(self.paper_runtimes())
        assert report.inorder_energy_saving == pytest.approx(0.86, abs=0.02)

    def test_paper_anchor_edp_gains(self):
        report = energy_report(self.paper_runtimes())
        assert report.widx_edp_gain_vs_ooo == pytest.approx(17.5, rel=0.10)
        assert report.widx_edp_gain_vs_inorder == pytest.approx(5.5, rel=0.10)

    def test_normalization(self):
        report = energy_report(self.paper_runtimes())
        assert report["ooo"].runtime == 1.0
        assert report["ooo"].energy == 1.0
        assert report["ooo"].edp == 1.0

    def test_edp_is_product(self):
        report = energy_report(self.paper_runtimes())
        for design in ("ooo", "inorder", "widx"):
            point = report[design]
            assert point.edp == pytest.approx(point.runtime * point.energy)

    def test_missing_design_rejected(self):
        with pytest.raises(ValueError):
            energy_report({"ooo": 1.0, "widx": 0.3})

    def test_widx_power_scales_with_walkers(self):
        few = energy_report(self.paper_runtimes(),
                            widx=WidxConfig(num_walkers=1))
        many = energy_report(self.paper_runtimes(),
                             widx=WidxConfig(num_walkers=4))
        assert few["widx"].energy < many["widx"].energy
