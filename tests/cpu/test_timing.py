"""Tests for the indexing-throughput measurement harness."""

import pytest

from repro.cpu.timing import measure_indexing, warm_hash_index
from repro.config import DEFAULT_CONFIG
from repro.mem.hierarchy import MemoryHierarchy
from tests.conftest import (build_direct_index, build_indirect_index,
                            materialized_probe_column)


@pytest.fixture
def workload(space):
    index, keys, truth = build_direct_index(space, num_keys=3000)
    column = materialized_probe_column(space, keys, count=900)
    return index, column


def test_measures_positive_throughput(workload):
    index, column = workload
    result = measure_indexing(index, column, core="ooo",
                              warmup_probes=200, measure_probes=700)
    assert result.cycles_per_tuple > 0
    assert result.tuples == 700
    assert result.total_cycles > 0


def test_confidence_interval_reported(workload):
    index, column = workload
    result = measure_indexing(index, column, core="ooo",
                              warmup_probes=200, measure_probes=700,
                              batch_size=50)
    assert result.ci_half_width >= 0
    assert result.relative_error < 0.5


def test_inorder_slower_than_ooo(workload):
    index, column = workload
    ooo = measure_indexing(index, column, core="ooo",
                           warmup_probes=200, measure_probes=700)
    ino = measure_indexing(index, column, core="inorder",
                           warmup_probes=200, measure_probes=700)
    assert ino.cycles_per_tuple > ooo.cycles_per_tuple


def test_unknown_core_rejected(workload):
    index, column = workload
    with pytest.raises(ValueError, match="core model"):
        measure_indexing(index, column, core="vliw")


def test_needs_enough_probes(workload):
    index, column = workload
    with pytest.raises(ValueError):
        measure_indexing(index, column, warmup_probes=900,
                         measure_probes=0)


def test_warming_reduces_measured_cost(workload):
    index, column = workload
    warm = measure_indexing(index, column, warmup_probes=100,
                            measure_probes=700, warm_index=True)
    cold = measure_indexing(index, column, warmup_probes=100,
                            measure_probes=700, warm_index=False)
    assert warm.cycles_per_tuple <= cold.cycles_per_tuple


def test_warm_hash_index_covers_base_column(space):
    index, keys, truth = build_indirect_index(space, num_keys=500)
    memory = MemoryHierarchy(DEFAULT_CONFIG)
    warm_hash_index(memory, index)
    region = index.key_column.region
    result = memory.load(region.base, 0.0)
    assert result.level in ("L1", "LLC")


def test_miss_ratios_reported(workload):
    index, column = workload
    result = measure_indexing(index, column, warmup_probes=200,
                              measure_probes=700)
    assert 0 <= result.l1_miss_ratio <= 1
    assert 0 <= result.llc_miss_ratio <= 1
