"""Tests for the probe-trace generator."""

import pytest

from repro.cpu.trace import HOST_OPS_PER_HASH_STEP, ProbeTraceGenerator
from repro.cpu.uops import UopKind
from tests.conftest import (build_direct_index, build_indirect_index,
                            materialized_probe_column)


def make_generator(space, indirect=False, **probe_kwargs):
    if indirect:
        index, keys, truth = build_indirect_index(space)
    else:
        index, keys, truth = build_direct_index(space)
    column = materialized_probe_column(space, keys, **probe_kwargs)
    return index, column, ProbeTraceGenerator(index, column)


def test_trace_has_key_load_first(space):
    index, column, generator = make_generator(space)
    uops = generator.probe_uops(0, 0)
    assert uops[0].kind is UopKind.LOAD
    assert uops[0].addr == column.address_of(0)


def test_hash_chain_is_serial(space):
    index, column, generator = make_generator(space)
    uops = generator.probe_uops(0, 0)
    steps = index.hash_spec.compute_cycles * HOST_OPS_PER_HASH_STEP
    hash_uops = uops[1:1 + steps]
    assert all(u.kind is UopKind.ALU for u in hash_uops)
    for i, uop in enumerate(hash_uops):
        assert uop.deps == (i,), "each hash op depends on its predecessor"


def test_node_loads_use_real_addresses(space):
    index, column, generator = make_generator(space)
    key = int(column.values[0])
    chain = list(index.walk_chain(key))
    uops = generator.probe_uops(0, 0)
    load_addrs = {u.addr for u in uops if u.kind is UopKind.LOAD}
    for node in chain:
        assert node + index.layout.key_offset in load_addrs
        assert node + index.layout.next_offset in load_addrs


def test_pointer_chase_is_dependent(space):
    index, column, generator = make_generator(space)
    # Find a probe whose chain has >= 2 nodes.
    for row in range(len(column.values)):
        key = int(column.values[row])
        chain = list(index.walk_chain(key))
        if len(chain) >= 2:
            break
    else:
        pytest.skip("no multi-node chain in sample")
    uops = generator.probe_uops(row, 0)
    next_loads = [i for i, u in enumerate(uops)
                  if u.kind is UopKind.LOAD
                  and any(u.addr == n + index.layout.next_offset
                          for n in chain)]
    # The second node's loads must depend on the first next-pointer load.
    second_node_key_load = [
        i for i, u in enumerate(uops)
        if u.kind is UopKind.LOAD
        and u.addr == chain[1] + index.layout.key_offset][0]
    assert next_loads[0] in uops[second_node_key_load].deps


def test_indirect_trace_has_base_column_load(space):
    index, column, generator = make_generator(space, indirect=True)
    row = 0
    key = int(column.values[row])
    uops = generator.probe_uops(row, 0)
    base = index.key_column.region
    base_loads = [u for u in uops if u.kind is UopKind.LOAD
                  and base.base <= u.addr < base.end]
    assert base_loads, "indirect probes must read the base column"


def test_indirect_trace_is_longer_than_direct(space):
    from repro.mem.layout import AddressSpace
    other = AddressSpace()
    index_d, column_d, gen_d = make_generator(space)
    index_i, column_i, gen_i = make_generator(other, indirect=True)
    direct_len = len(gen_d.probe_uops(0, 0))
    indirect_len = len(gen_i.probe_uops(0, 0))
    assert indirect_len > direct_len  # extra address calc + key load


def test_stream_keeps_dependencies_in_stream_space(space):
    index, column, generator = make_generator(space, count=20)
    position = 0
    for uops in generator.stream(range(20)):
        for offset, uop in enumerate(uops):
            for dep in uop.deps:
                assert dep < position + offset, "dep must point backwards"
        position += len(uops)


def test_mispredict_marks_only_chain_exits(space):
    index, column, generator = make_generator(space, count=50)
    for uops in generator.stream(range(50)):
        mispredicted = [u for u in uops if u.mispredict]
        assert all(u.kind is UopKind.BRANCH for u in mispredicted)
        assert len(mispredicted) <= 1  # at most the exit branch per probe


def test_mispredicts_can_be_disabled(space):
    index, keys, truth = build_direct_index(space)
    column = materialized_probe_column(space, keys, count=50)
    generator = ProbeTraceGenerator(index, column, model_mispredicts=False)
    for uops in generator.stream(range(50)):
        assert not any(u.mispredict for u in uops)


def test_unmaterialized_probe_column_rejected(space):
    from repro.db.column import Column
    from repro.db.types import DataType
    index, keys, truth = build_direct_index(space)
    loose = Column("loose", DataType.U32, [1, 2, 3])
    with pytest.raises(ValueError):
        ProbeTraceGenerator(index, loose)


def test_empty_bucket_probe_still_reads_header(space):
    index, keys, truth = build_direct_index(space, num_keys=100)
    column = materialized_probe_column(space, keys, count=30,
                                       match_fraction=0.0)
    generator = ProbeTraceGenerator(index, column)
    for row in range(30):
        uops = generator.probe_uops(row, 0)
        loads = [u for u in uops if u.kind is UopKind.LOAD]
        assert len(loads) >= 2  # key stream + at least the header
