"""Tests for the OoO and in-order core timing models."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.cpu.inorder import InOrderCore
from repro.cpu.ooo import OutOfOrderCore
from repro.cpu.uops import Uop, UopKind
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import AddressSpace


def fresh(core_kind, **kwargs):
    memory = MemoryHierarchy(DEFAULT_CONFIG)
    if core_kind == "ooo":
        return OutOfOrderCore(DEFAULT_CONFIG.ooo, memory, **kwargs), memory
    return InOrderCore(DEFAULT_CONFIG.inorder, memory, **kwargs), memory


def region_addrs(n, stride=64):
    space = AddressSpace()
    region = space.allocate("blob", n * stride + 64)
    return [region.base + i * stride for i in range(n)]


class TestOoO:
    def test_alu_throughput_is_issue_width(self):
        core, _ = fresh("ooo")
        core.execute([Uop(UopKind.ALU) for _ in range(400)])
        # 4-wide: 400 independent ALU ops take ~100 cycles.
        assert core.completion_time == pytest.approx(100, abs=5)

    def test_dependent_chain_serializes(self):
        core, _ = fresh("ooo")
        core.execute([Uop(UopKind.ALU, deps=(i - 1,) if i else ())
                      for i in range(100)])
        assert core.completion_time >= 100

    def test_independent_misses_overlap(self):
        core, memory = fresh("ooo")
        addrs = region_addrs(8)
        for a in addrs:
            memory.tlb.warm(a)
        core.execute([Uop(UopKind.LOAD, addr=a) for a in addrs])
        serial = 8 * 100
        assert core.completion_time < serial / 3

    def test_rob_limits_overlap(self):
        wide, memory_a = fresh("ooo")
        addrs = region_addrs(64)
        trace = []
        for a in addrs:
            trace.append(Uop(UopKind.LOAD, addr=a))
            trace.extend(Uop(UopKind.ALU) for _ in range(63))
        wide.execute(trace)
        # 64 uops per load and a 128-entry ROB: at most ~2 loads in flight.
        from repro.config import CoreConfig
        tiny_rob = CoreConfig(name="ooo", issue_width=4, rob_entries=16,
                              out_of_order=True)
        memory_b = MemoryHierarchy(DEFAULT_CONFIG)
        narrow = OutOfOrderCore(tiny_rob, memory_b)
        narrow.execute(trace)
        assert narrow.completion_time > wide.completion_time

    def test_mispredict_stalls_frontend(self):
        clean, _ = fresh("ooo")
        dirty, _ = fresh("ooo")
        base_trace = [Uop(UopKind.ALU) for _ in range(50)]
        clean.execute(base_trace + [Uop(UopKind.BRANCH)] + base_trace)
        dirty.execute(base_trace + [Uop(UopKind.BRANCH, mispredict=True)]
                      + base_trace)
        assert (dirty.completion_time
                >= clean.completion_time + dirty.mispredict_penalty - 1)

    def test_store_latency_hidden(self):
        core, _ = fresh("ooo")
        addr = region_addrs(1)[0]
        core.execute([Uop(UopKind.STORE, addr=addr)])
        assert core.completion_time < 10

    def test_tlb_trap_serializes(self):
        core, memory = fresh("ooo")
        addrs = region_addrs(2, stride=DEFAULT_CONFIG.tlb.page_bytes)
        core.execute([Uop(UopKind.LOAD, addr=a) for a in addrs])
        # Each TLB miss traps on the core: walk + trap handler serialize.
        assert core.tlb_stall_cycles > 0
        assert core.completion_time > 2 * DEFAULT_CONFIG.tlb.trap_cycles

    def test_rejects_inorder_config(self):
        memory = MemoryHierarchy(DEFAULT_CONFIG)
        with pytest.raises(ValueError):
            OutOfOrderCore(DEFAULT_CONFIG.inorder, memory)


class TestInOrder:
    def test_alu_throughput_is_two_wide(self):
        core, _ = fresh("inorder")
        core.execute([Uop(UopKind.ALU) for _ in range(200)])
        assert core.completion_time == pytest.approx(100, abs=5)

    def test_miss_blocks_pipeline(self):
        core, memory = fresh("inorder")
        addrs = region_addrs(4)
        for a in addrs:
            memory.tlb.warm(a)
        core.execute([Uop(UopKind.LOAD, addr=a) for a in addrs])
        # No overlap: four serial DRAM accesses.
        assert core.completion_time > 4 * 90

    def test_one_memory_op_per_cycle(self):
        core, memory = fresh("inorder")
        addr = region_addrs(1)[0]
        memory.warm_block(addr, "l1")
        core.execute([Uop(UopKind.LOAD, addr=addr) for _ in range(10)])
        assert core.completion_time >= 10  # not 5, despite 2-wide issue

    def test_rejects_ooo_config(self):
        memory = MemoryHierarchy(DEFAULT_CONFIG)
        with pytest.raises(ValueError):
            InOrderCore(DEFAULT_CONFIG.ooo, memory)

    def test_slower_than_ooo_on_independent_misses(self):
        trace_addrs = region_addrs(16)
        ooo, memory_a = fresh("ooo")
        ino, memory_b = fresh("inorder")
        for a in trace_addrs:
            memory_a.tlb.warm(a)
            memory_b.tlb.warm(a)
        trace = [Uop(UopKind.LOAD, addr=a) for a in trace_addrs]
        ooo.execute(trace)
        ino.execute(trace)
        assert ino.completion_time > 2 * ooo.completion_time


def test_uop_validation():
    with pytest.raises(ValueError):
        Uop(UopKind.LOAD, addr=0)
    with pytest.raises(ValueError):
        Uop(UopKind.ALU, latency=0)
