"""Unit tests for the bank-side (PIM) walker backend's building blocks.

Covers the layers the differential wall composes: :class:`PimConfig`
validation, the per-bank port model (:class:`DramBankPorts`), the
bank-side memory path (:class:`PimBankMemory` — store interconnect
charge, warm-level semantics, observability, deliberately absent LLC),
the launch-latency charge in ``configuration_cycles``, the ``pim``
service-calibration backend and the campaign cache/point plumbing.
"""

from __future__ import annotations

import pytest

from repro.config import (DEFAULT_CONFIG, ConfigError, PimConfig,
                          SystemConfig, stable_digest)
from repro.errors import ServeError
from repro.harness.campaign import pim_point
from repro.harness.runner import MeasurementCache, RunSettings
from repro.mem.dram import DramBankPorts
from repro.mem.pimside import PIM_BUFFER, PimBankMemory
from repro.obs import StatsRegistry
from repro.pim import pim_config
from repro.serve.service import measure_service
from tests.conftest import build_direct_index, materialized_probe_column

QUICK = RunSettings(probes=400, warmup=100, seed=42)


# ---------------------------------------------------------------------------
# PimConfig
# ---------------------------------------------------------------------------

def test_pim_config_defaults_and_digest_stability():
    cfg = SystemConfig()
    assert cfg.pim == PimConfig()
    assert cfg.pim.num_banks == 8
    assert cfg.pim.walkers_per_bank == 2
    # Two identically-parameterized configs hash identically (the
    # measurement cache keys on this) and a bank-count change re-keys.
    assert (stable_digest(SystemConfig().canonical_dict())
            == stable_digest(SystemConfig().canonical_dict()))
    assert (stable_digest(cfg.with_pim(num_banks=4).canonical_dict())
            != stable_digest(cfg.canonical_dict()))


@pytest.mark.parametrize("kwargs", [
    {"num_banks": 0}, {"num_banks": 65},
    {"walkers_per_bank": 0}, {"walkers_per_bank": 17},
    {"launch_cycles": -1.0}, {"bank_access_ns": 0.0},
])
def test_pim_config_rejects_out_of_range_parameters(kwargs):
    with pytest.raises(ConfigError):
        PimConfig(**kwargs)


def test_pim_config_bank_latency_scales_with_frequency():
    cfg = PimConfig(bank_access_ns=25.0)
    assert cfg.bank_latency_cycles(2.0) == 50
    assert cfg.bank_latency_cycles(4.0) == 100


def test_pim_config_helper_builds_pim_placement():
    config = pim_config(walkers=4, banks=2, walkers_per_bank=1,
                        launch_cycles=0.0)
    assert config.widx.placement == "pim"
    assert config.widx.num_walkers == 4
    assert config.pim.num_banks == 2
    assert config.pim.walkers_per_bank == 1
    assert config.pim.launch_cycles == 0.0
    # None overrides keep the incoming values.
    passthrough = pim_config(config)
    assert passthrough == config


# ---------------------------------------------------------------------------
# DramBankPorts
# ---------------------------------------------------------------------------

def test_bank_ports_interleave_blocks_across_banks():
    ports = DramBankPorts(PimConfig(num_banks=4), freq_ghz=2.0)
    assert [ports.bank_of(block) for block in range(8)] == [
        0, 1, 2, 3, 0, 1, 2, 3]


def test_bank_ports_serialize_conflicting_accesses():
    """Three same-cycle accesses to one bank with two slots: two start
    immediately, the third waits one full service time."""
    ports = DramBankPorts(PimConfig(num_banks=2, walkers_per_bank=2),
                          freq_ghz=2.0)
    latency = ports.latency_cycles
    first = ports.access(0, now=0.0)
    second = ports.access(2, now=0.0)   # block 2 -> bank 0 again
    third = ports.access(4, now=0.0)
    assert first == second == latency
    assert third == 2 * latency
    # A different bank is unaffected by bank 0's backlog.
    assert ports.access(1, now=0.0) == latency
    assert ports.accesses.value == 4


def test_bank_ports_utilization_and_registration():
    ports = DramBankPorts(PimConfig(num_banks=2, walkers_per_bank=1),
                          freq_ghz=2.0)
    ports.access(0, now=0.0)
    ports.access(1, now=0.0)
    elapsed = float(ports.latency_cycles)
    # Both banks busy for exactly one service each.
    assert ports.busy_cycles == 2 * ports.latency_cycles
    assert ports.utilization(elapsed) == pytest.approx(1.0)
    registry = StatsRegistry()
    ports.register_into(registry, "dram")
    snapshot = registry.to_dict()
    assert snapshot["dram.accesses"]["value"] == 2
    assert any(key.startswith("dram.bank0") for key in snapshot)


# ---------------------------------------------------------------------------
# PimBankMemory
# ---------------------------------------------------------------------------

def test_pim_memory_has_no_llc_by_design():
    memory = PimBankMemory(DEFAULT_CONFIG)
    assert not hasattr(memory, "llc")


def test_pim_memory_store_pays_the_interconnect_return():
    """A store and a load of the same cold address differ in completion
    time by exactly the host interconnect hop (the result-return path)."""
    config = DEFAULT_CONFIG
    loaded = PimBankMemory(config).load(0x4000, now=0.0)
    stored = PimBankMemory(config).store(0x4000, now=0.0)
    assert stored.level == loaded.level == "DRAM"
    assert stored.complete == loaded.complete + config.interconnect_cycles
    assert PimBankMemory(config).stats.stores.value == 0


def test_pim_memory_miss_then_hit_through_the_buffer():
    memory = PimBankMemory(DEFAULT_CONFIG)
    miss = memory.load(0x8000, now=0.0)
    assert miss.level == "DRAM"
    hit = memory.load(0x8000, now=miss.complete)
    assert hit.level == "L1"
    assert hit.complete < miss.complete + memory.banks.latency_cycles
    assert memory.stats.dram_blocks.value == 1
    assert memory.stats.loads.value == 2


def test_pim_memory_warm_levels():
    config = DEFAULT_CONFIG
    # Default ("llc") warming = translations only: the bank array is the
    # data's home, so the first touch still reads a bank...
    memory = PimBankMemory(config)
    memory.warm_range(0x1000, 256)
    assert memory.load(0x1000, now=0.0).level == "DRAM"
    assert memory.load(0x1000, now=0.0).tlb_stall == 0.0
    # ...while "l1" warming also fills the scratch buffer.
    memory = PimBankMemory(config)
    memory.warm_block(0x1000, level="l1")
    assert memory.load(0x1000, now=0.0).level == "L1"
    with pytest.raises(ValueError):
        PimBankMemory(config).warm_block(0x1000, level="l3")


def test_pim_memory_registers_all_components():
    memory = PimBankMemory(DEFAULT_CONFIG)
    memory.load(0x2000, now=0.0)
    registry = StatsRegistry()
    memory.register_into(registry, "mem")
    snapshot = registry.to_dict()
    assert snapshot["mem.loads"]["value"] == 1
    assert snapshot["mem.dram.accesses"]["value"] == 1
    assert "mem.l1d.hits" in snapshot
    assert "mem.tlb.misses" in snapshot
    # Workers drop shared-structure registration when merging snapshots.
    private = StatsRegistry()
    memory.register_into(private, "mem", include_shared=False)
    assert not any(key.startswith("mem.dram.bank")
                   for key in private.to_dict())


# ---------------------------------------------------------------------------
# launch latency lands in configuration_cycles
# ---------------------------------------------------------------------------

def test_launch_latency_is_charged_to_config_cycles_only(space):
    index, keys, _truth = build_direct_index(space, num_keys=1000)
    column = materialized_probe_column(space, keys, count=100)
    from repro.widx.offload import offload_probe
    cheap = offload_probe(index, column,
                          config=pim_config(launch_cycles=0.0), probes=100)
    dear = offload_probe(index, column,
                         config=pim_config(launch_cycles=750.0), probes=100)
    assert dear.run.config_cycles - cheap.run.config_cycles == 750.0
    assert dear.run.total_cycles == cheap.run.total_cycles
    assert tuple(dear.payloads) == tuple(cheap.payloads)


# ---------------------------------------------------------------------------
# service calibration and campaign plumbing
# ---------------------------------------------------------------------------

def test_measure_service_pim_backend_charges_the_launch(space):
    index, keys, _truth = build_direct_index(space, num_keys=1000)
    column = materialized_probe_column(space, keys, count=64)
    base = measure_service(index, column, backend="pim", batch_keys=16,
                           walkers=2)
    config = pim_config(launch_cycles=DEFAULT_CONFIG.pim.launch_cycles + 300)
    dearer = measure_service(index, column, backend="pim", batch_keys=16,
                             walkers=2, config=config)
    assert dearer.backend == "pim"
    assert dearer.cycles == base.cycles + 300.0
    with pytest.raises(ServeError):
        measure_service(index, column, backend="pim", batch_keys=16,
                        walkers=0)


def test_measurement_cache_pim_point_roundtrip():
    cache = MeasurementCache(runs=QUICK)
    first = cache.pim("kernel", "Small", 2, 4)
    assert cache.measured_points == 1
    again = cache.pim("kernel", "Small", 2, 4)
    assert cache.measured_points == 1  # cache hit, no re-simulation
    assert again.run.total_cycles == first.run.total_cycles
    assert first.run.config_cycles >= DEFAULT_CONFIG.pim.launch_cycles


def test_pim_point_declares_distinct_cache_keys():
    a = pim_point("kernel", "Small", 2, 4)
    b = pim_point("kernel", "Small", 2, 8)
    assert a.op == "pim"
    assert a.cache_tuple() != b.cache_tuple()
    assert a.cache_tuple() == pim_point("kernel", "Small", 2, 4).cache_tuple()
