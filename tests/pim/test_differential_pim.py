"""Full-stack differential tests: optimized vs all-naive PIM offload.

The bank-side backend gets the same wall the Widx overhaul got: complete
bulk probes run twice — once on the optimized stack and once with every
layer swapped for its deliberately naive twin (reference engine,
reference bank-buffer array via :func:`~repro.pim.use_reference_pim_memory`,
:class:`~repro.pim.ReferencePimUnit` interpreter) — and the *entire*
simulated outcome must be bit-identical: total cycles, payloads,
per-unit accounting, buffer/TLB counters and per-bank port traffic.
Swept across bank geometries, walker counts, launch latencies and
fault-injected runs, so a behavioural drift anywhere in the new
attachment point fails loudly.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.mem.pimside import PimBankMemory
from repro.pim import (ReferencePimUnit, offload_probe_pim, pim_config,
                       use_reference_pim_memory)
from repro.serve.faults import WalkerFaultModel
from repro.serve.policies import parse_policy
from repro.serve.service import ServiceModel, measure_service
from repro.serve.simulate import ResilienceConfig, run_open_loop
from repro.sim.reference import ReferenceEngine
from repro.widx.machine import UnitFault
from repro.widx.offload import offload_probe
from tests.conftest import build_direct_index, materialized_probe_column

PROBES = 200


def outcome_key(outcome):
    """Every externally observable artifact of one bank-side offload."""
    run = outcome.run
    units = tuple(
        (name, stats.invocations.value, stats.instructions.value,
         stats.loads.value, stats.stores.value, stats.emitted.value,
         stats.cycles.comp, stats.cycles.mem, stats.cycles.tlb,
         stats.cycles.queue)
        for name, stats in sorted(run.unit_stats.items()))
    memory = outcome.memory
    mem = (memory.stats.loads.value, memory.stats.stores.value,
           memory.stats.l1d.hits.value, memory.stats.l1d.misses.value,
           memory.stats.tlb.misses.value, memory.stats.dram_blocks.value,
           memory.banks.accesses.value, memory.banks.busy_cycles)
    return (run.total_cycles, run.config_cycles, run.matches,
            tuple(outcome.payloads), outcome.validated, units, mem)


def run_pair(space, *, walkers=2, mode="shared", banks=8,
             walkers_per_bank=None, launch_cycles=None, probes=PROBES,
             num_keys=1500, match_fraction=1.0, warm=True, faults=()):
    index, keys, _truth = build_direct_index(space, num_keys=num_keys)
    column = materialized_probe_column(space, keys, count=probes,
                                       match_fraction=match_fraction)
    config = pim_config(walkers=walkers, mode=mode, banks=banks,
                        walkers_per_bank=walkers_per_bank,
                        launch_cycles=launch_cycles)
    optimized = offload_probe(index, column, config=config, probes=probes,
                              warm=warm, faults=faults)
    reference = offload_probe(
        index, column, config=config, probes=probes, warm=warm,
        faults=faults,
        memory=use_reference_pim_memory(PimBankMemory(config)),
        engine=ReferenceEngine(),
        unit_cls=ReferencePimUnit)
    return outcome_key(optimized), outcome_key(reference)


@pytest.mark.parametrize("walkers", [1, 2, 4])
def test_pim_offload_identical_across_walker_counts(space, walkers):
    optimized, reference = run_pair(space, walkers=walkers)
    assert optimized == reference


@pytest.mark.parametrize("banks,walkers_per_bank",
                         [(1, 1), (2, 2), (4, 1), (8, 4)])
def test_pim_offload_identical_across_bank_geometries(space, banks,
                                                      walkers_per_bank):
    """The grid that stresses the new code: conflict-heavy single-bank
    single-slot up through wide geometries where ports never saturate."""
    optimized, reference = run_pair(space, walkers=4, banks=banks,
                                    walkers_per_bank=walkers_per_bank)
    assert optimized == reference


@pytest.mark.parametrize("launch_cycles", [0.0, 137.5, 2000.0])
def test_pim_offload_identical_across_launch_latencies(space, launch_cycles):
    optimized, reference = run_pair(space, launch_cycles=launch_cycles)
    assert optimized == reference


@pytest.mark.parametrize("mode", ["shared", "private", "coupled"])
def test_pim_offload_identical_across_organizations(space, mode):
    optimized, reference = run_pair(space, mode=mode)
    assert optimized == reference


def test_pim_offload_identical_with_cold_buffer_and_misses(space):
    """No warm-up and 60% matching probes: buffer evictions and bank
    traffic differ most between the stacks, and must still agree."""
    optimized, reference = run_pair(space, warm=False, match_fraction=0.6)
    assert optimized == reference


# ---------------------------------------------------------------------------
# fault-injected differentials: walkers die the same way on both stacks
# ---------------------------------------------------------------------------

KILL_EARLY = (UnitFault(unit="walker1", cycle=1000.0),)


def test_pim_offload_identical_under_survivable_walker_kill(space):
    """Shared mode salvages a dead bank-side walker's in-flight probe on
    both stacks; the salvage path must not drift between them."""
    optimized, reference = run_pair(space, faults=KILL_EARLY)
    assert optimized == reference
    assert optimized[4] is True  # still validates


def test_pim_fallback_to_host_matches_reference_results(space):
    """A coupled-mode walker kill is unsurvivable: with
    ``fallback_to_host`` both stacks re-run on the host and must agree on
    the architectural results (the host re-run's timing is not part of
    the PIM differential contract)."""
    index, keys, _truth = build_direct_index(space, num_keys=1500)
    column = materialized_probe_column(space, keys, count=PROBES)
    config = pim_config(walkers=1, mode="coupled")
    kill = (UnitFault(unit="walker0", cycle=500.0),)
    optimized = offload_probe(index, column, config=config, probes=PROBES,
                              faults=kill, fallback_to_host=True)
    reference = offload_probe(
        index, column, config=config, probes=PROBES, faults=kill,
        fallback_to_host=True,
        memory=use_reference_pim_memory(PimBankMemory(config)),
        engine=ReferenceEngine(),
        unit_cls=ReferencePimUnit)
    assert optimized.fell_back and reference.fell_back
    assert tuple(optimized.payloads) == tuple(reference.payloads)
    assert optimized.run.matches == reference.run.matches


def test_pim_wrapper_pins_placement_and_matches_explicit_config(space):
    """``offload_probe_pim`` on a host-placed config is the same
    simulation as ``offload_probe`` on the explicit pim config."""
    index, keys, _truth = build_direct_index(space, num_keys=1500)
    column = materialized_probe_column(space, keys, count=PROBES)
    via_wrapper = offload_probe_pim(index, column, config=DEFAULT_CONFIG,
                                    probes=PROBES)
    explicit = offload_probe(index, column, config=pim_config(),
                             probes=PROBES)
    assert outcome_key(via_wrapper) == outcome_key(explicit)


# ---------------------------------------------------------------------------
# serve-level faults: seeded walker deaths are deterministic on PIM models
# ---------------------------------------------------------------------------

def test_pim_service_sweep_with_walker_faults_is_deterministic(space):
    """A fault-injected open-loop sweep over a PIM-calibrated service
    model is a pure function of the seed — two runs agree exactly."""
    index, keys, _truth = build_direct_index(space, num_keys=1500)
    column = materialized_probe_column(space, keys, count=64)
    measurements = [
        measure_service(index, column, backend="pim", batch_keys=batch * 8,
                        walkers=2, mode="shared")
        for batch in (1, 2)
    ]
    model = ServiceModel.from_measurements("pim-2", 8, measurements)
    fallback = model.scaled(4.0)

    def sweep():
        faults = WalkerFaultModel(seed=42, rate=16.0, walkers_per_core=2)
        resilience = ResilienceConfig(slo=20.0 * model.cycles_for(1),
                                      faults=faults, fallback=fallback)
        result = run_open_loop(model, rate=0.8 * model.saturation_rate(),
                               num_requests=128, policy=parse_policy("fifo"),
                               cores=2, seed=42, resilience=resilience)
        return (result.completed, result.expired, result.faults,
                result.goodput, result.p99)

    assert sweep() == sweep()
