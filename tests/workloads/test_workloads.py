"""Tests for the workload suites."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import WorkloadError
from repro.workloads.hashjoin_kernel import (KERNEL_SIZES,
                                             build_kernel_workload)
from repro.workloads.queryspec import (IndexClass, QuerySpec,
                                       build_query_index, derive_volumes)
from repro.workloads.tpcds import TPCDS_QUERIES, TPCDS_SIMULATED
from repro.workloads.tpch import TPCH_QUERIES, TPCH_SIMULATED


class TestKernel:
    def test_three_sizes_defined(self):
        assert set(KERNEL_SIZES) == {"Small", "Medium", "Large"}

    def test_locality_classes_preserved(self):
        l1 = DEFAULT_CONFIG.l1d.size_bytes
        llc = DEFAULT_CONFIG.llc.size_bytes
        small = KERNEL_SIZES["Small"].tuples * 16 * 1.5
        medium = KERNEL_SIZES["Medium"].tuples * 16 * 1.5
        large = KERNEL_SIZES["Large"].tuples * 16 * 1.5
        assert small < llc           # Small: cache resident
        assert medium < 2 * llc      # Medium: around LLC capacity
        assert large > 3 * llc       # Large: DRAM resident

    def test_small_builds_and_probes(self):
        index, probes = build_kernel_workload("Small", probe_count=200)
        assert index.num_keys == 4096
        assert len(probes.values) == 200
        assert probes.is_materialized
        # Full-match probe stream: every probe finds its tuple.
        for key in probes.values[:50]:
            assert index.probe(int(key)), key

    def test_kernel_uses_listing1_hash(self):
        index, _ = build_kernel_workload("Small", probe_count=10)
        assert index.hash_spec.compute_cycles == 2  # mask ^ prime

    def test_kernel_bucket_depth_up_to_two(self):
        index, _ = build_kernel_workload("Small", probe_count=10)
        stats = index.stats()
        assert 1.5 < stats.nodes_per_used_bucket < 3.0

    def test_unknown_size_rejected(self):
        with pytest.raises(WorkloadError):
            build_kernel_workload("Huge", probe_count=10)

    def test_deterministic_by_seed(self):
        a, _ = build_kernel_workload("Small", probe_count=10, seed=1)
        b, _ = build_kernel_workload("Small", probe_count=10, seed=1)
        assert a.stats().used_buckets == b.stats().used_buckets


class TestSuites:
    def test_figure2a_query_counts(self):
        assert len(TPCH_QUERIES) == 16   # >5% indexing time (paper §5)
        assert len(TPCDS_QUERIES) == 9   # the selected TPC-DS subset

    def test_simulated_subsets_match_paper(self):
        assert [q.number for q in TPCH_SIMULATED] == [2, 11, 17, 19, 20, 22]
        assert [q.number for q in TPCDS_SIMULATED] == [5, 37, 40, 52, 64, 82]

    def test_index_fraction_aggregates_match_paper(self):
        tpch = [q.index_fraction for q in TPCH_QUERIES]
        tpcds = [q.index_fraction for q in TPCDS_QUERIES]
        assert 0.30 < sum(tpch) / len(tpch) < 0.42      # paper: 35% avg
        assert max(tpch) == pytest.approx(0.94)         # paper: 94% (q17)
        assert 0.40 < sum(tpcds) / len(tpcds) < 0.50    # paper: 45% avg
        assert max(tpcds) == pytest.approx(0.77)        # paper: 77% (q64)

    def test_query37_anchor(self):
        q37 = [q for q in TPCDS_QUERIES if q.number == 37][0]
        assert q37.index_fraction == pytest.approx(0.29)
        assert q37.index_class is IndexClass.L1

    def test_query20_has_wide_keys(self):
        q20 = [q for q in TPCH_QUERIES if q.number == 20][0]
        assert q20.key_bytes == 8
        assert q20.hash_spec.name == "robust64"

    def test_memory_intensive_tpch_queries_are_dram_class(self):
        for number in (19, 20, 22):
            spec = [q for q in TPCH_QUERIES if q.number == number][0]
            assert spec.index_class is IndexClass.DRAM

    def test_l1_resident_tpcds_queries(self):
        for number in (5, 37, 64, 82):
            spec = [q for q in TPCDS_QUERIES if q.number == number][0]
            assert spec.index_class is IndexClass.L1

    def test_fractions_sum_to_one(self):
        for spec in TPCH_QUERIES + TPCDS_QUERIES:
            assert sum(spec.fractions) == pytest.approx(1.0)


class TestBuildQueryIndex:
    def test_builds_indirect_index(self):
        spec = TPCDS_SIMULATED[0]
        index, probes = build_query_index(spec, probe_count=100)
        assert index.layout.indirect
        assert index.num_keys == spec.index_keys

    def test_probe_match_fraction_respected(self):
        spec = TPCH_SIMULATED[0]
        index, probes = build_query_index(spec, probe_count=2000)
        hits = sum(1 for key in probes.values if index.probe(int(key)))
        assert abs(hits / 2000 - spec.match_fraction) < 0.05

    def test_l1_class_indexes_fit_l1(self):
        for spec in TPCDS_SIMULATED:
            if spec.index_class is IndexClass.L1:
                index, _ = build_query_index(spec, probe_count=10)
                assert index.footprint_bytes <= \
                    2 * DEFAULT_CONFIG.l1d.size_bytes

    def test_dram_class_indexes_exceed_llc(self):
        spec = [q for q in TPCH_SIMULATED if q.number == 19][0]
        index, _ = build_query_index(spec, probe_count=10)
        assert index.footprint_bytes > DEFAULT_CONFIG.llc.size_bytes


class TestDeriveVolumes:
    def test_forward_computation_reproduces_fractions(self):
        for spec in (TPCH_QUERIES[0], TPCDS_QUERIES[1], TPCH_QUERIES[10]):
            volumes = derive_volumes(spec)
            cycles = volumes.breakdown(
                probe_cycles_per_tuple=spec.index_class.baseline_probe_cycles)
            total = sum(cycles.values())
            for fraction, category in zip(spec.fractions,
                                          ("index", "scan", "sortjoin",
                                           "other")):
                assert cycles[category] / total == pytest.approx(
                    fraction, abs=0.05), (spec.label, category)

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            QuerySpec(benchmark="tpch", number=1, index_keys=10,
                      index_class=IndexClass.L1,
                      fractions=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(WorkloadError):
            QuerySpec(benchmark="oltp", number=1, index_keys=10,
                      index_class=IndexClass.L1,
                      fractions=(0.25, 0.25, 0.25, 0.25))
