"""Tests for the ordered-index zoo workloads and their baseline timing."""

import pytest

from repro.cpu.ordered import (make_ordered_generator,
                               measure_ordered_indexing)
from repro.db.btree import BPlusTree, KEY_PAD, batched_search
from repro.db.trie import MlpTrie
from repro.db.wormhole import WormholeIndex
from repro.errors import WorkloadError
from repro.workloads.ordered_kernel import (ORDERED_CLASSES, ORDERED_SIZES,
                                            build_ordered_workload)

PROBES = 96


class TestBuildOrderedWorkload:
    @pytest.mark.parametrize("index_class,expected", [
        ("btree", BPlusTree), ("trie", MlpTrie),
        ("wormhole", WormholeIndex), ("batched", BPlusTree)])
    def test_builds_the_right_structure(self, index_class, expected):
        index, column = build_ordered_workload(index_class, "Small", PROBES)
        assert isinstance(index, expected)
        assert len(column.values) == PROBES
        assert index.num_keys == ORDERED_SIZES["Small"].tuples

    def test_every_probe_hits_by_default(self):
        index, column = build_ordered_workload("btree", "Small", PROBES)
        assert all(index.search(int(v)) is not None for v in column.values)

    def test_match_fraction_controls_misses(self):
        index, column = build_ordered_workload("wormhole", "Small", PROBES,
                                               match_fraction=0.0)
        assert all(index.search(int(v)) is None for v in column.values)

    def test_same_seed_same_workload(self):
        a_index, a_column = build_ordered_workload("trie", "Small", PROBES)
        b_index, b_column = build_ordered_workload("trie", "Small", PROBES)
        assert list(a_column.values) == list(b_column.values)
        assert list(a_index.items()) == list(b_index.items())

    def test_classes_share_one_data_recipe(self):
        """btree/trie/wormhole built at one (size, seed) hold the same
        logical map — the comparison isolates the structure."""
        loads = {cls: build_ordered_workload(cls, "Small", PROBES)
                 for cls in ("btree", "trie", "wormhole")}
        tree = loads["btree"][0]
        baseline = tree.range_scan(0, KEY_PAD - 1)
        assert list(loads["trie"][0].items()) == baseline
        assert list(loads["wormhole"][0].items()) == baseline

    def test_unknown_class_and_size_rejected(self):
        with pytest.raises(WorkloadError):
            build_ordered_workload("skiplist", "Small", PROBES)
        with pytest.raises(WorkloadError):
            build_ordered_workload("btree", "Tiny", PROBES)

    def test_all_declared_classes_build(self):
        for cls in ORDERED_CLASSES:
            index, _column = build_ordered_workload(cls, "Small", 8)
            assert index.num_keys > 0


class TestMeasureOrderedIndexing:
    @pytest.mark.parametrize("index_class", ORDERED_CLASSES)
    @pytest.mark.parametrize("core", ["ooo", "inorder"])
    def test_measures_positive_cycles(self, index_class, core):
        index, column = build_ordered_workload(index_class, "Small", PROBES)
        result = measure_ordered_indexing(
            index, column, index_class=index_class, core=core,
            warmup_probes=32, measure_probes=64)
        assert result.core == core
        assert result.cycles_per_tuple > 0
        assert result.tuples > 0

    def test_deterministic_across_runs(self):
        index, column = build_ordered_workload("wormhole", "Small", PROBES)

        def run():
            return measure_ordered_indexing(
                index, column, index_class="wormhole", core="ooo",
                warmup_probes=32, measure_probes=64)

        first, second = run(), run()
        assert first.cycles_per_tuple == second.cycles_per_tuple
        assert first.total_cycles == second.total_cycles

    def test_bulk_flag_is_bit_identical_by_construction(self):
        index, column = build_ordered_workload("trie", "Small", PROBES)
        kwargs = dict(index_class="trie", core="inorder",
                      warmup_probes=32, measure_probes=64)
        event = measure_ordered_indexing(index, column, bulk=False, **kwargs)
        bulk = measure_ordered_indexing(index, column, bulk=True, **kwargs)
        assert event.cycles_per_tuple == bulk.cycles_per_tuple
        assert event.total_cycles == bulk.total_cycles

    def test_ooo_window_beats_inorder_on_every_class(self):
        """The paper's baseline asymmetry must survive the new traces:
        the OoO window always helps these probe streams."""
        for index_class in ORDERED_CLASSES:
            index, column = build_ordered_workload(index_class, "Small",
                                                   PROBES)
            ooo = measure_ordered_indexing(
                index, column, index_class=index_class, core="ooo",
                warmup_probes=32, measure_probes=64)
            inorder = measure_ordered_indexing(
                index, column, index_class=index_class, core="inorder",
                warmup_probes=32, measure_probes=64)
            assert ooo.cycles_per_tuple < inorder.cycles_per_tuple, \
                index_class


class TestTraceGenerators:
    def test_batched_generator_emits_whole_batches(self):
        index, column = build_ordered_workload("batched", "Small", PROBES)
        generator = make_ordered_generator("batched", index, column,
                                           batch=4)
        traces = list(generator.stream(range(len(column.values))))
        assert len(traces) == PROBES // 4
        assert generator.tuples_per_trace == 4

    def test_batched_trace_loads_each_node_once(self):
        """The trace generator charges one load per distinct node per
        level — the same sharing batched_search's visit_log records."""
        index, column = build_ordered_workload("batched", "Small", PROBES)
        batch = [int(v) for v in column.values[:4]]
        visits = []
        batched_search(index, sorted(batch), visit_log=visits)
        generator = make_ordered_generator("batched", index, column,
                                           batch=4)
        uops = next(iter(generator.stream(range(4))))
        node_loads = [u for u in uops
                      if u.kind.name == "LOAD"
                      and any(u.addr == node for node in visits)]
        assert len(node_loads) == len(visits)

    def test_per_probe_generators_cover_all_classes(self):
        for index_class in ("btree", "trie", "wormhole"):
            index, column = build_ordered_workload(index_class, "Small", 16)
            generator = make_ordered_generator(index_class, index, column)
            traces = list(generator.stream(range(16)))
            assert len(traces) == 16
            assert all(len(t) > 0 for t in traces)
