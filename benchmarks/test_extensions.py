"""Benchmarks for the Section 7 extensions.

* B+-tree traversal on Widx vs hash-index probes (the "other index
  structures" extension);
* core-side vs LLC-side Widx placement (the paper's placement trade-off);
* partitioned vs no-partitioning hash join (hardware-conscious algorithms)
  on both the baseline core and Widx.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import run_once
from repro.config import DEFAULT_CONFIG
from repro.cpu.timing import measure_indexing
from repro.db.btree import BPlusTree
from repro.db.column import Column
from repro.db.datagen import build_pair_tables, make_rng, unique_keys
from repro.db.operators.partitioned import partitioned_hash_join
from repro.db.types import DataType
from repro.harness.report import Report
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_probe, offload_tree_search


def tree_vs_hash_report(cache) -> Report:
    """Same keys, same probes: hash index vs B+-tree, both on Widx."""
    report = Report("Extension: hash index vs B+-tree on Widx (4 walkers)",
                    columns=["keys", "structure", "cycles_per_tuple",
                             "footprint_kb", "height_or_chain"])
    rng = make_rng(17)
    for n in (4_096, 65_536, 524_288):
        space = AddressSpace()
        keys = unique_keys(n, 4, rng)
        probes = Column("probes", DataType.U32, rng.choice(keys, 2_000))
        probes.materialize(space)

        from repro.db.hashfn import ROBUST_HASH_32
        from repro.db.hashtable import HashIndex, choose_num_buckets
        from repro.db.node import KERNEL_LAYOUT
        index = HashIndex(space, KERNEL_LAYOUT, choose_num_buckets(n),
                          ROBUST_HASH_32, capacity=n, name=f"h{n}")
        for row, key in enumerate(keys):
            index.insert(int(key), row + 1)
        hash_out = offload_probe(index, probes, config=DEFAULT_CONFIG)
        stats = index.stats()
        report.add_row(n, "hash", hash_out.cycles_per_tuple,
                       index.footprint_bytes // 1024,
                       round(stats.nodes_per_used_bucket, 2))

        tree_space = AddressSpace()
        tree = BPlusTree(tree_space, keys.tolist(),
                         list(range(1, n + 1)), name=f"t{n}")
        tree_probes = Column("probes", DataType.U32, probes.values)
        tree_probes.materialize(tree_space)
        tree_out = offload_tree_search(tree, tree_probes,
                                       config=DEFAULT_CONFIG)
        report.add_row(n, "btree", tree_out.cycles_per_tuple,
                       tree.footprint_bytes // 1024, tree.stats().height)
    report.add_note("hash probes touch O(1) nodes; tree probes touch "
                    "height nodes — the gap grows with cardinality, which "
                    "is why DBMSs prefer hash indexes for point lookups")
    return report


def test_tree_vs_hash(benchmark, record, cache):
    report = run_once(benchmark, tree_vs_hash_report, cache)
    record(report, "ext_tree_vs_hash")
    by_structure = {}
    for row in report.rows:
        by_structure.setdefault(row[1], []).append(row[2])
    # Hash wins at every size, and the tree's cost grows with height.
    for hash_cost, tree_cost in zip(by_structure["hash"],
                                    by_structure["btree"]):
        assert hash_cost < tree_cost
    tree_costs = by_structure["btree"]
    assert tree_costs[-1] > 1.5 * tree_costs[0]


def placement_report(cache) -> Report:
    report = Report("Extension: core-side vs LLC-side Widx placement",
                    columns=["size", "core_side", "llc_side",
                             "llc_side_wins"])
    llc_widx = dataclasses.replace(DEFAULT_CONFIG.widx, placement="llc")
    llc_config = dataclasses.replace(DEFAULT_CONFIG, widx=llc_widx)
    for size in ("Small", "Medium", "Large"):
        index, probes = cache.kernel_workload(size)
        core = offload_probe(index, probes, config=DEFAULT_CONFIG,
                             probes=cache.runs.probes)
        llc = offload_probe(index, probes, config=llc_config,
                            probes=cache.runs.probes)
        report.add_row(size, core.cycles_per_tuple, llc.cycles_per_tuple,
                       llc.cycles_per_tuple < core.cycles_per_tuple)
    report.add_note("the paper's §7 trade-off, measured: LLC-side wins on "
                    "LLC-resident working sets (no crossbar hop on every "
                    "node access) but loses on DRAM-resident ones (its "
                    "dedicated TLB has a fraction of the host MMU's "
                    "reach); the paper favors core-coupling on the cost "
                    "side too — dedicated translation, storage and "
                    "exception handling")
    return report


def test_placement(benchmark, record, cache):
    report = run_once(benchmark, placement_report, cache)
    record(report, "ext_placement")
    core = dict(zip(report.column("size"), report.column("core_side")))
    llc = dict(zip(report.column("size"), report.column("llc_side")))
    # The latency advantage: LLC-side is at least as fast when the
    # working set is LLC-resident...
    assert llc["Medium"] <= core["Medium"]
    # ...and the reach disadvantage: core-coupled wins on the Large,
    # TLB-stressing index (the regime DSS queries live in).
    assert core["Large"] < llc["Large"]


def partitioned_report(cache) -> Report:
    """No-partitioning vs radix-partitioned join, baseline and Widx."""
    build, probe = build_pair_tables(600_000, 6_000, match_fraction=1.0,
                                     seed=23)
    report = Report("Extension: no-partitioning vs partitioned hash join "
                    "(probe cycles/tuple; partitioning overhead separate)",
                    columns=["algorithm", "design", "cycles_per_tuple",
                             "overhead_per_probe"])
    # Monolithic join: one DRAM-resident index.
    space = AddressSpace()
    from repro.db.operators.hashjoin import hash_join
    mono = hash_join(space, build, probe, "age", "age", payload_column="id")
    ooo_mono = measure_indexing(mono.index, mono.probe_keys, core="ooo",
                                warmup_probes=500, measure_probes=2_000)
    widx_mono = offload_probe(mono.index, mono.probe_keys,
                              config=DEFAULT_CONFIG, probes=2_500)
    report.add_row("no-partitioning", "ooo", ooo_mono.cycles_per_tuple, 0.0)
    report.add_row("no-partitioning", "widx", widx_mono.cycles_per_tuple,
                   0.0)

    # Partitioned join: 64 cache-resident partitions.
    part_space = AddressSpace()
    result = partitioned_hash_join(part_space, build, probe, "age", "age",
                                   payload_column="id", partition_bits=6)
    rng = np.random.default_rng(3)
    sample = rng.choice(len(result.partitions), size=6, replace=False)
    ooo_costs, widx_costs, weights = [], [], []
    for partition_index in sample:
        partition = result.partitions[partition_index]
        probes_here = len(partition.probe_keys.values)
        if probes_here < 40:
            continue
        warm = max(8, probes_here // 4)
        ooo_part = measure_indexing(partition.index, partition.probe_keys,
                                    core="ooo", warmup_probes=warm,
                                    measure_probes=probes_here - warm)
        widx_part = offload_probe(partition.index, partition.probe_keys,
                                  config=DEFAULT_CONFIG)
        ooo_costs.append(ooo_part.cycles_per_tuple)
        widx_costs.append(widx_part.cycles_per_tuple)
        weights.append(probes_here)
    total_weight = sum(weights)
    ooo_part_cpt = sum(c * w for c, w in zip(ooo_costs, weights)) / total_weight
    widx_part_cpt = sum(c * w for c, w in zip(widx_costs, weights)) / total_weight
    overhead = result.partition_cycles / probe.num_rows
    report.add_row("partitioned", "ooo", ooo_part_cpt, overhead)
    report.add_row("partitioned", "widx", widx_part_cpt, overhead)
    report.add_note("paper §7: partitioning makes each table cache-"
                    "resident, helping the locality-starved baseline most; "
                    "Widx needs no locality, so it gains less but still "
                    "applies unchanged")
    return report


def test_partitioned_join(benchmark, record, cache):
    report = run_once(benchmark, partitioned_report, cache)
    record(report, "ext_partitioned")
    rows = {(r[0], r[1]): r[2] for r in report.rows}
    # Partitioning speeds up the probe phase on both designs...
    assert rows[("partitioned", "ooo")] < rows[("no-partitioning", "ooo")]
    assert rows[("partitioned", "widx")] < rows[("no-partitioning", "widx")]
    # ...but the relative gain is larger for the baseline (locality) than
    # for Widx (which extracts MLP regardless of locality).
    ooo_gain = rows[("no-partitioning", "ooo")] / rows[("partitioned", "ooo")]
    widx_gain = (rows[("no-partitioning", "widx")]
                 / rows[("partitioned", "widx")])
    assert ooo_gain > widx_gain
    # And Widx still beats the baseline on every variant.
    assert rows[("partitioned", "widx")] < rows[("partitioned", "ooo")]
