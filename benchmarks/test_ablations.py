"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures to probe *why* Widx is shaped the way
it is: the Figure 3 design progression measured end-to-end, queue-depth
sensitivity, walker scaling past the paper's four-walker cap, key-skew
sensitivity, and the hash-vs-sort-merge algorithm comparison the paper
cites.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.config import DEFAULT_CONFIG
from repro.db.column import Column
from repro.db.datagen import build_pair_tables, make_rng, zipf_keys
from repro.db.operators.sortmerge import sort_merge_cycles
from repro.db.types import DataType
from repro.harness.report import Report
from repro.widx.offload import offload_probe


def design_progression_report(cache) -> Report:
    """Figure 3a-to-3d measured: each step of the paper's design evolution
    on the Medium kernel (1 -> N walkers -> decoupled -> shared)."""
    index, probes = cache.kernel_workload("Medium")
    report = Report("Ablation: the Figure 3 design progression "
                    "(Medium kernel, cycles per tuple)",
                    columns=["design", "figure", "walkers", "cycles_per_tuple"])
    points = [
        ("single coupled unit", "3a", "coupled", 1),
        ("parallel coupled walkers", "3b", "coupled", 4),
        ("private decoupled hashing", "3c", "private", 4),
        ("shared dispatcher (Widx)", "3d", "shared", 4),
    ]
    for name, figure, mode, walkers in points:
        config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)
        outcome = offload_probe(index, probes, config=config,
                                probes=cache.runs.probes)
        report.add_row(name, figure, walkers, outcome.cycles_per_tuple)
    return report


def test_design_progression(benchmark, record, cache):
    report = run_once(benchmark, design_progression_report, cache)
    record(report, "ablation_design_progression")
    cycles = report.column("cycles_per_tuple")
    # Each design step helps: 3a > 3b > 3c; 3d stays within 15% of 3c
    # while using 3 fewer units.
    assert cycles[0] > 2.5 * cycles[1]       # parallel walkers
    assert cycles[1] > 1.1 * cycles[2]       # decoupled hashing (paper: ~29%
    #                                          per-traversal; end-to-end less)
    assert cycles[3] < 1.15 * cycles[2]      # shared dispatcher is ~free


def queue_depth_report(cache) -> Report:
    index, probes = cache.kernel_workload("Medium")
    report = Report("Ablation: dispatcher-walker queue depth (Medium kernel)",
                    columns=["queue_entries", "cycles_per_tuple"])
    for entries in (1, 2, 4, 8):
        config = DEFAULT_CONFIG.with_widx(num_walkers=4,
                                          queue_entries=entries)
        outcome = offload_probe(index, probes, config=config,
                                probes=cache.runs.probes)
        report.add_row(entries, outcome.cycles_per_tuple)
    return report


def test_queue_depth(benchmark, record, cache):
    report = run_once(benchmark, queue_depth_report, cache)
    record(report, "ablation_queue_depth")
    cycles = dict(zip(report.column("queue_entries"),
                      report.column("cycles_per_tuple")))
    # The paper's 2-entry queues capture nearly all the benefit: deeper
    # queues buy <10% more, single-entry costs measurably.
    assert cycles[1] >= cycles[2] * 0.99
    assert cycles[8] > 0.9 * cycles[2]


def walker_scaling_report(cache) -> Report:
    """Scaling past the paper's cap: the Section 3.2 MSHR/bandwidth wall."""
    index, probes = cache.kernel_workload("Large")
    report = Report("Ablation: walker scaling on the Large kernel",
                    columns=["walkers", "cycles_per_tuple", "speedup_vs_1"])
    base = None
    for walkers in (1, 2, 4, 8, 12, 16):
        config = DEFAULT_CONFIG.with_widx(num_walkers=walkers)
        outcome = offload_probe(index, probes, config=config,
                                probes=cache.runs.probes)
        if base is None:
            base = outcome.cycles_per_tuple
        report.add_row(walkers, outcome.cycles_per_tuple,
                       base / outcome.cycles_per_tuple)
    return report


def test_walker_scaling_wall(benchmark, record, cache):
    report = run_once(benchmark, walker_scaling_report, cache)
    record(report, "ablation_walker_scaling")
    speedups = dict(zip(report.column("walkers"),
                        report.column("speedup_vs_1")))
    # Near-linear to 4 walkers (the paper's design point, ~90%+ efficient).
    assert speedups[4] > 3.2
    # Past the L1's 10 MSHRs (each walker holds ~1, the dispatcher ~2),
    # scaling efficiency collapses — Section 3.2's Equation 3 wall.  One
    # walker's own miss always progresses, so 16 walkers still run, just
    # far below linear.
    efficiency_4 = speedups[4] / 4
    efficiency_16 = speedups[16] / 16
    assert efficiency_16 < 0.85 * efficiency_4


def skew_report(cache) -> Report:
    """Zipf-skewed probe streams: hot chains concentrate walker work."""
    index, _ = cache.kernel_workload("Medium")
    report = Report("Ablation: probe-key skew (Medium kernel, 4 walkers)",
                    columns=["zipf_skew", "cycles_per_tuple", "l1_miss"])
    space = index.space
    rng = make_rng(99)
    build_keys = None
    for skew in (0.0, 0.6, 1.2):
        # Draw probes from the built keys with a zipf rank distribution.
        ranks = zipf_keys(cache.runs.probes, index.num_keys, skew, rng)
        if build_keys is None:
            build_keys = _collect_keys(index)
        values = build_keys[(ranks - 1) % len(build_keys)]
        column = Column(f"skew{skew}", DataType.U32, values)
        column.materialize(space, f"skew:{skew}")
        outcome = offload_probe(index, column, config=DEFAULT_CONFIG)
        report.add_row(skew, outcome.cycles_per_tuple,
                       outcome.memory.stats.l1d.miss_ratio)
    return report


def _collect_keys(index):
    keys = []
    for bucket in range(index.num_buckets):
        for node in _bucket_nodes(index, bucket):
            keys.append(index.node_key(node))
    return np.asarray(keys, dtype=np.uint32)


def _bucket_nodes(index, bucket):
    from repro.mem.physmem import NULL_PTR
    header = index.bucket_addr(bucket)
    if index._header_empty(header):
        return
    node = header
    while node != NULL_PTR:
        yield node
        node = index.node_next(node)


def test_skew_sensitivity(benchmark, record, cache):
    report = run_once(benchmark, skew_report, cache)
    record(report, "ablation_skew")
    cycles = dict(zip(report.column("zipf_skew"),
                      report.column("cycles_per_tuple")))
    misses = dict(zip(report.column("zipf_skew"), report.column("l1_miss")))
    # Skewed probes concentrate on hot blocks: locality improves, so Widx
    # gets *faster* (its walkers need no data locality, but benefit).
    assert cycles[1.2] < cycles[0.0]
    assert misses[1.2] < misses[0.0]


def hash_vs_sortmerge_report(cache) -> Report:
    """The algorithm comparison the paper cites [Kim et al., Balkesen et
    al.]: hash join vs sort-merge join, on the baseline cost models."""
    report = Report("Ablation: hash join vs sort-merge join (cycles, "
                    "first-order baseline models)",
                    columns=["build_rows", "probe_rows", "hash_cycles",
                             "sortmerge_cycles", "hash_wins"])
    from repro.db.executor import analytic_probe_cycles
    from repro.db.cost import DEFAULT_COST_MODEL
    from repro.mem.layout import AddressSpace
    from repro.db.build import build_index
    for build_rows, probe_rows in ((2_000, 50_000), (20_000, 200_000),
                                   (100_000, 500_000)):
        build, probe = build_pair_tables(build_rows, 16, seed=31)
        space = AddressSpace()
        index = build_index(space, build, "age")
        probe_column = Column("p", DataType.U32, [1])
        per_probe = analytic_probe_cycles(index, probe_column)
        hash_cycles = (DEFAULT_COST_MODEL.build_cycles(build_rows)
                       + per_probe * probe_rows)
        smj_cycles = sort_merge_cycles(build_rows, probe_rows)
        report.add_row(build_rows, probe_rows, hash_cycles, smj_cycles,
                       hash_cycles < smj_cycles)
    return report


def test_hash_beats_sortmerge(benchmark, record, cache):
    report = run_once(benchmark, hash_vs_sortmerge_report, cache)
    record(report, "ablation_hash_vs_sortmerge")
    # Paper (citing Balkesen et al.): hash join clearly outperforms
    # sort-merge join on these scales.
    assert all(report.column("hash_wins"))
