"""Benchmark: regenerate Figure 2 (query-time and index-time breakdowns)."""

from benchmarks.conftest import run_once
from repro.harness.fig2 import run_fig2a, run_fig2b


def test_fig2a(benchmark, record):
    report = run_once(benchmark, run_fig2a)
    record(report, "fig2a")
    fractions = report.column("index")
    # Paper: indexing is 14-94% of query execution.
    assert 0.10 <= min(fractions)
    assert max(fractions) >= 0.85
    tpch = [row[2] for row in report.rows if row[0] == "tpch"]
    tpcds = [row[2] for row in report.rows if row[0] == "tpcds"]
    assert 0.30 < sum(tpch) / len(tpch) < 0.42      # paper avg: 0.35
    assert 0.40 < sum(tpcds) / len(tpcds) < 0.50    # paper avg: 0.45


def test_fig2b(benchmark, record):
    report = run_once(benchmark, run_fig2b)
    record(report, "fig2b")
    walks = report.column("walk")
    # Paper: walk dominates (70% avg, up to 97%); hash can reach 68%.
    assert 0.55 < sum(walks) / len(walks) < 0.85
    assert max(walks) > 0.90
    assert max(report.column("hash")) > 0.5
