"""Benchmark: the Table 2 four-core CMP running the kernel four-threaded.

The paper configures the hash-join kernel "to run with four threads" on
the 4-core CMP.  This benchmark sweeps thread counts on each kernel size
and reports aggregate throughput, shared-LLC miss ratio and DRAM-channel
utilization — connecting the Section 3.2 off-chip bandwidth model
(Figure 4c: ~4-5 walkers per controller at high miss ratios) to an
end-to-end measurement: 4 cores x 4 walkers saturate the two channels on
the Large index.
"""

from benchmarks.conftest import run_once
from repro.cmp import run_multicore_offload
from repro.config import DEFAULT_CONFIG
from repro.harness.report import Report


def multicore_report(cache) -> Report:
    report = Report("Four-threaded kernel on the Table 2 CMP "
                    "(aggregate cycles/tuple, 4 walkers per core)",
                    columns=["size", "threads", "cycles_per_tuple",
                             "speedup_vs_1t", "llc_miss", "dram_util"])
    for size in ("Small", "Medium", "Large"):
        index, probes = cache.kernel_workload(size)
        base = None
        for threads in (1, 2, 4):
            result = run_multicore_offload(index, probes,
                                           config=DEFAULT_CONFIG,
                                           threads=threads,
                                           probes=cache.runs.probes)
            if base is None:
                base = result.cycles_per_tuple
            report.add_row(size, threads, result.cycles_per_tuple,
                           base / result.cycles_per_tuple,
                           result.llc_miss_ratio, result.dram_utilization)
    return report


def test_multicore_kernel(benchmark, record, cache):
    report = run_once(benchmark, multicore_report, cache)
    record(report, "multicore_kernel")
    rows = {(r[0], r[1]): r for r in report.rows}
    # Every size gains from threading...
    for size in ("Small", "Medium", "Large"):
        assert rows[(size, 4)][3] > 2.0
    # ...but the Large index hits the off-chip wall: high DRAM utilization
    # and visibly sublinear 4-thread scaling, unlike the cache-resident
    # Small workload.
    assert rows[("Large", 4)][5] > 0.6         # channels near saturation
    assert rows[("Large", 4)][3] < rows[("Small", 4)][3] - 0.3
    assert rows[("Small", 4)][5] < 0.7 * rows[("Large", 4)][5]


def chip_comparison_report(cache) -> Report:
    """Whole-chip comparison: four OoO cores running the software probe
    loop vs four Widx-equipped cores, on the shared memory system."""
    from repro.cmp import run_multicore_baseline
    report = Report("Chip-level: 4 OoO cores vs 4 Widx complexes "
                    "(aggregate cycles/tuple)",
                    columns=["size", "ooo_chip", "widx_chip",
                             "chip_speedup", "widx_dram_util"])
    for size in ("Small", "Medium", "Large"):
        index, probes = cache.kernel_workload(size)
        baseline = run_multicore_baseline(index, probes, threads=4,
                                          probes=cache.runs.probes)
        accelerated = run_multicore_offload(index, probes, threads=4,
                                            probes=cache.runs.probes)
        report.add_row(size, baseline.cycles_per_tuple,
                       accelerated.cycles_per_tuple,
                       baseline.cycles_per_tuple
                       / accelerated.cycles_per_tuple,
                       accelerated.dram_utilization)
    report.add_note("on the Large index the Widx chip runs into the "
                    "off-chip bandwidth wall (DRAM util > 0.8) while the "
                    "slower OoO chip does not — so the chip-level gap "
                    "narrows exactly where Figure 4c predicts")
    return report


def test_chip_comparison(benchmark, record, cache):
    report = run_once(benchmark, chip_comparison_report, cache)
    record(report, "multicore_chip_comparison")
    speedups = dict(zip(report.column("size"),
                        report.column("chip_speedup")))
    # The Widx chip wins at every size...
    for size in ("Small", "Medium", "Large"):
        assert speedups[size] > 1.5, size
    # ...but bandwidth saturation compresses its advantage on Large.
    assert speedups["Large"] < speedups["Medium"]
    util = dict(zip(report.column("size"), report.column("widx_dram_util")))
    assert util["Large"] > 0.6
