"""Shared benchmark fixtures.

Every figure benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1)``) against a session-wide measurement
cache, prints the reproduced table/series, and archives it under
``benchmarks/output/`` so paper-vs-measured comparisons (EXPERIMENTS.md)
can be refreshed from the artifacts.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.cachestore import CacheStore
from repro.harness.report import Report
from repro.harness.runner import MeasurementCache, RunSettings

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: Measurements persist here across benchmark sessions; delete the
#: directory (or set REPRO_BENCH_NO_CACHE=1) to force fresh simulation.
CACHE_DIR = os.path.join(OUTPUT_DIR, "cache")


@pytest.fixture(scope="session")
def cache() -> MeasurementCache:
    """One measurement cache for the whole benchmark session.

    Figure 10 reuses Figure 9's runs and Figure 11 reuses both, exactly as
    the paper derives its summary figures from the per-query results.  The
    cache is backed by a persistent store under ``benchmarks/output/cache``
    so re-running a subset of the figure benchmarks reuses earlier
    sessions' measurements.
    """
    store = None
    if not os.environ.get("REPRO_BENCH_NO_CACHE"):
        store = CacheStore(CACHE_DIR)
    return MeasurementCache(runs=RunSettings(probes=3000, warmup=600),
                            store=store)


@pytest.fixture(scope="session")
def record():
    """Print a report and archive it under benchmarks/output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    def _record(report: Report, name: str) -> Report:
        text = report.format()
        print("\n" + text)
        with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")
        return report

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
