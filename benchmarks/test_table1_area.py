"""Benchmarks: Table 1 (the Widx ISA and its per-unit usage) and the
Section 6.3 area/power numbers."""

from benchmarks.conftest import run_once
from repro.db.hashfn import ROBUST_HASH_32, ROBUST_HASH_64
from repro.db.node import KERNEL_LAYOUT, MONETDB_LAYOUT
from repro.harness.fig11 import run_area
from repro.harness.report import Report
from repro.widx.isa import Opcode, UNIT_USAGE
from repro.widx.programs import (dispatcher_program, producer_program,
                                 walker_program)


def build_table1_report() -> Report:
    """Table 1 as reported: each instruction and the units that use it,
    cross-checked against the generated production programs."""
    report = Report("Table 1: Widx ISA (H = dispatcher, W = walker, "
                    "P = producer)",
                    columns=["instruction", "H", "W", "P", "seen_in_programs"])
    programs = {
        "H": dispatcher_program(ROBUST_HASH_64, KERNEL_LAYOUT).program,
        "W": walker_program(MONETDB_LAYOUT).program,
        "P": producer_program(8).program,
    }
    for opcode in Opcode:
        if opcode in (Opcode.EMIT, Opcode.HALT):
            continue  # modelling additions, not Table 1 rows
        allowed = UNIT_USAGE[opcode]
        seen = "".join(sorted(role for role, program in programs.items()
                              if program.uses_opcode(opcode)))
        report.add_row(opcode.value.upper(),
                       "X" if "H" in allowed else "",
                       "X" if "W" in allowed else "",
                       "X" if "P" in allowed else "",
                       seen or "-")
    return report


def test_table1(benchmark, record):
    report = run_once(benchmark, build_table1_report)
    record(report, "table1")
    rows = {row[0]: row for row in report.rows}
    # ST is producer-only and the producer actually uses it.
    assert rows["ST"][1:4] == ("", "", "X")
    assert "P" in rows["ST"][4]
    # Fused shift-ops drive hashing; the generated dispatcher uses them.
    assert "H" in rows["ADD-SHF"][4] or "H" in rows["XOR-SHF"][4]
    # Every generated program stays inside its Table 1 column (the
    # assembler enforces this; reaching here means it held).
    assert len(report.rows) == 15


def test_area(benchmark, record):
    report = run_once(benchmark, run_area)
    record(report, "area")
    unit_row = [r for r in report.rows if r[0].startswith("Widx unit")][0]
    complex_row = [r for r in report.rows if "complex" in r[0]][0]
    a8_row = [r for r in report.rows if "A8" in r[0]][0]
    # Paper: 0.039 mm2 / 53 mW per unit; 0.24 mm2 / 320 mW for six units;
    # 18% of a Cortex-A8.
    assert unit_row[1] == 0.039 and unit_row[2] == 0.053
    assert abs(complex_row[1] - 0.234) < 0.01
    assert abs(complex_row[2] - 0.318) < 0.01
    assert abs(complex_row[1] / a8_row[1] - 0.18) < 0.02
