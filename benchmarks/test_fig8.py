"""Benchmark: regenerate Figure 8 (Widx on the hash-join kernel)."""

from benchmarks.conftest import run_once
from repro.harness.fig8 import run_fig8a, run_fig8b
from repro.harness.runner import geomean


def test_fig8a(benchmark, record, cache):
    report = run_once(benchmark, run_fig8a, cache)
    record(report, "fig8a")
    total = lambda size, walkers: report.rows[
        [i for i, r in enumerate(report.rows)
         if r[0] == size and r[1] == walkers][0]][-1]
    # Memory time (and so total) grows with index size at every walker count.
    for walkers in (1, 2, 4):
        assert total("Small", walkers) < total("Medium", walkers) \
            < total("Large", walkers)
    # Walkers cut cycles near-linearly (paper: linear reduction in Mem).
    for size in ("Small", "Medium", "Large"):
        assert 1.6 < total(size, 1) / total(size, 2) < 2.4
        assert 2.8 < total(size, 1) / total(size, 4) < 4.8
    # TLB cycles appear only for the Large (DRAM/TLB-stressing) index.
    tlb_small = report.cell("size", "Small", "tlb")
    assert tlb_small < 0.01
    large_rows = [r for r in report.rows if r[0] == "Large"]
    assert any(r[4] > 0.01 for r in large_rows)


def test_fig8b(benchmark, record, cache):
    report = run_once(benchmark, run_fig8b, cache)
    record(report, "fig8b")
    one_walker = report.column("1_walkers")
    four_walkers = report.column("4_walkers")
    # Paper: one walker is roughly baseline speed (geomean ~1.04x)...
    assert 0.7 < geomean(one_walker) < 1.3
    # ...and four walkers reach 2-4x (up to 4x on Large).
    assert all(2.0 < s < 4.8 for s in four_walkers)
    assert 2.5 < geomean(four_walkers) < 4.2
