"""Benchmark: regenerate Figure 10 (DSS indexing speedups) and the
Section 6.2 query-level projection."""

from benchmarks.conftest import run_once
from repro.harness.fig10 import run_fig10, run_query_level
from repro.harness.runner import geomean


def test_fig10(benchmark, record, cache):
    report = run_once(benchmark, run_fig10, cache)
    record(report, "fig10")
    speedups = dict(zip(report.column("query"), report.column("4_walkers")))
    # Paper: geomean 3.1x at four walkers, per-query 1.5x-5.5x.
    assert 2.5 < geomean(list(speedups.values())) < 3.7
    assert all(1.3 < s < 5.5 for s in speedups.values())
    # The L1-resident TPC-DS queries benefit least (paper: min is qry37).
    l1_queries = {"qry5", "qry37", "qry64", "qry82"}
    weakest = min(speedups, key=speedups.get)
    assert weakest in l1_queries
    # Memory-intensive TPC-H queries (19/22) are at the top of the range.
    strongest = max(speedups, key=speedups.get)
    assert strongest in {"qry19", "qry20", "qry22"}


def test_query_level_speedup(benchmark, record, cache):
    report = run_once(benchmark, run_query_level, cache)
    record(report, "query_level")
    by_query = dict(zip(report.column("query"),
                        report.column("query_speedup")))
    overall = geomean(list(by_query.values()))
    # Paper: geomean 1.5x; max 3.1x on qry17 (94% indexing);
    # min ~10% on qry37 (29% offloaded).
    assert 1.3 < overall < 1.8
    assert max(by_query, key=by_query.get) == "qry17"
    assert by_query["qry17"] > 2.2
    assert min(by_query, key=by_query.get) == "qry37"
    assert 1.05 < by_query["qry37"] < 1.45
