"""Benchmark: regenerate Figure 11 (runtime / energy / energy-delay)."""

from benchmarks.conftest import run_once
from repro.harness.fig11 import run_fig11


def test_fig11(benchmark, record, cache):
    report = run_once(benchmark, run_fig11, cache)
    record(report, "fig11")
    runtime = dict(zip(report.column("design"), report.column("runtime")))
    energy = dict(zip(report.column("design"), report.column("energy")))
    edp = dict(zip(report.column("design"), report.column("energy_delay")))

    # Runtime ordering: Widx < OoO < in-order (paper: 0.32 / 1.0 / 2.2;
    # our in-order lands nearer ~1.5x — see EXPERIMENTS.md).
    assert runtime["widx"] < 0.5
    assert runtime["inorder"] > 1.2

    # Paper: Widx saves 83% of the OoO core's energy; in-order saves 86%.
    assert 0.75 < 1 - energy["widx"] < 0.90
    assert 1 - energy["inorder"] > 0.80

    # Paper: Widx improves energy-delay 17.5x over OoO and is the best
    # design point overall.
    assert 10.0 < 1.0 / edp["widx"] < 25.0
    assert edp["widx"] < edp["inorder"] < edp["ooo"]
