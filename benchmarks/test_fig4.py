"""Benchmark: regenerate Figure 4 (the bottleneck analysis)."""

from benchmarks.conftest import run_once
from repro.harness.fig4 import run_fig4a, run_fig4b, run_fig4c
from repro.model.analytical import AnalyticalModel, max_walkers_by_mshrs


def test_fig4a(benchmark, record):
    report = run_once(benchmark, run_fig4a)
    record(report, "fig4a")
    model = AnalyticalModel()
    # Paper: 1 port bottlenecks >6 walkers at low miss; 2 ports carry 10.
    assert model.mem_ops_per_cycle(0.0, 7) > 1.0
    assert model.mem_ops_per_cycle(0.0, 6) <= 1.0
    assert all(value <= 2.0 for value in report.column("10_walkers"))


def test_fig4b(benchmark, record):
    report = run_once(benchmark, run_fig4b)
    record(report, "fig4b")
    # Paper: 8-10 MSHRs cap the design at four or five walkers.
    assert max_walkers_by_mshrs() in (4, 5)
    misses = report.column("outstanding_misses")
    assert misses == sorted(misses)  # linear growth


def test_fig4c(benchmark, record):
    report = run_once(benchmark, run_fig4c)
    record(report, "fig4c")
    values = dict(zip(report.column("llc_miss_ratio"),
                      report.column("walkers_per_mc")))
    # Paper: ~8 walkers/MC at low miss ratios, dropping to ~4.
    assert 6.5 < values[0.1] < 9.5
    assert 3.5 < values[1.0] < 5.5
