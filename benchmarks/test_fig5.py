"""Benchmark: regenerate Figure 5 (dispatcher-to-walker balance)."""

from benchmarks.conftest import run_once
from repro.harness.fig5 import run_fig5
from repro.model.analytical import AnalyticalModel


def test_fig5(benchmark, record):
    report = run_once(benchmark, run_fig5)
    record(report, "fig5")
    model = AnalyticalModel()
    # Paper: one dispatcher feeds four walkers except for shallow buckets
    # at low LLC miss ratios.
    assert model.walker_utilization(0.5, 4, 2) >= 0.8
    assert model.walker_utilization(0.0, 4, 1) < 0.5
    # Utilization rises with both bucket depth and miss ratio everywhere.
    for walkers_column in ("2_walkers", "4_walkers", "8_walkers"):
        for depth in (1, 2, 3):
            series = [row for row in report.rows if row[0] == depth]
            index = list(report.columns).index(walkers_column)
            values = [row[index] for row in series]
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
