"""Benchmark: regenerate Figure 9 (DSS walker cycle breakdowns)."""

from benchmarks.conftest import run_once
from repro.harness.fig9 import run_fig9a, run_fig9b


def test_fig9a(benchmark, record, cache):
    report = run_once(benchmark, run_fig9a, cache)
    record(report, "fig9a")
    rows = {(r[0], r[1]): r for r in report.rows}
    # Linear cycles-per-tuple reduction with walker count.
    for query in ("qry2", "qry11", "qry17", "qry19", "qry20", "qry22"):
        assert rows[(query, 4)][-1] < 0.45 * rows[(query, 1)][-1]
    # Small-index queries (2, 11, 17) have no TLB stalls; memory-intensive
    # ones (19, 20, 22) show them (paper: up to 8%).
    for query in ("qry2", "qry11", "qry17"):
        assert rows[(query, 1)][4] < 0.01 * rows[(query, 1)][-1]
    tlb_shares = [rows[(q, 1)][4] / rows[(q, 1)][-1]
                  for q in ("qry19", "qry20", "qry22")]
    assert max(tlb_shares) > 0.01
    assert max(tlb_shares) < 0.15


def test_fig9b(benchmark, record, cache):
    report = run_once(benchmark, run_fig9b, cache)
    record(report, "fig9b")
    rows = {(r[0], r[1]): r for r in report.rows}
    # Paper: "consistently lower memory time" than TPC-H — compare the
    # per-benchmark maxima at one walker (mind the Y-axis change).
    fig9a = run_fig9a(cache)
    tpch_max_total = max(r[-1] for r in fig9a.rows if r[1] == 1)
    tpcds_max_total = max(r[-1] for r in report.rows if r[1] == 1)
    assert tpcds_max_total < 0.5 * tpch_max_total
    # L1-resident queries leave walkers partially idle at 4 walkers.
    for query in ("qry5", "qry37", "qry64", "qry82"):
        row = rows[(query, 4)]
        assert row[5] > 0.15 * row[-1], query
    # The LLC-class queries (40, 52) do not idle meaningfully.
    for query in ("qry40", "qry52"):
        row = rows[(query, 4)]
        assert row[5] < 0.15 * row[-1], query
