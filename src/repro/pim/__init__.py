"""Near-memory (PIM) walker backend.

The third backend class next to the host cores and the core-coupled Widx
unit: the same walker machine (:mod:`repro.widx.unit` /
:mod:`repro.widx.machine`), attached to memory at the DRAM banks instead
of behind a host L1 or the LLC.  Concretely (HashMem in PAPERS.md is the
blueprint):

- node hops read the bank array in place — no LLC lookup, no crossbar
  traversal, no off-chip channel (:class:`~repro.mem.pimside.PimBankMemory`);
- each bank sustains at most ``walkers_per_bank`` concurrent accesses;
  conflicts serialize (:class:`~repro.mem.dram.DramBankPorts`);
- arming the walkers costs an explicit host↔PIM command/launch latency
  (``PimConfig.launch_cycles``, charged with the control-block load);
- every emitted result returns to the host over the existing
  interconnect (stores pay ``interconnect_cycles`` on completion).

:func:`offload_probe_pim` is the entry point: a thin wrapper over
:func:`repro.widx.offload.offload_probe` that pins the ``pim`` placement.
:func:`pim_config` builds the corresponding :class:`SystemConfig`.  The
differential twins live in :mod:`repro.pim.reference`.
"""

from __future__ import annotations

from typing import Optional

from ..config import DEFAULT_CONFIG, SystemConfig
from ..db.column import Column
from ..db.hashtable import HashIndex
from ..widx.offload import OffloadOutcome, offload_probe
from .reference import ReferencePimUnit, use_reference_pim_memory

__all__ = [
    "ReferencePimUnit",
    "offload_probe_pim",
    "pim_config",
    "use_reference_pim_memory",
]


def pim_config(config: SystemConfig = DEFAULT_CONFIG, *,
               walkers: Optional[int] = None,
               mode: Optional[str] = None,
               banks: Optional[int] = None,
               walkers_per_bank: Optional[int] = None,
               launch_cycles: Optional[float] = None) -> SystemConfig:
    """A copy of ``config`` with the walkers placed at the DRAM banks.

    Keyword overrides adjust the walker organization (``walkers``,
    ``mode``) and the PIM attachment parameters (``banks``,
    ``walkers_per_bank``, ``launch_cycles``) in one call; anything left
    ``None`` keeps the incoming config's value.
    """
    widx_overrides: dict = {"placement": "pim"}
    if walkers is not None:
        widx_overrides["num_walkers"] = walkers
    if mode is not None:
        widx_overrides["mode"] = mode
    pim_overrides: dict = {}
    if banks is not None:
        pim_overrides["num_banks"] = banks
    if walkers_per_bank is not None:
        pim_overrides["walkers_per_bank"] = walkers_per_bank
    if launch_cycles is not None:
        pim_overrides["launch_cycles"] = launch_cycles
    config = config.with_widx(**widx_overrides)
    if pim_overrides:
        config = config.with_pim(**pim_overrides)
    return config


def offload_probe_pim(index: HashIndex, probe_column: Column, *,
                      config: SystemConfig = DEFAULT_CONFIG,
                      **kwargs) -> OffloadOutcome:
    """Probe ``index`` on bank-side walkers; returns timing plus results.

    Accepts everything :func:`repro.widx.offload.offload_probe` does;
    the configuration is forced onto the ``pim`` placement first (a
    config already placed there passes through unchanged).
    """
    if config.widx.placement != "pim":
        config = pim_config(config)
    return offload_probe(index, probe_column, config=config, **kwargs)
