"""Reference twins for differential-testing the PIM backend.

:class:`ReferencePimUnit` is the naive interpreter for bank-side walkers.
The PIM placement reuses the Widx unit model unchanged — only the memory
attachment differs — so the twin *is*
:class:`~repro.widx.reference.ReferenceWidxUnit`: the straightforward
pre-overhaul interpreter (opcode-enum dispatch, per-operand register
dereference, no memoized decode) with timing, stats and architectural
semantics identical to the optimized :class:`~repro.widx.unit.WidxUnit`.
The subclass exists so the PIM differential suites and the
``pim_fig8_point`` benchmark name their oracle explicitly, and so a
future PIM-specific unit change *must* come with its own naive twin
here or the differential wall fails.

:func:`use_reference_pim_memory` is the bank-side analogue of
:func:`~repro.mem.reference.use_reference_arrays`: it swaps the PIM
scratch buffer for the recency-list :class:`ReferenceCacheLevel` (a
:class:`~repro.mem.pimside.PimBankMemory` has no LLC to swap).

Do not "improve" these: their value is being obviously correct, not fast.
"""

from __future__ import annotations

from ..mem.pimside import PimBankMemory
from ..mem.reference import ReferenceCacheLevel
from ..widx.reference import ReferenceWidxUnit


class ReferencePimUnit(ReferenceWidxUnit):
    """Bank-side walker with the naive instruction-by-instruction
    interpreter — the oracle the optimized PIM offloads must match
    bit for bit."""


def use_reference_pim_memory(memory: PimBankMemory) -> PimBankMemory:
    """Swap the PIM scratch buffer for the naive reference implementation.

    Must run before any accesses or warm-up touch the memory (the arrays
    start empty).  Returns the memory for chaining.
    """
    memory.l1d = ReferenceCacheLevel(memory.l1d.cfg, memory.l1d.name)
    # The memory's stats view aliases the buffer's stats; re-alias it to
    # the fresh reference level.
    memory.stats.l1d = memory.l1d.stats
    return memory
