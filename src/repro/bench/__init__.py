"""Micro-benchmarks for the simulator's hot paths.

Each benchmark times the optimized implementation against its
*deliberately naive* reference twin (the same oracles the differential
tests compare against) and asserts the two produce **bit-identical**
simulated results before reporting a speedup.  That coupling is the
point: a benchmark that got faster by changing behaviour fails loudly
instead of reporting a bogus win.

Three benchmarks cover the three overhauled layers:

``engine_dispatch``
    A wakeup storm: many processes yielding seeded random delays, timed
    on the pooled-entry batching :class:`~repro.sim.engine.Engine`
    versus the linear-scan :class:`~repro.sim.reference.ReferenceEngine`.

``cache_probe``
    A lookup-dominated probe storm on the LLC geometry, timed on the
    flat tick-LRU :class:`~repro.mem.cache.CacheArray` versus the
    recency-list :class:`~repro.mem.reference.ReferenceCacheArray`.

``fig8_point``
    One full Figure-8 style offloaded bulk probe (hash join, 4 walkers),
    timed end-to-end on the optimized stack versus the full naive stack
    (reference engine + reference cache levels + reference interpreter).

Run via ``python -m repro.bench`` (see :mod:`repro.bench.__main__`); the
committed ``BENCH_sim.json`` baseline is regenerated with ``--output``
(which enforces the acceptance floors) and guarded in CI with
``--check`` (which fails on fingerprint drift or a >20% speedup
regression relative to the baseline).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG
from ..db.column import Column
from ..db.datagen import make_rng, probe_keys, unique_keys
from ..db.hashfn import ROBUST_HASH_32
from ..db.hashtable import HashIndex, choose_num_buckets
from ..db.node import KERNEL_LAYOUT
from ..db.types import DataType
from ..mem.cache import CacheArray
from ..mem.hierarchy import MemoryHierarchy
from ..mem.layout import AddressSpace
from ..mem.reference import ReferenceCacheArray, use_reference_arrays
from ..sim.engine import Engine
from ..sim.reference import ReferenceEngine
from ..widx.offload import offload_probe
from ..widx.reference import ReferenceWidxUnit

#: Acceptance floors (ISSUE): minimum speedup each benchmark must show
#: when a new baseline is generated with ``--output``.
FLOORS: Dict[str, float] = {
    "engine_dispatch": 1.5,
    "cache_probe": 1.5,
    "fig8_point": 1.25,
}

#: ``--check`` tolerance: fail if the measured speedup drops below
#: ``baseline_speedup * (1 - REGRESSION_TOLERANCE)``.
REGRESSION_TOLERANCE = 0.20

SCHEMA = "repro-bench/1"


@dataclass
class BenchResult:
    """Outcome of one optimized-vs-reference measurement."""

    name: str
    optimized_s: float
    reference_s: float
    fingerprint: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.reference_s / self.optimized_s

    @property
    def floor(self) -> float:
        return FLOORS[self.name]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: speedup, both timings, floor and fingerprint."""
        return {
            "speedup": round(self.speedup, 4),
            "optimized_s": round(self.optimized_s, 6),
            "reference_s": round(self.reference_s, 6),
            "floor": self.floor,
            "fingerprint": self.fingerprint,
        }


def _crc(value: object) -> int:
    """Stable checksum of a repr — compact fingerprint for large results."""
    return zlib.crc32(repr(value).encode("ascii"))


def _time_best(setup: Callable[[], object], run: Callable[[object], object],
               repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time; asserts every repeat's result is
    identical (the workloads are deterministic by construction)."""
    best_time: Optional[float] = None
    result: object = None
    for attempt in range(repeats):
        state = setup()
        start = perf_counter()
        outcome = run(state)
        elapsed = perf_counter() - start
        if attempt == 0:
            result = outcome
        elif outcome != result:
            raise AssertionError("non-deterministic benchmark run")
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, result


# ----------------------------------------------------------------------
# engine_dispatch: wakeup storm on the discrete-event engine
# ----------------------------------------------------------------------

_ENGINE_PROCS = 40
_ENGINE_STEPS = 400


def _engine_workload(engine: Engine) -> List[Tuple[str, float]]:
    """Spawn the storm and run it; returns the completion trace."""
    completions: List[Tuple[str, float]] = []

    def worker(name: str, seed: int):
        rng = random.Random(seed)
        for _ in range(_ENGINE_STEPS):
            yield rng.random() * 4.0
        completions.append((name, engine.now))

    for index in range(_ENGINE_PROCS):
        name = f"w{index}"
        engine.process(worker(name, 1000 + index), name=name)
    engine.run()
    return completions


def bench_engine_dispatch(repeats: int) -> BenchResult:
    """Time the optimized engine against the linear-scan reference."""

    def run(engine):
        trace = _engine_workload(engine)
        return (round(engine.now, 9), engine.dispatched.value, tuple(trace))

    optimized_s, opt = _time_best(Engine, run, repeats)
    reference_s, ref = _time_best(ReferenceEngine, run, repeats)
    if opt != ref:
        raise AssertionError(
            "engine benchmark: optimized and reference runs diverged")
    final_now, dispatched, trace = opt
    return BenchResult(
        name="engine_dispatch",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "final_now": final_now,
            "dispatched": dispatched,
            "trace_crc": _crc(trace),
        },
    )


# ----------------------------------------------------------------------
# cache_probe: lookup-dominated storm on the LLC tag array
# ----------------------------------------------------------------------

_CACHE_OPS = 400_000
_CACHE_SEED = 5
_CACHE_LOOKUP_FRACTION = 0.9


def _cache_ops() -> List[Tuple[bool, int]]:
    """Deterministic (is_lookup, block) op stream over the LLC footprint."""
    cfg = DEFAULT_CONFIG.llc
    footprint = cfg.num_sets * cfg.associativity  # exactly one capacity
    rng = random.Random(_CACHE_SEED)
    ops = []
    for _ in range(_CACHE_OPS):
        is_lookup = rng.random() < _CACHE_LOOKUP_FRACTION
        ops.append((is_lookup, rng.randrange(footprint)))
    return ops


def _cache_workload(array, ops) -> Tuple[int, int, int]:
    """Apply the op stream; returns (hits, victims_crc, resident)."""
    hits = 0
    victims: List[int] = []
    lookup = array.lookup
    insert = array.insert
    for is_lookup, block in ops:
        if is_lookup:
            if lookup(block):
                hits += 1
        else:
            victim = insert(block)
            if victim is not None:
                victims.append(victim)
    return hits, _crc(victims), array.resident_blocks()


def bench_cache_probe(repeats: int) -> BenchResult:
    """Time the flat tick-LRU array against the recency-list reference."""
    cfg = DEFAULT_CONFIG.llc
    ops = _cache_ops()

    optimized_s, opt = _time_best(
        lambda: CacheArray(cfg), lambda array: _cache_workload(array, ops),
        repeats)
    reference_s, ref = _time_best(
        lambda: ReferenceCacheArray(cfg),
        lambda array: _cache_workload(array, ops), repeats)
    if opt != ref:
        raise AssertionError(
            "cache benchmark: optimized and reference arrays diverged")
    hits, victims_crc, resident = opt
    return BenchResult(
        name="cache_probe",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "ops": _CACHE_OPS,
            "hits": hits,
            "victims_crc": victims_crc,
            "resident": resident,
        },
    )


# ----------------------------------------------------------------------
# fig8_point: one full offloaded bulk probe, optimized vs naive stack
# ----------------------------------------------------------------------

_FIG8_KEYS = 20_000
_FIG8_PROBES = 2_000
_FIG8_WALKERS = 4


def _build_fig8_inputs() -> Tuple[HashIndex, Column]:
    """A hash-join style index plus a fully-matching probe column.

    Rebuilt for every timed run so simulated addresses — and therefore
    simulated cycles — are identical across repeats and stacks.
    """
    space = AddressSpace()
    keys = unique_keys(_FIG8_KEYS, 4, make_rng(11))
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(_FIG8_KEYS, 1.0),
                      ROBUST_HASH_32, capacity=_FIG8_KEYS)
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
    values = probe_keys(np.asarray(keys), _FIG8_PROBES, 1.0, 4, make_rng(13))
    column = Column("probes", DataType.for_key_bytes(4), values)
    column.materialize(space)
    return index, column


def _fig8_outcome_key(outcome) -> Tuple:
    unit_counts = tuple(
        (name, stats.instructions.value, stats.invocations.value)
        for name, stats in sorted(outcome.run.unit_stats.items()))
    return (outcome.run.total_cycles, outcome.run.matches,
            tuple(outcome.payloads), unit_counts)


def bench_fig8_point(repeats: int) -> BenchResult:
    """Time one Figure-8 point end-to-end against the full naive stack."""
    config = DEFAULT_CONFIG.with_widx(num_walkers=_FIG8_WALKERS)

    def run_optimized(state):
        index, column = state
        outcome = offload_probe(index, column, config=config,
                                probes=_FIG8_PROBES)
        return _fig8_outcome_key(outcome)

    def run_reference(state):
        index, column = state
        outcome = offload_probe(
            index, column, config=config, probes=_FIG8_PROBES,
            memory=use_reference_arrays(MemoryHierarchy(config)),
            engine=ReferenceEngine(),
            unit_cls=ReferenceWidxUnit)
        return _fig8_outcome_key(outcome)

    optimized_s, opt = _time_best(_build_fig8_inputs, run_optimized, repeats)
    reference_s, ref = _time_best(_build_fig8_inputs, run_reference, repeats)
    if opt != ref:
        raise AssertionError(
            "fig8 benchmark: optimized and reference stacks diverged")
    total_cycles, matches, payloads, unit_counts = opt
    return BenchResult(
        name="fig8_point",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "total_cycles": total_cycles,
            "matches": matches,
            "payloads_crc": _crc(payloads),
            "instructions": sum(count[1] for count in unit_counts),
        },
    )


BENCHMARKS: Dict[str, Callable[[int], BenchResult]] = {
    "engine_dispatch": bench_engine_dispatch,
    "cache_probe": bench_cache_probe,
    "fig8_point": bench_fig8_point,
}


def run_benchmarks(repeats: int = 3,
                   only: Optional[List[str]] = None) -> List[BenchResult]:
    """Run the selected benchmarks (all by default), in declaration order."""
    names = list(BENCHMARKS) if not only else only
    results = []
    for name in names:
        if name not in BENCHMARKS:
            raise KeyError(f"unknown benchmark {name!r}; "
                           f"choose from {sorted(BENCHMARKS)}")
        results.append(BENCHMARKS[name](repeats))
    return results
