"""Micro-benchmarks for the simulator's hot paths.

Each benchmark times the optimized implementation against its
*deliberately naive* reference twin (the same oracles the differential
tests compare against) and asserts the two produce **bit-identical**
simulated results before reporting a speedup.  That coupling is the
point: a benchmark that got faster by changing behaviour fails loudly
instead of reporting a bogus win.

Three benchmarks cover the three overhauled layers:

``engine_dispatch``
    A wakeup storm: many processes yielding seeded random delays, timed
    on the pooled-entry batching :class:`~repro.sim.engine.Engine`
    versus the linear-scan :class:`~repro.sim.reference.ReferenceEngine`.

``cache_probe``
    A lookup-dominated probe storm on the LLC geometry, timed on the
    flat tick-LRU :class:`~repro.mem.cache.CacheArray` versus the
    recency-list :class:`~repro.mem.reference.ReferenceCacheArray`.

``fig8_point``
    One full Figure-8 style offloaded bulk probe (hash join, 4 walkers),
    timed end-to-end on the optimized stack versus the full naive stack
    (reference engine + reference cache levels + reference interpreter).

``pim_fig8_point``
    The same offloaded bulk probe on the bank-side walker backend
    (:mod:`repro.pim`), timed on the optimized stack versus the full
    naive PIM stack (reference engine + reference bank-buffer array +
    reference interpreter via :func:`~repro.pim.use_reference_pim_memory`
    and :class:`~repro.pim.ReferencePimUnit`).

Two cover the ordered-index zoo's offloads, each against the full naive
stack (reference engine + reference cache levels + reference
interpreter):

``trie_fig8_point``
    One offloaded MLP-trie probe batch (Cuckoo-Trie fetch pattern,
    4 walkers) on the ordered Small workload, timed end-to-end on the
    optimized stack versus the naive twin.

``batched_tree_serve``
    One level-wise batched B+-tree offload (the coupled organization
    the serving layer's ``batched`` backend runs per admitted batch),
    timed the same way; the fingerprint additionally pins the serving
    layer's calibrated per-batch service times so drift in the
    ``--batched-tree`` fig-serve column fails ``--check`` loudly.

Two more cover bulk mode, where the reference twin is the *production*
discrete-event path itself (bulk's contract is bit identity with it):

``bulk_fig8_point``
    One Figure-8 baseline-core measurement, timed on the array-program
    replay (:func:`~repro.sim.bulk.bulk_measure_indexing`) versus the
    event-driven :func:`~repro.cpu.timing.measure_indexing`.

``bulk_serve_sweep``
    A fig-serve style offered-load sweep (five load fractions, fifo
    policy, four cores), timed with ``bulk=True`` versus the
    discrete-event serving engine.

One guards the resilience layer, where the reference twin is the plain
serving DES (the resilient clean path's contract is bit identity with
it) and the floor bounds *overhead* rather than demanding a speedup:

``resilience_sweep``
    An offered-load sweep run through the resilient serving path with
    only an SLO armed (no shedding, no faults) versus the plain DES;
    the fingerprint also pins a seeded shed+fault+fallback sweep so any
    drift in the degraded-mode machinery fails ``--check`` loudly.

``serve_core_refactor``
    The same resilient-vs-plain comparison with a *tight* floor: the
    resilient path now routes every decision through the extracted
    transport-agnostic :class:`~repro.serve.core.ServingCore`, and this
    floor (0.79 = the pre-extraction 0.83 ratio less a 5% allowance)
    proves the extraction itself cost at most ~5% on the DES driver.
    The fingerprint additionally replays a slice of the sweep through
    the third driver — :class:`~repro.live.service.LiveService` in
    deterministic replay — so cross-driver drift in the shared core
    fails ``--check``.

Run via ``python -m repro.bench`` (see :mod:`repro.bench.__main__`); the
committed ``BENCH_sim.json`` baseline is regenerated with ``--output``
(which enforces the acceptance floors) and guarded in CI with
``--check`` (which fails on fingerprint drift or a >20% speedup
regression relative to the baseline).
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG
from ..cpu.timing import measure_indexing
from ..db.column import Column
from ..db.datagen import make_rng, probe_keys, unique_keys
from ..db.hashfn import ROBUST_HASH_32
from ..db.hashtable import HashIndex, choose_num_buckets
from ..db.node import KERNEL_LAYOUT
from ..db.types import DataType
from ..mem.cache import CacheArray
from ..mem.hierarchy import MemoryHierarchy
from ..mem.layout import AddressSpace
from ..mem.pimside import PimBankMemory
from ..mem.reference import ReferenceCacheArray, use_reference_arrays
from ..pim import (ReferencePimUnit, pim_config,
                   use_reference_pim_memory)
from ..serve.faults import WalkerFaultModel
from ..serve.policies import FifoPolicy, parse_policy
from ..serve.service import ServiceModel, measure_service
from ..serve.simulate import (ResilienceConfig, build_requests,
                              simulate_service)
from ..sim.bulk import bulk_measure_indexing
from ..sim.engine import Engine
from ..sim.reference import ReferenceEngine
from ..widx.offload import (offload_batched_tree, offload_probe,
                            offload_trie_search)
from ..widx.reference import ReferenceWidxUnit
from ..workloads.ordered_kernel import build_ordered_workload

#: Acceptance floors (ISSUE): minimum speedup each benchmark must show
#: when a new baseline is generated with ``--output``.
FLOORS: Dict[str, float] = {
    "engine_dispatch": 1.5,
    "cache_probe": 1.5,
    "fig8_point": 1.25,
    # The PIM stack's hot loop is the same interpreter + engine; the
    # bank-port model is cheap on both sides, so the optimized stack
    # must still beat the naive twin, if by a smaller margin.
    "pim_fig8_point": 1.0,
    # The ordered offloads run the same interpreter + engine hot loop as
    # fig8_point; the trie walk adds prefetch TOUCHes (cheap on both
    # stacks) and the batched walk is dominated by in-register compares,
    # so both must still clearly beat the naive twin.
    "trie_fig8_point": 1.25,
    "batched_tree_serve": 1.25,
    "bulk_fig8_point": 5.0,
    "bulk_serve_sweep": 10.0,
    # Parity benchmark: the resilient clean path versus the plain DES.
    # The floor bounds overhead (resilient may cost at most 2x plain)
    # instead of demanding a speedup.
    "resilience_sweep": 0.5,
    # Refactor guard: the resilient path measured 0.83x plain before the
    # serving core was extracted into repro.serve.core; this floor
    # allows the extraction at most ~5% additional overhead on top.
    "serve_core_refactor": 0.79,
}

#: ``--check`` tolerance: fail if the measured speedup drops below
#: ``baseline_speedup * (1 - REGRESSION_TOLERANCE)``.
REGRESSION_TOLERANCE = 0.20

SCHEMA = "repro-bench/1"


@dataclass
class BenchResult:
    """Outcome of one optimized-vs-reference measurement."""

    name: str
    optimized_s: float
    reference_s: float
    fingerprint: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.reference_s / self.optimized_s

    @property
    def floor(self) -> float:
        return FLOORS[self.name]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: speedup, both timings, floor and fingerprint."""
        return {
            "speedup": round(self.speedup, 4),
            "optimized_s": round(self.optimized_s, 6),
            "reference_s": round(self.reference_s, 6),
            "floor": self.floor,
            "fingerprint": self.fingerprint,
        }


def _crc(value: object) -> int:
    """Stable checksum of a repr — compact fingerprint for large results."""
    return zlib.crc32(repr(value).encode("ascii"))


def _stable_crc(payload: object) -> int:
    """Checksum of a JSON-ready payload, insensitive to dict insertion
    order (bulk and DES runs build equal dicts in different orders)."""
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode("ascii"))


def _time_best(setup: Callable[[], object], run: Callable[[object], object],
               repeats: int,
               key: Optional[Callable[[object], object]] = None
               ) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time; asserts every repeat's result is
    identical (the workloads are deterministic by construction).

    ``key``, when given, reduces the run's outcome to a comparable
    fingerprint *outside* the timed region — checksumming a large result
    can rival the optimized stack's own runtime, which would otherwise
    compress the reported speedup.
    """
    best_time: Optional[float] = None
    result: object = None
    for attempt in range(repeats):
        elapsed, keyed = _time_once(setup, run, key)
        if attempt == 0:
            result = keyed
        elif keyed != result:
            raise AssertionError("non-deterministic benchmark run")
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, result


def _time_once(setup: Callable[[], object], run: Callable[[object], object],
               key: Optional[Callable[[object], object]] = None
               ) -> Tuple[float, object]:
    """One setup + timed run; the key reduction stays untimed."""
    state = setup()
    start = perf_counter()
    outcome = run(state)
    elapsed = perf_counter() - start
    return elapsed, key(outcome) if key is not None else outcome


# ----------------------------------------------------------------------
# engine_dispatch: wakeup storm on the discrete-event engine
# ----------------------------------------------------------------------

_ENGINE_PROCS = 40
_ENGINE_STEPS = 400


def _engine_workload(engine: Engine) -> List[Tuple[str, float]]:
    """Spawn the storm and run it; returns the completion trace."""
    completions: List[Tuple[str, float]] = []

    def worker(name: str, seed: int):
        rng = random.Random(seed)
        for _ in range(_ENGINE_STEPS):
            yield rng.random() * 4.0
        completions.append((name, engine.now))

    for index in range(_ENGINE_PROCS):
        name = f"w{index}"
        engine.process(worker(name, 1000 + index), name=name)
    engine.run()
    return completions


def bench_engine_dispatch(repeats: int) -> BenchResult:
    """Time the optimized engine against the linear-scan reference."""

    def run(engine):
        trace = _engine_workload(engine)
        return (round(engine.now, 9), engine.dispatched.value, tuple(trace))

    optimized_s, opt = _time_best(Engine, run, repeats)
    reference_s, ref = _time_best(ReferenceEngine, run, repeats)
    if opt != ref:
        raise AssertionError(
            "engine benchmark: optimized and reference runs diverged")
    final_now, dispatched, trace = opt
    return BenchResult(
        name="engine_dispatch",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "final_now": final_now,
            "dispatched": dispatched,
            "trace_crc": _crc(trace),
        },
    )


# ----------------------------------------------------------------------
# cache_probe: lookup-dominated storm on the LLC tag array
# ----------------------------------------------------------------------

_CACHE_OPS = 400_000
_CACHE_SEED = 5
_CACHE_LOOKUP_FRACTION = 0.9


def _cache_ops() -> List[Tuple[bool, int]]:
    """Deterministic (is_lookup, block) op stream over the LLC footprint."""
    cfg = DEFAULT_CONFIG.llc
    footprint = cfg.num_sets * cfg.associativity  # exactly one capacity
    rng = random.Random(_CACHE_SEED)
    ops = []
    for _ in range(_CACHE_OPS):
        is_lookup = rng.random() < _CACHE_LOOKUP_FRACTION
        ops.append((is_lookup, rng.randrange(footprint)))
    return ops


def _cache_workload(array, ops) -> Tuple[int, int, int]:
    """Apply the op stream; returns (hits, victims_crc, resident)."""
    hits = 0
    victims: List[int] = []
    lookup = array.lookup
    insert = array.insert
    for is_lookup, block in ops:
        if is_lookup:
            if lookup(block):
                hits += 1
        else:
            victim = insert(block)
            if victim is not None:
                victims.append(victim)
    return hits, _crc(victims), array.resident_blocks()


def bench_cache_probe(repeats: int) -> BenchResult:
    """Time the flat tick-LRU array against the recency-list reference."""
    cfg = DEFAULT_CONFIG.llc
    ops = _cache_ops()

    optimized_s, opt = _time_best(
        lambda: CacheArray(cfg), lambda array: _cache_workload(array, ops),
        repeats)
    reference_s, ref = _time_best(
        lambda: ReferenceCacheArray(cfg),
        lambda array: _cache_workload(array, ops), repeats)
    if opt != ref:
        raise AssertionError(
            "cache benchmark: optimized and reference arrays diverged")
    hits, victims_crc, resident = opt
    return BenchResult(
        name="cache_probe",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "ops": _CACHE_OPS,
            "hits": hits,
            "victims_crc": victims_crc,
            "resident": resident,
        },
    )


# ----------------------------------------------------------------------
# fig8_point: one full offloaded bulk probe, optimized vs naive stack
# ----------------------------------------------------------------------

_FIG8_KEYS = 20_000
_FIG8_PROBES = 2_000
_FIG8_WALKERS = 4


def _build_fig8_inputs() -> Tuple[HashIndex, Column]:
    """A hash-join style index plus a fully-matching probe column.

    Rebuilt for every timed run so simulated addresses — and therefore
    simulated cycles — are identical across repeats and stacks.
    """
    space = AddressSpace()
    keys = unique_keys(_FIG8_KEYS, 4, make_rng(11))
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(_FIG8_KEYS, 1.0),
                      ROBUST_HASH_32, capacity=_FIG8_KEYS)
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
    values = probe_keys(np.asarray(keys), _FIG8_PROBES, 1.0, 4, make_rng(13))
    column = Column("probes", DataType.for_key_bytes(4), values)
    column.materialize(space)
    return index, column


def _fig8_outcome_key(outcome) -> Tuple:
    unit_counts = tuple(
        (name, stats.instructions.value, stats.invocations.value)
        for name, stats in sorted(outcome.run.unit_stats.items()))
    return (outcome.run.total_cycles, outcome.run.matches,
            tuple(outcome.payloads), unit_counts)


def bench_fig8_point(repeats: int) -> BenchResult:
    """Time one Figure-8 point end-to-end against the full naive stack."""
    config = DEFAULT_CONFIG.with_widx(num_walkers=_FIG8_WALKERS)

    def run_optimized(state):
        index, column = state
        outcome = offload_probe(index, column, config=config,
                                probes=_FIG8_PROBES)
        return _fig8_outcome_key(outcome)

    def run_reference(state):
        index, column = state
        outcome = offload_probe(
            index, column, config=config, probes=_FIG8_PROBES,
            memory=use_reference_arrays(MemoryHierarchy(config)),
            engine=ReferenceEngine(),
            unit_cls=ReferenceWidxUnit)
        return _fig8_outcome_key(outcome)

    optimized_s, opt = _time_best(_build_fig8_inputs, run_optimized, repeats)
    reference_s, ref = _time_best(_build_fig8_inputs, run_reference, repeats)
    if opt != ref:
        raise AssertionError(
            "fig8 benchmark: optimized and reference stacks diverged")
    total_cycles, matches, payloads, unit_counts = opt
    return BenchResult(
        name="fig8_point",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "total_cycles": total_cycles,
            "matches": matches,
            "payloads_crc": _crc(payloads),
            "instructions": sum(count[1] for count in unit_counts),
        },
    )


# ----------------------------------------------------------------------
# pim_fig8_point: the same offload on bank-side walkers, vs naive stack
# ----------------------------------------------------------------------

_PIM_BANKS = 8


def bench_pim_fig8_point(repeats: int) -> BenchResult:
    """Time one bank-side (PIM) Figure-8 point against its naive stack.

    Same workload and walker count as ``fig8_point``, but the offload
    runs on walkers colocated with the DRAM banks.  The reference twin
    swaps in the naive engine, the naive interpreter and the reference
    bank-buffer array, and the two stacks must agree bit-for-bit on
    cycles, matches and payloads before a speedup is reported.
    """
    config = pim_config(walkers=_FIG8_WALKERS, banks=_PIM_BANKS)

    def run_optimized(state):
        index, column = state
        outcome = offload_probe(index, column, config=config,
                                probes=_FIG8_PROBES)
        return _fig8_outcome_key(outcome)

    def run_reference(state):
        index, column = state
        outcome = offload_probe(
            index, column, config=config, probes=_FIG8_PROBES,
            memory=use_reference_pim_memory(PimBankMemory(config)),
            engine=ReferenceEngine(),
            unit_cls=ReferencePimUnit)
        return _fig8_outcome_key(outcome)

    optimized_s, opt = _time_best(_build_fig8_inputs, run_optimized, repeats)
    reference_s, ref = _time_best(_build_fig8_inputs, run_reference, repeats)
    if opt != ref:
        raise AssertionError(
            "pim benchmark: optimized and reference stacks diverged")
    total_cycles, matches, payloads, unit_counts = opt
    return BenchResult(
        name="pim_fig8_point",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "banks": _PIM_BANKS,
            "total_cycles": total_cycles,
            "matches": matches,
            "payloads_crc": _crc(payloads),
            "instructions": sum(count[1] for count in unit_counts),
        },
    )


# ----------------------------------------------------------------------
# trie_fig8_point / batched_tree_serve: the ordered-index zoo's offloads
# ----------------------------------------------------------------------

_ORDERED_BENCH_SIZE = "Small"
_ORDERED_BENCH_PROBES = 2_048
_BATCHED_BENCH_BATCH = 4
#: The serving layer's batched column calibrates these batch sizes
#: (``CALIBRATED_BATCHES x KEYS_PER_REQUEST`` in the fig-serve sweep).
_BATCHED_SERVE_KEYS = (8, 16, 32)


def _build_trie_bench_inputs():
    """The ordered Small trie plus its fully-matching probe column —
    the same recipe the fig-indexes trie row measures, rebuilt per run
    so simulated addresses are identical across repeats and stacks."""
    return build_ordered_workload("trie", _ORDERED_BENCH_SIZE,
                                  _ORDERED_BENCH_PROBES)


def _build_batched_bench_inputs():
    """The shared B+-tree probed level-wise by the batched walker."""
    return build_ordered_workload("batched", _ORDERED_BENCH_SIZE,
                                  _ORDERED_BENCH_PROBES)


def bench_trie_fig8_point(repeats: int) -> BenchResult:
    """Time one offloaded MLP-trie probe batch against the naive stack.

    Same shape as ``fig8_point``, but the walkers run the Cuckoo-Trie
    fetch pattern — all candidate bucket addresses computed from the
    key up front, then probed depth by depth.  The reference twin swaps
    in the naive engine, naive cache arrays and naive interpreter, and
    the two stacks must agree bit-for-bit (cycles, matches, payloads)
    before a speedup is reported; the driver-side validation pass is
    disabled so the timed region is purely the simulation stacks.
    """
    config = DEFAULT_CONFIG.with_widx(num_walkers=_FIG8_WALKERS)

    def run_optimized(state):
        index, column = state
        outcome = offload_trie_search(index, column, config=config,
                                      probes=_ORDERED_BENCH_PROBES,
                                      validate=False)
        return _fig8_outcome_key(outcome)

    def run_reference(state):
        index, column = state
        outcome = offload_trie_search(
            index, column, config=config, probes=_ORDERED_BENCH_PROBES,
            validate=False,
            memory=use_reference_arrays(MemoryHierarchy(config)),
            engine=ReferenceEngine(),
            unit_cls=ReferenceWidxUnit)
        return _fig8_outcome_key(outcome)

    optimized_s, opt = _time_best(_build_trie_bench_inputs, run_optimized,
                                  repeats)
    reference_s, ref = _time_best(_build_trie_bench_inputs, run_reference,
                                  repeats)
    if opt != ref:
        raise AssertionError(
            "trie benchmark: optimized and reference stacks diverged")
    total_cycles, matches, payloads, unit_counts = opt
    return BenchResult(
        name="trie_fig8_point",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "total_cycles": total_cycles,
            "matches": matches,
            "payloads_crc": _crc(payloads),
            "instructions": sum(count[1] for count in unit_counts),
        },
    )


def _batched_serve_key(index, column) -> Tuple[int, ...]:
    """Fingerprint the serving layer's batched column (untimed, once):
    the calibrated per-batch service times the ``--batched-tree``
    fig-serve sweep fits its model to, so drift anywhere between the
    admission queue and the coupled walker program fails ``--check``."""
    return tuple(
        measure_service(index, column, backend="batched",
                        batch_keys=batch_keys, walkers=_FIG8_WALKERS,
                        mode="coupled").cycles
        for batch_keys in _BATCHED_SERVE_KEYS)


def bench_batched_tree_serve(repeats: int) -> BenchResult:
    """Time one level-wise batched B+-tree offload against the naive
    stack — the coupled-organization walk the serving layer's
    ``batched`` backend runs for every admitted batch."""
    config = DEFAULT_CONFIG.with_widx(num_walkers=_FIG8_WALKERS,
                                      mode="coupled")

    def run_optimized(state):
        index, column = state
        outcome = offload_batched_tree(index, column, config=config,
                                       probes=_ORDERED_BENCH_PROBES,
                                       batch=_BATCHED_BENCH_BATCH,
                                       validate=False)
        return _fig8_outcome_key(outcome)

    def run_reference(state):
        index, column = state
        outcome = offload_batched_tree(
            index, column, config=config, probes=_ORDERED_BENCH_PROBES,
            batch=_BATCHED_BENCH_BATCH, validate=False,
            memory=use_reference_arrays(MemoryHierarchy(config)),
            engine=ReferenceEngine(),
            unit_cls=ReferenceWidxUnit)
        return _fig8_outcome_key(outcome)

    optimized_s, opt = _time_best(_build_batched_bench_inputs, run_optimized,
                                  repeats)
    reference_s, ref = _time_best(_build_batched_bench_inputs, run_reference,
                                  repeats)
    if opt != ref:
        raise AssertionError(
            "batched tree benchmark: optimized and reference stacks "
            "diverged")
    serve_cycles = _batched_serve_key(*_build_batched_bench_inputs())
    total_cycles, matches, payloads, unit_counts = opt
    return BenchResult(
        name="batched_tree_serve",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "batch": _BATCHED_BENCH_BATCH,
            "total_cycles": total_cycles,
            "matches": matches,
            "payloads_crc": _crc(payloads),
            "instructions": sum(count[1] for count in unit_counts),
            "serve_cycles": list(serve_cycles),
        },
    )


# ----------------------------------------------------------------------
# bulk_fig8_point: array-program replay vs the event-driven baseline core
# ----------------------------------------------------------------------

_BULK_WARMUP = 512


def _timing_result_key(result) -> Tuple:
    fields = tuple(getattr(result, name)
                   for name in result.__dataclass_fields__ if name != "stats")
    return fields + (_stable_crc(result.stats),)


def bench_bulk_fig8_point(repeats: int) -> BenchResult:
    """Time one baseline-core Figure-8 measurement in bulk mode.

    The reference twin is the production event-driven path — bulk mode's
    contract is bit identity with it, so the two runs must agree on
    every result field and the full stats registry before a speedup is
    reported.
    """
    def run_bulk(state):
        index, column = state
        return bulk_measure_indexing(index, column, core="ooo",
                                     warmup_probes=_BULK_WARMUP)

    def run_des(state):
        index, column = state
        return measure_indexing(index, column, core="ooo",
                                warmup_probes=_BULK_WARMUP)

    optimized_s, opt = _time_best(_build_fig8_inputs, run_bulk, repeats,
                                  key=_timing_result_key)
    reference_s, ref = _time_best(_build_fig8_inputs, run_des, repeats,
                                  key=_timing_result_key)
    if opt != ref:
        raise AssertionError(
            "bulk_fig8_point benchmark: bulk and DES runs diverged")
    return BenchResult(
        name="bulk_fig8_point",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "cycles_per_tuple": opt[1],
            "tuples": opt[3],
            "stats_crc": opt[-1],
        },
    )


# ----------------------------------------------------------------------
# bulk_serve_sweep: array replay of a fig-serve offered-load sweep
# ----------------------------------------------------------------------

#: Mirrors the fig-serve sweep geometry (five fractions of saturation,
#: fifo policy, four cores); the request count per level is raised from
#: the figure's 512 so both stacks time in a noise-robust range.
_SERVE_FRACTIONS = (0.3, 0.5, 0.7, 0.85, 0.95)
_SERVE_REQUESTS = 8_192
_SERVE_CORES = 4
_SERVE_CLIENTS = 4
_SERVE_SEED = 7


def _build_serve_inputs():
    """The service model and one Poisson stream per offered-load level."""
    model = ServiceModel("bench", 8,
                         {1: 840.0, 4: 2260.0, 16: 7400.0, 64: 26000.0})
    saturation = _SERVE_CORES * model.saturation_rate()
    streams = []
    for fraction in _SERVE_FRACTIONS:
        rate = fraction * saturation
        streams.append((rate, build_requests(
            rate, _SERVE_REQUESTS, model.keys_per_request,
            clients=_SERVE_CLIENTS, seed=_SERVE_SEED)))
    return model, streams


def _run_serve_sweep(model, streams, bulk: bool) -> List:
    return [simulate_service(requests, model, policy=FifoPolicy(),
                             cores=_SERVE_CORES, offered=rate, bulk=bulk)
            for rate, requests in streams]


def _serve_sweep_key(results) -> Tuple:
    return tuple((result.completed, result.makespan, result.achieved,
                  _stable_crc(result.latency.to_dict()),
                  _stable_crc(result.stats))
                 for result in results)


def bench_bulk_serve_sweep(repeats: int) -> BenchResult:
    """Time a fifo offered-load sweep in bulk mode vs the serving DES."""
    def run_bulk(state):
        model, streams = state
        return _run_serve_sweep(model, streams, bulk=True)

    def run_des(state):
        model, streams = state
        return _run_serve_sweep(model, streams, bulk=False)

    optimized_s, opt = _time_best(_build_serve_inputs, run_bulk, repeats,
                                  key=_serve_sweep_key)
    reference_s, ref = _time_best(_build_serve_inputs, run_des, repeats,
                                  key=_serve_sweep_key)
    if opt != ref:
        raise AssertionError(
            "bulk_serve_sweep benchmark: bulk and DES runs diverged")
    return BenchResult(
        name="bulk_serve_sweep",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "levels": len(opt),
            "completed": sum(level[0] for level in opt),
            "sweep_crc": _crc(opt),
        },
    )


# ----------------------------------------------------------------------
# resilience_sweep: the resilient serving path vs the plain DES
# ----------------------------------------------------------------------

#: Three fractions straddle saturation so the sweep exercises an idle,
#: a busy, and an overloaded queue; the request count keeps both DES
#: runs in a noise-robust timing range.
_RESILIENCE_FRACTIONS = (0.5, 0.9, 1.4)
_RESILIENCE_REQUESTS = 4_096
_RESILIENCE_SLO = 30_000.0
_RESILIENCE_FAULT_RATE = 40.0


def _build_resilience_inputs():
    """The serve-bench model and one Poisson stream per load level."""
    model = ServiceModel("bench", 8,
                         {1: 840.0, 4: 2260.0, 16: 7400.0, 64: 26000.0})
    saturation = _SERVE_CORES * model.saturation_rate()
    streams = []
    for fraction in _RESILIENCE_FRACTIONS:
        rate = fraction * saturation
        streams.append((rate, build_requests(
            rate, _RESILIENCE_REQUESTS, model.keys_per_request,
            clients=_SERVE_CLIENTS, seed=_SERVE_SEED)))
    return model, streams


def _run_resilience_sweep(model, streams,
                          resilience: Optional[ResilienceConfig]) -> List:
    return [simulate_service(requests, model, policy=FifoPolicy(),
                             cores=_SERVE_CORES, offered=rate,
                             resilience=resilience)
            for rate, requests in streams]


#: Counters only the resilient path registers; on a clean SLO-only run
#: they are all zero, so parity drops them (asserting the zeros) before
#: comparing against the plain DES, which never creates them.
_RESILIENCE_ONLY_STATS = ("serve.aborts", "serve.expired",
                          "serve.in_slo", "serve.shed")


def _resilience_parity_key(results) -> Tuple:
    key = []
    for result in results:
        stats = dict(result.stats)
        for name in _RESILIENCE_ONLY_STATS:
            counter = stats.pop(name, None)
            value = 0 if counter is None else counter["value"]
            if value not in (0, result.in_slo):
                raise AssertionError(
                    f"clean resilient run tripped {name!r}")
        key.append((result.completed, result.makespan, result.achieved,
                    _stable_crc(result.latency.to_dict()),
                    _stable_crc(stats)))
    return tuple(key)


def _resilience_faulted_key(model, streams) -> Tuple:
    """Fingerprint a seeded shed+fault+fallback sweep (untimed, once):
    the degraded-mode machinery — walker deaths, capacity scaling, the
    host fallback, admission shedding, deadline accounting — all feed
    this checksum, so behavioural drift fails ``--check``."""
    faults = WalkerFaultModel(seed=_SERVE_SEED,
                              rate=_RESILIENCE_FAULT_RATE,
                              walkers_per_core=2)
    resilience = ResilienceConfig(slo=_RESILIENCE_SLO, faults=faults,
                                  fallback=model.scaled(2.5))
    results = [simulate_service(requests, model,
                                policy=parse_policy("shed:32"),
                                cores=_SERVE_CORES, offered=rate,
                                resilience=resilience)
               for rate, requests in streams]
    return tuple((result.completed, result.shed, result.expired,
                  result.faults, result.in_slo, result.makespan,
                  _stable_crc(result.latency.to_dict()))
                 for result in results)


def bench_resilience_sweep(repeats: int) -> BenchResult:
    """Time the resilient serving path (SLO armed, nothing tripping)
    against the plain DES on the same sweep, asserting bit identity —
    the clean-path parity contract the serving tests pin per point."""
    def run_resilient(state):
        model, streams = state
        return _run_resilience_sweep(
            model, streams, ResilienceConfig(slo=_RESILIENCE_SLO))

    def run_plain(state):
        model, streams = state
        return _run_resilience_sweep(model, streams, None)

    optimized_s, opt = _time_best(_build_resilience_inputs, run_resilient,
                                  repeats, key=_resilience_parity_key)
    reference_s, ref = _time_best(_build_resilience_inputs, run_plain,
                                  repeats, key=_resilience_parity_key)
    if opt != ref:
        raise AssertionError(
            "resilience_sweep benchmark: resilient clean path diverged "
            "from the plain DES")
    faulted = _resilience_faulted_key(*_build_resilience_inputs())
    return BenchResult(
        name="resilience_sweep",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "levels": len(opt),
            "completed": sum(level[0] for level in opt),
            "sweep_crc": _crc(opt),
            "faulted_served": sum(level[0] for level in faulted),
            "faulted_shed": sum(level[1] for level in faulted),
            "faulted_crc": _crc(faulted),
        },
    )


# ----------------------------------------------------------------------
# serve_core_refactor: the extracted serving core's overhead and its
# cross-driver identity
# ----------------------------------------------------------------------

#: Requests replayed through the live driver for the cross-driver
#: fingerprint (untimed; kept small so --check stays fast).
_CORE_REFACTOR_SLICE = 512


def _live_replay_key(model, streams) -> Tuple:
    """Fingerprint the extracted core through its third driver.

    Replays a slice of the sweep's lowest-load stream through
    :class:`~repro.live.service.LiveService` on a manual clock — the
    same :class:`~repro.serve.core.ServingCore` the DES exercises, fed
    by a completely different driver.  Core drift that happens to keep
    the DES goldens green still shows up here.
    """
    from ..live.clock import ManualClock
    from ..live.service import LiveService

    _rate, requests = streams[0]
    service = LiveService(model, policy=FifoPolicy(), cores=_SERVE_CORES,
                          resilience=ResilienceConfig(slo=_RESILIENCE_SLO),
                          clock=ManualClock())
    for request in requests[:_CORE_REFACTOR_SLICE]:
        service.clock.advance_to(request.arrival)
        service.offer(keys=request.keys, now=request.arrival)
    service.close()
    service.drain()
    result = service.result()
    return (result.completed, result.in_slo, round(result.makespan, 6),
            _stable_crc(result.latency.to_dict()))


def bench_serve_core_refactor(repeats: int) -> BenchResult:
    """Guard the serving-core extraction: tight overhead floor plus a
    cross-driver identity fingerprint.

    Times the ServingCore-backed resilient path against the plain DES
    on the ``resilience_sweep`` geometry — the pre-extraction ratio was
    0.83x, and the 0.79 floor caps the extraction's own cost at ~5%.
    The two sides are timed *interleaved* (plain then resilient within
    each repeat) and the reported ratio comes from the best repeat-pair:
    with a tight floor, background-load drift between two sequential
    timing blocks would dominate the <5% signal this benchmark exists
    to detect, while within one pair both sides see comparable load.
    """
    def run_core(state):
        model, streams = state
        return _run_resilience_sweep(
            model, streams, ResilienceConfig(slo=_RESILIENCE_SLO))

    def run_plain(state):
        model, streams = state
        return _run_resilience_sweep(model, streams, None)

    optimized_s = reference_s = None
    opt = ref = None
    for attempt in range(repeats):
        elapsed_ref, keyed_ref = _time_once(
            _build_resilience_inputs, run_plain, _resilience_parity_key)
        elapsed_opt, keyed_opt = _time_once(
            _build_resilience_inputs, run_core, _resilience_parity_key)
        if attempt == 0:
            ref, opt = keyed_ref, keyed_opt
        elif (keyed_ref, keyed_opt) != (ref, opt):
            raise AssertionError("non-deterministic benchmark run")
        if (reference_s is None
                or elapsed_ref / elapsed_opt > reference_s / optimized_s):
            reference_s, optimized_s = elapsed_ref, elapsed_opt
    if opt != ref:
        raise AssertionError(
            "serve_core_refactor benchmark: the extracted core's clean "
            "path diverged from the plain DES")
    live = _live_replay_key(*_build_resilience_inputs())
    return BenchResult(
        name="serve_core_refactor",
        optimized_s=optimized_s,
        reference_s=reference_s,
        fingerprint={
            "levels": len(opt),
            "completed": sum(level[0] for level in opt),
            "sweep_crc": _crc(opt),
            "live_completed": live[0],
            "live_in_slo": live[1],
            "live_crc": _crc(live),
        },
    )


BENCHMARKS: Dict[str, Callable[[int], BenchResult]] = {
    "engine_dispatch": bench_engine_dispatch,
    "cache_probe": bench_cache_probe,
    "fig8_point": bench_fig8_point,
    "pim_fig8_point": bench_pim_fig8_point,
    "trie_fig8_point": bench_trie_fig8_point,
    "batched_tree_serve": bench_batched_tree_serve,
    "bulk_fig8_point": bench_bulk_fig8_point,
    "bulk_serve_sweep": bench_bulk_serve_sweep,
    "resilience_sweep": bench_resilience_sweep,
    "serve_core_refactor": bench_serve_core_refactor,
}


def run_benchmarks(repeats: int = 3,
                   only: Optional[List[str]] = None) -> List[BenchResult]:
    """Run the selected benchmarks (all by default), in declaration order."""
    names = list(BENCHMARKS) if not only else only
    results = []
    for name in names:
        if name not in BENCHMARKS:
            raise KeyError(f"unknown benchmark {name!r}; "
                           f"choose from {sorted(BENCHMARKS)}")
        results.append(BENCHMARKS[name](repeats))
    return results
