"""CLI for the hot-path micro-benchmarks.

Usage::

    python -m repro.bench                       # run and print a table
    python -m repro.bench --repeats 5           # more repeats (best-of-N)
    python -m repro.bench --only cache_probe    # a subset
    python -m repro.bench --output BENCH_sim.json
        # write a new baseline; FAILS if any benchmark is below its
        # acceptance floor (see repro.bench.FLOORS)
    python -m repro.bench --check BENCH_sim.json
        # CI guard: FAILS if any simulated-result fingerprint differs
        # from the baseline, or a speedup regressed by more than 20%

Fingerprints (simulated cycle counts, hit/victim checksums, payload
checksums) are machine-independent and must match the baseline exactly;
speedups are wall-clock and only checked within the regression
tolerance, so a slower CI machine does not produce false failures.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from . import (BENCHMARKS, FLOORS, REGRESSION_TOLERANCE, SCHEMA, BenchResult,
               run_benchmarks)


def _table(results: List[BenchResult]) -> str:
    lines = [f"{'benchmark':<18} {'reference':>10} {'optimized':>10} "
             f"{'speedup':>8} {'floor':>6}"]
    for result in results:
        lines.append(
            f"{result.name:<18} {result.reference_s:>9.3f}s "
            f"{result.optimized_s:>9.3f}s {result.speedup:>7.2f}x "
            f"{result.floor:>5.2f}x")
    return "\n".join(lines)


def _to_json(results: List[BenchResult], repeats: int) -> dict:
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "benchmarks": {result.name: result.to_dict() for result in results},
    }


def _enforce_floors(results: List[BenchResult]) -> List[str]:
    errors = []
    for result in results:
        if result.speedup < result.floor:
            errors.append(
                f"{result.name}: speedup {result.speedup:.2f}x is below the "
                f"acceptance floor {result.floor:.2f}x")
    return errors


def _check_against(results: List[BenchResult], baseline: dict) -> List[str]:
    errors = []
    if baseline.get("schema") != SCHEMA:
        return [f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}"]
    recorded = baseline.get("benchmarks", {})
    for result in results:
        entry = recorded.get(result.name)
        if entry is None:
            errors.append(f"{result.name}: missing from baseline")
            continue
        if entry.get("fingerprint") != result.fingerprint:
            errors.append(
                f"{result.name}: simulated-result fingerprint changed "
                f"(baseline {entry.get('fingerprint')}, "
                f"measured {result.fingerprint}) — the optimized and "
                f"reference stacks still agree with each other, but the "
                f"modelled behaviour differs from the committed baseline")
        allowed = entry["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        if result.speedup < allowed:
            errors.append(
                f"{result.name}: speedup {result.speedup:.2f}x regressed "
                f"more than {REGRESSION_TOLERANCE:.0%} from baseline "
                f"{entry['speedup']:.2f}x (minimum allowed {allowed:.2f}x)")
    return errors


def main(argv=None) -> int:
    """Entry point; returns a process exit code (0 ok, 1 failure)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Hot-path micro-benchmarks (optimized vs naive "
                    "reference, bit-identical by construction).")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N wall-time repeats (default 3)")
    parser.add_argument("--only", action="append", metavar="NAME",
                        choices=sorted(BENCHMARKS),
                        help="run only this benchmark (repeatable)")
    parser.add_argument("--output", metavar="PATH",
                        help="write a baseline JSON; fails below floors")
    parser.add_argument("--check", metavar="PATH",
                        help="compare against a baseline JSON; fails on "
                             "fingerprint drift or >20%% speedup regression")
    args = parser.parse_args(argv)
    if args.output and args.check:
        parser.error("--output and --check are mutually exclusive")
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    results = run_benchmarks(repeats=args.repeats, only=args.only)
    print(_table(results))

    if args.output:
        if args.only:
            parser.error("--output requires the full benchmark set")
        errors = _enforce_floors(results)
        if errors:
            for error in errors:
                print(f"FLOOR FAILURE: {error}", file=sys.stderr)
            return 1
        with open(args.output, "w") as handle:
            json.dump(_to_json(results, args.repeats), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {args.output}")
    elif args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        errors = _check_against(results, baseline)
        if errors:
            for error in errors:
                print(f"BENCH REGRESSION: {error}", file=sys.stderr)
            return 1
        print(f"all benchmarks within tolerance of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
