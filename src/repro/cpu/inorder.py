"""The in-order comparison core (Cortex-A8-like: 2-wide).

The in-order pipeline issues uops in program order and stalls on
read-after-write hazards, with the A8's documented restrictions:

* the second issue slot cannot take a memory op (one load/store per cycle);
* L1 load-to-use is one cycle longer than the Xeon-like core's;
* a load that misses the L1 blocks the pipeline until the fill returns
  (no hit-under-miss, no miss-under-miss — single-entry miss handling);
* branch mispredicts flush the 13-stage pipeline.

These are the mechanisms behind the paper's observation that the in-order
core is ~2.2x slower than the OoO baseline on indexing: it cannot expose
inter-key MLP and pays full memory latency on every chain access.
"""

from __future__ import annotations

from typing import Iterable, List

from ..config import CoreConfig
from ..mem.hierarchy import MemoryHierarchy
from ..obs import Counter
from .uops import Uop, UopKind


class InOrderCore:
    """Streaming in-order timing model."""

    def __init__(self, config: CoreConfig, memory: MemoryHierarchy,
                 mispredict_penalty: int = 13,
                 load_use_penalty: int = 1) -> None:
        if config.out_of_order:
            raise ValueError("use OutOfOrderCore for OoO configs")
        self.config = config
        self.memory = memory
        self.mispredict_penalty = mispredict_penalty
        self.load_use_penalty = load_use_penalty
        self._last_mem_issue = -1.0
        self._all_done: List[float] = []
        self._issue_time = 0.0
        self._issued_this_cycle = 0
        self._last_miss_done = 0.0
        self.uops_executed = Counter()
        self.loads_issued = Counter()
        self.mem_stall_cycles = Counter(0.0)
        self.tlb_stall_cycles = Counter(0.0)
        self._completion = 0.0

    def register_into(self, registry, prefix: str) -> None:
        """Publish per-op execution counters under ``prefix``."""
        registry.register(f"{prefix}.uops_executed", self.uops_executed)
        registry.register(f"{prefix}.loads_issued", self.loads_issued)
        registry.register(f"{prefix}.mem_stall_cycles", self.mem_stall_cycles)
        registry.register(f"{prefix}.tlb_stall_cycles", self.tlb_stall_cycles)

    def _issue_slot(self) -> float:
        if self._issued_this_cycle >= self.config.issue_width:
            self._issue_time += 1.0
            self._issued_this_cycle = 0
        self._issued_this_cycle += 1
        return self._issue_time

    def execute(self, uops: Iterable[Uop]) -> None:
        """Execute a stream of uops (may be called repeatedly)."""
        for uop in uops:
            issue = self._issue_slot()
            ready = issue
            # In-order issue stalls until producers complete.
            for dep in uop.deps:
                if 0 <= dep < len(self._all_done):
                    done = self._all_done[dep]
                    if done > ready:
                        ready = done
            if ready > self._issue_time:
                # The pipeline stalled; later uops cannot issue earlier.
                self._issue_time = ready
                self._issued_this_cycle = 1
            if uop.kind in (UopKind.LOAD, UopKind.STORE):
                # Only one of the two issue slots handles memory ops.
                if ready <= self._last_mem_issue:
                    ready = self._last_mem_issue + 1.0
                    if ready > self._issue_time:
                        self._issue_time = ready
                        self._issued_this_cycle = 1
                self._last_mem_issue = ready
            if uop.kind is UopKind.LOAD:
                start = ready
                # Single outstanding miss: a load that misses the L1 waits
                # for the previous miss to complete.  We conservatively
                # apply the gate before knowing hit/miss only when the block
                # is not L1-resident.
                block = self.memory.l1d.block_of(uop.addr)
                if not self.memory.l1d.array.present(block):
                    start = max(start, self._last_miss_done)
                result = self.memory.load(uop.addr, start)
                done = result.complete + self.load_use_penalty
                if result.tlb_stall > 0:
                    # Software TLB-miss trap runs on the core (see ooo.py).
                    done += self.memory.cfg.tlb.trap_cycles
                    self._issue_time = max(self._issue_time, done)
                    self._issued_this_cycle = 0
                if result.level != "L1":
                    # A8-style blocking miss: the pipeline stalls until the
                    # fill returns; no hit-under-miss, no miss-under-miss.
                    self._last_miss_done = done
                    self._issue_time = max(self._issue_time, done)
                    self._issued_this_cycle = 0
                self.loads_issued += 1
                self.mem_stall_cycles += max(0.0, done - ready - 1.0)
                self.tlb_stall_cycles += result.tlb_stall
            elif uop.kind is UopKind.STORE:
                self.memory.store(uop.addr, ready)
                done = ready + 1.0
            else:
                done = ready + uop.latency
            if uop.kind is UopKind.BRANCH and uop.mispredict:
                stall_until = done + self.mispredict_penalty
                if stall_until > self._issue_time:
                    self._issue_time = stall_until
                    self._issued_this_cycle = 0
            self._all_done.append(done)
            if done > self._completion:
                self._completion = done
            self.uops_executed += 1

    @property
    def completion_time(self) -> float:
        return self._completion
