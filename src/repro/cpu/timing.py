"""Measuring baseline-core indexing throughput (cycles per tuple).

Mirrors the paper's methodology: warm the caches with a prefix of probes
(SimFlex warm checkpoints), then measure the steady-state cycles/tuple over
the remaining probes, reporting a 95% confidence interval over batch means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..config import SystemConfig, DEFAULT_CONFIG
from ..db.column import Column
from ..db.hashtable import HashIndex
from ..mem.hierarchy import MemoryHierarchy
from ..obs import StatsRegistry
from ..sim.sampling import BatchStats
from .inorder import InOrderCore
from .ooo import OutOfOrderCore
from .trace import ProbeTraceGenerator


def warm_hash_index(memory: MemoryHierarchy, index: HashIndex) -> None:
    """Functionally install an index's working set in the LLC (and TLB)."""
    memory.warm_range(index.buckets.base, index.buckets.size)
    used_node_bytes = index.footprint_bytes - index.buckets.size
    if used_node_bytes > 0:
        memory.warm_range(index.nodes.base, used_node_bytes)
    if index.layout.indirect and index.key_column is not None:
        region = index.key_column.region
        memory.warm_range(region.base, region.size)


@dataclass
class CoreTimingResult:
    """Indexing throughput of one baseline core run."""

    core: str
    cycles_per_tuple: float
    ci_half_width: float
    tuples: int
    total_cycles: float
    mem_stall_per_tuple: float
    tlb_stall_per_tuple: float
    l1_miss_ratio: float
    llc_miss_ratio: float
    stats: Optional[Dict[str, Any]] = None  # registry snapshot (to_dict)

    @property
    def relative_error(self) -> float:
        if self.cycles_per_tuple == 0:
            return 0.0
        return self.ci_half_width / self.cycles_per_tuple


def measure_indexing(index: HashIndex, probe_keys: Column, *,
                     core: str = "ooo",
                     config: SystemConfig = DEFAULT_CONFIG,
                     warmup_probes: int = 512,
                     measure_probes: Optional[int] = None,
                     rows: Optional[Sequence[int]] = None,
                     batch_size: int = 128,
                     warm_index: bool = True,
                     bulk: bool = False) -> CoreTimingResult:
    """Run the probe loop on a baseline core model; return cycles/tuple.

    ``warm_index`` mimics the paper's warmed-cache checkpoints: the index
    (buckets, used overflow nodes and — for indirect layouts — the base key
    column) is functionally installed in the LLC before timing starts, so
    compulsory misses do not masquerade as capacity misses.  Indexes larger
    than the LLC still miss, via LRU, exactly as in steady state.

    ``bulk=True`` routes the run through the array-program replay
    (:mod:`repro.sim.bulk`), which produces bit-identical results and
    falls back to this event-driven path if the schedule cannot be
    replayed unambiguously.
    """
    if bulk:
        from ..sim.bulk import BulkFallback, bulk_measure_indexing
        try:
            return bulk_measure_indexing(
                index, probe_keys, core=core, config=config,
                warmup_probes=warmup_probes, measure_probes=measure_probes,
                rows=rows, batch_size=batch_size, warm_index=warm_index)
        except BulkFallback:
            pass  # a contended schedule: replay on the DES below

    memory = MemoryHierarchy(config)
    if warm_index:
        warm_hash_index(memory, index)
    if core == "ooo":
        model = OutOfOrderCore(config.ooo, memory)
    elif core == "inorder":
        model = InOrderCore(config.inorder, memory)
    else:
        raise ValueError(f"unknown core model {core!r} (want 'ooo' or 'inorder')")

    generator = ProbeTraceGenerator(index, probe_keys)
    total_rows = len(probe_keys.values)
    if rows is None:
        limit = total_rows if measure_probes is None else min(
            total_rows, warmup_probes + measure_probes)
        rows = range(limit)
    rows = list(rows)
    if len(rows) <= warmup_probes:
        raise ValueError(
            f"need more than {warmup_probes} probes to measure after warm-up")

    stats = BatchStats(batch_size=batch_size)
    measured_tuples = 0
    measure_start = 0.0
    for probe_number, uops in enumerate(generator.stream(rows)):
        before = model.completion_time
        model.execute(uops)
        if probe_number == warmup_probes - 1:
            measure_start = model.completion_time
        elif probe_number >= warmup_probes:
            stats.add(model.completion_time - before)
            measured_tuples += 1

    total = model.completion_time - measure_start
    mean, half = stats.interval()
    registry = StatsRegistry()
    model.register_into(registry, f"cpu.{core}")
    memory.register_into(registry, "mem")
    return CoreTimingResult(
        core=core,
        cycles_per_tuple=total / measured_tuples,
        ci_half_width=half,
        tuples=measured_tuples,
        total_cycles=total,
        mem_stall_per_tuple=model.mem_stall_cycles / max(1, model.uops_executed)
        * (model.uops_executed / max(1, measured_tuples + warmup_probes)),
        tlb_stall_per_tuple=model.tlb_stall_cycles / max(1, measured_tuples + warmup_probes),
        l1_miss_ratio=memory.stats.l1d.miss_ratio,
        llc_miss_ratio=memory.stats.llc.miss_ratio,
        stats=registry.to_dict(),
    )
