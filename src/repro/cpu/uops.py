"""Micro-ops for the trace-driven core models.

A trace is a list of :class:`Uop` whose ``deps`` are indices of earlier
uops *within the same trace window* (negative indices are resolved by the
core models against the global stream, allowing cross-probe independence to
be expressed by simply concatenating per-probe traces).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class UopKind(enum.Enum):
    """Micro-op categories for the trace-driven core models."""
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class Uop:
    """One micro-op.

    ``deps`` are stream-relative indices (absolute positions in the uop
    stream) of producers this uop must wait for.  ``addr`` is the simulated
    memory address for loads/stores.  ``mispredict`` marks a branch the
    front-end mispredicts (charged a refill penalty by the core models).
    """

    kind: UopKind
    addr: int = 0
    deps: Tuple[int, ...] = field(default_factory=tuple)
    latency: int = 1
    mispredict: bool = False

    def __post_init__(self) -> None:
        if self.kind in (UopKind.LOAD, UopKind.STORE) and self.addr == 0:
            raise ValueError(f"{self.kind.value} uop needs a target address")
        if self.latency < 1:
            raise ValueError("uop latency must be >= 1")
