"""The out-of-order baseline core (Xeon-like: 4-wide, 128-entry ROB).

A limited-window dataflow model:

* uops dispatch in program order, ``issue_width`` per cycle, only when a
  ROB entry is free (the entry of the uop ``rob_entries`` earlier must have
  retired);
* a uop executes once its producers are done (dataflow), ALU ops in 1
  cycle, loads through the shared :class:`~repro.mem.MemoryHierarchy`;
* retirement is in order;
* a mispredicted branch squashes the front end: dispatch of younger uops
  resumes ``mispredict_penalty`` cycles after the branch resolves.

This is the standard first-order OoO model: it captures window-limited MLP
(the mechanism the paper credits for the OoO core's 2.2x advantage over
in-order on indexing) without simulating rename/issue queues.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List

from ..config import CoreConfig
from ..mem.hierarchy import MemoryHierarchy
from ..obs import Counter
from .uops import Uop, UopKind


class OutOfOrderCore:
    """Streaming OoO timing model; feed uops, read back cycle counts."""

    def __init__(self, config: CoreConfig, memory: MemoryHierarchy,
                 mispredict_penalty: int = 20) -> None:
        if not config.out_of_order:
            raise ValueError("use InOrderCore for in-order configs")
        self.config = config
        self.memory = memory
        self.mispredict_penalty = mispredict_penalty
        self._done: Deque[float] = deque(maxlen=config.rob_entries)
        self._done_positions: Deque[int] = deque(maxlen=config.rob_entries)
        self._all_done: List[float] = []   # completion time per stream position
        self._horizons: List[float] = []   # running max of completion times
        self._position = 0
        self._dispatch_time = 0.0
        self._dispatched_this_cycle = 0
        self._frontend_stall_until = 0.0
        self._retire_horizon = 0.0
        self.uops_executed = Counter()
        self.loads_issued = Counter()
        self.mem_stall_cycles = Counter(0.0)
        self.tlb_stall_cycles = Counter(0.0)

    @property
    def now(self) -> float:
        return self._dispatch_time

    def register_into(self, registry, prefix: str) -> None:
        """Publish per-op execution counters under ``prefix``."""
        registry.register(f"{prefix}.uops_executed", self.uops_executed)
        registry.register(f"{prefix}.loads_issued", self.loads_issued)
        registry.register(f"{prefix}.mem_stall_cycles", self.mem_stall_cycles)
        registry.register(f"{prefix}.tlb_stall_cycles", self.tlb_stall_cycles)

    def _dispatch_slot(self) -> float:
        """Advance the front end by one dispatch slot; returns its time."""
        if self._dispatch_time < self._frontend_stall_until:
            self._dispatch_time = self._frontend_stall_until
            self._dispatched_this_cycle = 0
        if self._dispatched_this_cycle >= self.config.issue_width:
            self._dispatch_time += 1.0
            self._dispatched_this_cycle = 0
        self._dispatched_this_cycle += 1
        return self._dispatch_time

    def _rob_gate(self, dispatch: float) -> float:
        """Dispatch cannot pass retirement of the uop ROB-size earlier."""
        if len(self._all_done) >= self.config.rob_entries:
            oldest = self._all_done[len(self._all_done) - self.config.rob_entries]
            # In-order retirement: the oldest entry retires no earlier than
            # every older uop's completion (tracked via a running horizon).
            gate = max(oldest, self._retire_horizon_at(
                len(self._all_done) - self.config.rob_entries))
            if gate > dispatch:
                self._dispatch_time = gate
                self._dispatched_this_cycle = 1
                return gate
        return dispatch

    def _retire_horizon_at(self, position: int) -> float:
        # The running max of completion times up to `position` approximates
        # the in-order retire time of that entry.  We maintain it lazily.
        return self._horizons[position]

    def execute(self, uops: Iterable[Uop]) -> None:
        """Execute a stream of uops (may be called repeatedly)."""
        horizon = self._horizons[-1] if self._horizons else 0.0
        for uop in uops:
            dispatch = self._dispatch_slot()
            dispatch = self._rob_gate(dispatch)
            ready = dispatch
            for dep in uop.deps:
                if 0 <= dep < len(self._all_done):
                    done = self._all_done[dep]
                    if done > ready:
                        ready = done
            if uop.kind is UopKind.LOAD:
                result = self.memory.load(uop.addr, ready)
                done = result.complete
                if result.tlb_stall > 0:
                    # Software-walked TLB: the miss traps to a handler on
                    # this core — flush, handle, replay.  Serializes the
                    # window (Widx instead stalls only the faulting unit).
                    done += self.memory.cfg.tlb.trap_cycles
                    self._frontend_stall_until = max(
                        self._frontend_stall_until, done)
                self.loads_issued += 1
                self.mem_stall_cycles += max(0.0, done - ready - 1.0)
                self.tlb_stall_cycles += result.tlb_stall
            elif uop.kind is UopKind.STORE:
                # Stores retire through a store buffer; latency is hidden.
                self.memory.store(uop.addr, ready)
                done = ready + 1.0
            else:
                done = ready + uop.latency
            if uop.kind is UopKind.BRANCH and uop.mispredict:
                self._frontend_stall_until = max(
                    self._frontend_stall_until, done + self.mispredict_penalty)
            self._all_done.append(done)
            horizon = max(horizon, done)
            self._horizons.append(horizon)
            self._position += 1
            self.uops_executed += 1

    @property
    def completion_time(self) -> float:
        """Cycle at which every executed uop has retired."""
        return self._horizons[-1] if getattr(self, "_horizons", None) else 0.0
