"""Expanding hash-index probes into micro-op traces.

The generated trace mirrors Listing 1 compiled for a conventional core:

* load the probe key (keys stream through the L1 — many per block),
* hash it (each :class:`~repro.db.hashfn.HashStep` costs *two* host ALU ops,
  shift then combine — the host ISA has no fused shift-ops; Widx's fused
  XOR-SHF/ADD-SHF instructions halve this, one of its advantages),
* compute the bucket address (mask + shift + add),
* walk the chain: per node, load the key slot, (for indirect layouts:
  compute the base-column address and load the key), compare, branch, load
  the next pointer, branch,
* on the final node, the loop-exit branch is data-dependent and mispredicts.

Addresses are real simulated-memory addresses read from the live index, so
running the trace through the memory hierarchy reproduces the true
block-reuse and locality behaviour.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..db.column import Column
from ..db.hashtable import HashIndex
from ..mem.physmem import NULL_PTR
from .uops import Uop, UopKind

#: Host ALU ops per hash mixing step (shift + combine; no fusion).
HOST_OPS_PER_HASH_STEP = 2


class ProbeTraceGenerator:
    """Generates per-probe uop traces against a live :class:`HashIndex`."""

    def __init__(self, index: HashIndex, probe_keys: Column,
                 out_base: int = 0,
                 model_mispredicts: bool = True) -> None:
        if not probe_keys.is_materialized:
            raise ValueError("probe key column must be materialized in "
                             "simulated memory before tracing")
        self.index = index
        self.probe_keys = probe_keys
        self.out_base = out_base
        self.model_mispredicts = model_mispredicts
        # The loop-exit branch is strongly biased: a bimodal predictor
        # learns the most common chain length and only mispredicts probes
        # whose chain deviates from it.
        self._typical_chain = max(1, round(index.num_keys / max(1, index.num_buckets)))

    def _exit_mispredicts(self, chain_length: int) -> bool:
        if not self.model_mispredicts:
            return False
        return chain_length != self._typical_chain

    def probe_uops(self, row: int, stream_base: int) -> List[Uop]:
        """The uop trace for probing key at ``row``; deps are absolute
        stream positions starting at ``stream_base``."""
        index = self.index
        layout = index.layout
        uops: List[Uop] = []

        def pos() -> int:
            return stream_base + len(uops)

        key_addr = self.probe_keys.address_of(row)
        key = int(self.probe_keys.values[row])
        uops.append(Uop(UopKind.LOAD, addr=key_addr))
        key_ready = pos() - 1

        # Hash: a serial ALU chain seeded by the key load.
        prev = key_ready
        for _step in index.hash_spec.steps:
            for _ in range(HOST_OPS_PER_HASH_STEP):
                uops.append(Uop(UopKind.ALU, deps=(prev,)))
                prev = pos() - 1
        # Bucket address: mask, scale (shift) and base add.
        for _ in range(3):
            uops.append(Uop(UopKind.ALU, deps=(prev,)))
            prev = pos() - 1
        addr_ready = prev

        # Walk the actual chain.
        chain = list(index.walk_chain(key))
        prev_node_dep = addr_ready
        for node_index, node_addr in enumerate(chain):
            last = node_index == len(chain) - 1
            slot_addr = node_addr + layout.key_offset
            uops.append(Uop(UopKind.LOAD, addr=slot_addr, deps=(prev_node_dep,)))
            slot_ready = pos() - 1
            cmp_dep = slot_ready
            if layout.indirect:
                # Address arithmetic into the base column, then the key load.
                uops.append(Uop(UopKind.ALU, deps=(slot_ready,)))
                row_id = index.node_payload(node_addr)
                uops.append(Uop(UopKind.LOAD,
                                addr=index.key_address_for_row(row_id),
                                deps=(pos() - 1,)))
                cmp_dep = pos() - 1
            uops.append(Uop(UopKind.ALU, deps=(cmp_dep, key_ready)))  # compare
            uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
            if index.node_key(node_addr) == key and not layout.indirect:
                # Emit: read the payload (same block as the key slot).
                uops.append(Uop(UopKind.LOAD,
                                addr=node_addr + layout.payload_offset,
                                deps=(pos() - 2,)))
            next_addr_load = node_addr + layout.next_offset
            uops.append(Uop(UopKind.LOAD, addr=next_addr_load,
                            deps=(prev_node_dep,)))
            next_ready = pos() - 1
            uops.append(Uop(
                UopKind.BRANCH, deps=(next_ready,),
                mispredict=last and self._exit_mispredicts(len(chain))))
            prev_node_dep = next_ready
        if not chain:
            # Empty bucket: the header's key slot is still read and compared
            # against the sentinel before the walk loop can exit.
            header = index.bucket_addr(index.bucket_of_key(key))
            uops.append(Uop(UopKind.LOAD, addr=header + layout.key_offset,
                            deps=(addr_ready,)))
            uops.append(Uop(UopKind.ALU, deps=(pos() - 1,)))
            uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,),
                            mispredict=self._exit_mispredicts(0)))
        # Loop bookkeeping for the key iterator (i++ / bounds test).
        uops.append(Uop(UopKind.ALU))
        uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
        return uops

    def stream(self, rows: Optional[Sequence[int]] = None) -> Iterator[List[Uop]]:
        """Yield per-probe traces with stream-consistent dependency indices."""
        if rows is None:
            rows = range(len(self.probe_keys.values))
        base = 0
        for row in rows:
            uops = self.probe_uops(row, base)
            yield uops
            base += len(uops)
