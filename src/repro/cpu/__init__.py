"""Baseline (host) core timing models.

The paper's baseline is an aggressive 4-wide out-of-order core with a
128-entry ROB (Xeon-like); the efficiency comparison point is a 2-wide
in-order core (Cortex-A8-like).  Both are modelled as *trace-driven*
limited-window dataflow machines: the probe loop of Listing 1 is expanded
into micro-op traces with real memory addresses (taken from the actual hash
index in simulated memory), and the models account for issue width, window
occupancy, dependent-load serialization and the shared memory hierarchy.

This captures exactly the effects the paper attributes baseline indexing
performance to: the OoO window exposing inter-key MLP between consecutive
lookups, and the in-order core serializing on every miss.
"""

from .uops import Uop, UopKind
from .trace import ProbeTraceGenerator
from .ooo import OutOfOrderCore
from .inorder import InOrderCore
from .timing import CoreTimingResult, measure_indexing
from .ordered import (BatchedTreeTraceGenerator, TreeTraceGenerator,
                      TrieTraceGenerator, WormholeTraceGenerator,
                      measure_ordered_indexing, warm_ordered_index)

__all__ = [
    "Uop",
    "UopKind",
    "ProbeTraceGenerator",
    "OutOfOrderCore",
    "InOrderCore",
    "CoreTimingResult",
    "measure_indexing",
    "TreeTraceGenerator",
    "TrieTraceGenerator",
    "WormholeTraceGenerator",
    "BatchedTreeTraceGenerator",
    "measure_ordered_indexing",
    "warm_ordered_index",
]
