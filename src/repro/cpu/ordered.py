"""Baseline-core traces and timing for the ordered-index zoo.

Each generator expands live-structure traversals into uop traces whose
dependency shapes are the experiment:

* :class:`TreeTraceGenerator` — the B+-tree descent is a *dependent* load
  chain (each node address comes out of the previous node), exactly the
  pattern the paper's walkers target.
* :class:`TrieTraceGenerator` — the hashed trie's per-level bucket
  addresses are computed straight from the key, so every level's fetch
  depends only on the key load.  An OoO window overlaps them; the
  in-order core serializes them anyway.  This is the honest baseline for
  the Cuckoo-Trie counter-argument.
* :class:`WormholeTraceGenerator` — the MetaTrieHash binary search is a
  short dependent chain (the next depth to probe is decided by the
  current probe's outcome), followed by a bounded leaf walk.
* :class:`BatchedTreeTraceGenerator` — level-wise batched descent over
  the same tree: per level each distinct node is fetched once, however
  many of the batch's probes route through it, so repeat visits become
  register/L1 reuse instead of fresh misses.

Addresses are real simulated-memory addresses read from the live
structures, so running a trace through the hierarchy reproduces true
block reuse — the same property :mod:`repro.cpu.trace` relies on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..config import SystemConfig, DEFAULT_CONFIG
from ..db import btree as _btree
from ..db import trie as _trie
from ..db import wormhole as _wormhole
from ..db.btree import BPlusTree
from ..db.column import Column
from ..db.trie import MlpTrie, probe_value, tag_value
from ..db.wormhole import WormholeIndex
from ..mem.hierarchy import MemoryHierarchy
from ..mem.physmem import NULL_PTR
from ..obs import StatsRegistry
from ..sim.sampling import BatchStats
from .inorder import InOrderCore
from .ooo import OutOfOrderCore
from .timing import CoreTimingResult
from .trace import HOST_OPS_PER_HASH_STEP
from .uops import Uop, UopKind


def warm_ordered_index(memory: MemoryHierarchy, index) -> None:
    """Functionally install an ordered structure's working set in the LLC."""
    if isinstance(index, BPlusTree):
        memory.warm_range(index.region.base, index.footprint_bytes)
    elif isinstance(index, MlpTrie):
        memory.warm_range(index.buckets.base, index.buckets.size)
        if index.overflow is not None:
            memory.warm_range(index.overflow.base, index.overflow.size)
    elif isinstance(index, WormholeIndex):
        memory.warm_range(index.leaves.base, index.leaves.size)
        memory.warm_range(index.meta.base, index.meta.size)
        if index.overflow is not None:
            memory.warm_range(index.overflow.base, index.overflow.size)
    else:
        raise TypeError(f"not an ordered index: {type(index).__name__}")


class _OrderedTraceGenerator:
    """Shared stream plumbing for the per-structure generators."""

    #: Probes consumed per yielded trace (batched descent overrides).
    tuples_per_trace = 1

    def __init__(self, probe_keys: Column) -> None:
        if not probe_keys.is_materialized:
            raise ValueError("probe key column must be materialized in "
                             "simulated memory before tracing")
        self.probe_keys = probe_keys

    def probe_uops(self, row: int, stream_base: int) -> List[Uop]:
        """The uop trace for one probe, with deps offset by ``stream_base``."""
        raise NotImplementedError

    def stream(self, rows: Optional[Sequence[int]] = None) -> Iterator[List[Uop]]:
        """Yield per-trace uop lists with stream-consistent dep indices."""
        if rows is None:
            rows = range(len(self.probe_keys.values))
        base = 0
        for row in rows:
            uops = self.probe_uops(row, base)
            yield uops
            base += len(uops)


class TreeTraceGenerator(_OrderedTraceGenerator):
    """Per-probe B+-tree descents: the dependent-load chain baseline."""

    def __init__(self, tree: BPlusTree, probe_keys: Column,
                 model_mispredicts: bool = True) -> None:
        super().__init__(probe_keys)
        self.tree = tree
        self.model_mispredicts = model_mispredicts

    def probe_uops(self, row: int, stream_base: int) -> List[Uop]:
        """One root-to-leaf descent: a load per level, each dependent
        on its parent's load — the pointer chase an OoO window can only
        overlap *across* probes, never within one."""
        tree = self.tree
        uops: List[Uop] = []

        def pos() -> int:
            return stream_base + len(uops)

        key = int(self.probe_keys.values[row])
        uops.append(Uop(UopKind.LOAD, addr=self.probe_keys.address_of(row)))
        key_ready = pos() - 1

        node_dep = key_ready
        for node in tree.descend_path(key):
            # Meta word: leaf test.  The node address came from the parent.
            uops.append(Uop(UopKind.LOAD, addr=node, deps=(node_dep,)))
            meta_ready = pos() - 1
            uops.append(Uop(UopKind.ALU, deps=(meta_ready,)))
            uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
            if tree.node_is_leaf(node):
                matched = None
                for slot in range(_btree.FANOUT):
                    uops.append(Uop(
                        UopKind.LOAD,
                        addr=node + _btree._KEYS_OFFSET + 4 * slot,
                        deps=(meta_ready,)))
                    uops.append(Uop(UopKind.ALU,
                                    deps=(pos() - 1, key_ready)))
                    uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
                    if tree.node_key(node, slot) == key:
                        matched = slot
                        break
                if matched is not None:
                    uops.append(Uop(
                        UopKind.LOAD,
                        addr=node + _btree._PAYLOADS_OFFSET + 4 * matched,
                        deps=(meta_ready,)))
                elif self.model_mispredicts:
                    # The miss exit deviates from the common found path.
                    uops.append(Uop(UopKind.BRANCH, deps=(meta_ready,),
                                    mispredict=True))
            else:
                slot = 0
                while slot < _btree.FANOUT and key > tree.node_key(node, slot):
                    uops.append(Uop(
                        UopKind.LOAD,
                        addr=node + _btree._KEYS_OFFSET + 4 * slot,
                        deps=(meta_ready,)))
                    uops.append(Uop(UopKind.ALU,
                                    deps=(pos() - 1, key_ready)))
                    uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
                    slot += 1
                if slot < _btree.FANOUT:
                    uops.append(Uop(
                        UopKind.LOAD,
                        addr=node + _btree._KEYS_OFFSET + 4 * slot,
                        deps=(meta_ready,)))
                    uops.append(Uop(UopKind.ALU,
                                    deps=(pos() - 1, key_ready)))
                    uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
                # Child pointer: the dependency that serializes the descent.
                uops.append(Uop(
                    UopKind.LOAD,
                    addr=node + _btree._CHILDREN_OFFSET + 8 * slot,
                    deps=(meta_ready,)))
                node_dep = pos() - 1
        # Probe-loop bookkeeping.
        uops.append(Uop(UopKind.ALU))
        uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
        return uops


class TrieTraceGenerator(_OrderedTraceGenerator):
    """Per-probe hashed-trie lookups: independent per-level fetches."""

    def __init__(self, trie: MlpTrie, probe_keys: Column,
                 model_mispredicts: bool = True) -> None:
        super().__init__(probe_keys)
        self.trie = trie
        self.model_mispredicts = model_mispredicts
        self._typical_depth = max(1, round(trie.mean_depth))

    def probe_uops(self, row: int, stream_base: int) -> List[Uop]:
        """One MLP-trie lookup: every candidate bucket address depends
        only on the key load, so the level fetches issue in parallel."""
        trie = self.trie
        uops: List[Uop] = []

        def pos() -> int:
            return stream_base + len(uops)

        key = int(self.probe_keys.values[row])
        uops.append(Uop(UopKind.LOAD, addr=self.probe_keys.address_of(row)))
        key_ready = pos() - 1

        hit_depth = None
        for depth in range(1, _trie.MAX_DEPTH + 1):
            # Probe value, hash and bucket address are functions of the
            # key alone: the whole address chain for this depth depends
            # only on the key load, NOT on any other depth — the MLP the
            # layout exists to expose.
            uops.append(Uop(UopKind.ALU, deps=(key_ready,)))  # shift
            uops.append(Uop(UopKind.ALU, deps=(pos() - 1,)))  # + depth tag
            prev = pos() - 1
            for _step in trie.hash_spec.steps:
                for _ in range(HOST_OPS_PER_HASH_STEP):
                    uops.append(Uop(UopKind.ALU, deps=(prev,)))
                    prev = pos() - 1
            for _ in range(3):                   # mask, scale, base add
                uops.append(Uop(UopKind.ALU, deps=(prev,)))
                prev = pos() - 1
            addr_ready = prev

            expect = tag_value(key, depth)
            block_dep = addr_ready
            found = False
            for block in trie.chain_blocks(trie.bucket_addr(key, depth)):
                for index in range(_trie.SLOTS_PER_BUCKET):
                    slot = block + _trie._SLOT_BASE + index * _trie.SLOT_BYTES
                    uops.append(Uop(UopKind.LOAD,
                                    addr=slot + _trie._TAG_OFFSET,
                                    deps=(block_dep,)))
                    uops.append(Uop(UopKind.ALU, deps=(pos() - 1, key_ready)))
                    uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
                    if trie.slot_tag(slot) == expect:
                        uops.append(Uop(UopKind.LOAD,
                                        addr=slot + _trie._PAYLOAD_OFFSET,
                                        deps=(block_dep,)))
                        found = True
                        break
                if found:
                    break
                # Overflow pointer: the intra-bucket chain IS dependent.
                uops.append(Uop(UopKind.LOAD,
                                addr=block + _trie._OVERFLOW_OFFSET,
                                deps=(block_dep,)))
                block_dep = pos() - 1
                uops.append(Uop(UopKind.BRANCH, deps=(block_dep,)))
            if found:
                hit_depth = depth
                break
        mispredict = (self.model_mispredicts
                      and (hit_depth or _trie.MAX_DEPTH) != self._typical_depth)
        uops.append(Uop(UopKind.ALU))
        uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,),
                        mispredict=mispredict))
        return uops


class WormholeTraceGenerator(_OrderedTraceGenerator):
    """Per-probe wormhole lookups: binary search then a bounded walk."""

    def __init__(self, index: WormholeIndex, probe_keys: Column,
                 model_mispredicts: bool = True) -> None:
        super().__init__(probe_keys)
        self.index = index
        self.model_mispredicts = model_mispredicts

    def probe_uops(self, row: int, stream_base: int) -> List[Uop]:
        """One wormhole lookup: binary search over prefix depths in the
        meta hash, then a single leaf scan."""
        wh = self.index
        uops: List[Uop] = []

        def pos() -> int:
            return stream_base + len(uops)

        key = int(self.probe_keys.values[row])
        uops.append(Uop(UopKind.LOAD, addr=self.probe_keys.address_of(row)))
        key_ready = pos() - 1

        # Binary search over prefix depths.  Unlike the trie, the NEXT
        # depth to probe is decided by the CURRENT probe's outcome, so
        # each probe's address chain carries a dependency on the previous
        # probe — a short dependent chain (log depths), traded for the
        # tree's tall one.
        lo, hi = 0, _wormhole.MAX_DEPTH
        best = wh.first_leaf
        outcome_dep = key_ready
        while lo < hi:
            mid = (lo + hi + 1) // 2
            uops.append(Uop(UopKind.ALU, deps=(key_ready, outcome_dep)))
            uops.append(Uop(UopKind.ALU, deps=(pos() - 1,)))
            prev = pos() - 1
            for _step in wh.hash_spec.steps:
                for _ in range(HOST_OPS_PER_HASH_STEP):
                    uops.append(Uop(UopKind.ALU, deps=(prev,)))
                    prev = pos() - 1
            for _ in range(3):
                uops.append(Uop(UopKind.ALU, deps=(prev,)))
                prev = pos() - 1

            value = probe_value(key, mid)
            found = None
            block_dep = prev
            block = wh.meta_bucket_addr(value)
            while block != NULL_PTR and found is None:
                hit = False
                for index in range(_wormhole.META_SLOTS_PER_BUCKET):
                    slot = (block + _wormhole._META_SLOT_BASE
                            + index * _wormhole.META_SLOT_BYTES)
                    uops.append(Uop(UopKind.LOAD,
                                    addr=slot + _wormhole._META_TAG_OFFSET,
                                    deps=(block_dep,)))
                    uops.append(Uop(UopKind.ALU, deps=(pos() - 1, key_ready)))
                    uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
                    if wh.memory.read_u64(
                            slot + _wormhole._META_TAG_OFFSET) == value:
                        uops.append(Uop(
                            UopKind.LOAD,
                            addr=slot + _wormhole._META_LEAF_OFFSET,
                            deps=(block_dep,)))
                        found = wh.memory.read_u64(
                            slot + _wormhole._META_LEAF_OFFSET)
                        hit = True
                        break
                if hit:
                    break
                uops.append(Uop(UopKind.LOAD,
                                addr=block + _wormhole._META_OVERFLOW_OFFSET,
                                deps=(block_dep,)))
                block_dep = pos() - 1
                uops.append(Uop(UopKind.BRANCH, deps=(block_dep,)))
                block = wh.memory.read_u64(
                    block + _wormhole._META_OVERFLOW_OFFSET)
            outcome_dep = pos() - 1
            if found is None:
                hi = mid - 1
            else:
                best = found
                lo = mid

        # Forward leaf walk: anchors are read through a dependent chain.
        leaf = best
        leaf_dep = outcome_dep
        while True:
            uops.append(Uop(UopKind.LOAD,
                            addr=leaf + _wormhole._NEXT_LEAF_OFFSET,
                            deps=(leaf_dep,)))
            next_ready = pos() - 1
            nxt = wh.next_leaf(leaf)
            if nxt == NULL_PTR:
                uops.append(Uop(UopKind.BRANCH, deps=(next_ready,)))
                break
            uops.append(Uop(UopKind.LOAD,
                            addr=nxt + _wormhole._KEYS_OFFSET,
                            deps=(next_ready,)))
            uops.append(Uop(UopKind.ALU, deps=(pos() - 1, key_ready)))
            uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
            if wh.leaf_key(nxt, 0) > key:
                break
            leaf = nxt
            leaf_dep = next_ready

        # Final leaf: scan slots for the key.
        matched = None
        for slot in range(_wormhole.FANOUT):
            uops.append(Uop(UopKind.LOAD,
                            addr=leaf + _wormhole._KEYS_OFFSET + 4 * slot,
                            deps=(leaf_dep,)))
            uops.append(Uop(UopKind.ALU, deps=(pos() - 1, key_ready)))
            uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
            if wh.leaf_key(leaf, slot) == key:
                matched = slot
                break
        if matched is not None:
            uops.append(Uop(
                UopKind.LOAD,
                addr=leaf + _wormhole._PAYLOADS_OFFSET + 4 * matched,
                deps=(leaf_dep,)))
        elif self.model_mispredicts:
            uops.append(Uop(UopKind.BRANCH, deps=(leaf_dep,),
                            mispredict=True))
        uops.append(Uop(UopKind.ALU))
        uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
        return uops


class BatchedTreeTraceGenerator(_OrderedTraceGenerator):
    """Level-wise batched descents: each trace consumes ``batch`` probes."""

    def __init__(self, tree: BPlusTree, probe_keys: Column,
                 batch: int = 4, sort_batches: bool = True) -> None:
        super().__init__(probe_keys)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.tree = tree
        self.batch = batch
        self.sort_batches = sort_batches
        self.tuples_per_trace = batch

    def stream(self, rows: Optional[Sequence[int]] = None) -> Iterator[List[Uop]]:
        """Yield one trace per whole batch (a trailing partial batch is
        dropped, mirroring the serve layer's fixed-size batches)."""
        if rows is None:
            rows = range(len(self.probe_keys.values))
        rows = list(rows)
        base = 0
        for start in range(0, len(rows) - self.batch + 1, self.batch):
            uops = self.batch_uops(rows[start:start + self.batch], base)
            yield uops
            base += len(uops)

    def batch_uops(self, rows: Sequence[int], stream_base: int) -> List[Uop]:
        """One level-wise batched descent: each distinct node on the
        batch's frontier is loaded once per level and later members of
        the group reuse the loaded block."""
        tree = self.tree
        uops: List[Uop] = []

        def pos() -> int:
            return stream_base + len(uops)

        keys = [int(self.probe_keys.values[row]) for row in rows]
        key_ready: Dict[int, int] = {}
        for slot, row in enumerate(rows):
            uops.append(Uop(UopKind.LOAD,
                            addr=self.probe_keys.address_of(row)))
            key_ready[slot] = pos() - 1
        order = sorted(range(len(keys)), key=keys.__getitem__) \
            if self.sort_batches else list(range(len(keys)))

        # frontier: probe slot -> (node, position of the parent's load).
        frontier = [(i, tree.root, key_ready[i]) for i in order]
        while frontier:
            groups: Dict[int, List] = {}
            for i, node, dep in frontier:
                groups.setdefault(node, []).append((i, dep))
            next_frontier = []
            for node, members in groups.items():
                # One fetch per distinct node per level — the batched
                # amortization.  Later members reuse the loaded block.
                uops.append(Uop(UopKind.LOAD, addr=node,
                                deps=(members[0][1],)))
                node_ready = pos() - 1
                uops.append(Uop(UopKind.ALU, deps=(node_ready,)))
                uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
                if tree.node_is_leaf(node):
                    for i, _dep in members:
                        for slot in range(_btree.FANOUT):
                            uops.append(Uop(UopKind.ALU,
                                            deps=(node_ready, key_ready[i])))
                            uops.append(Uop(UopKind.BRANCH,
                                            deps=(pos() - 1,)))
                            if tree.node_key(node, slot) == keys[i]:
                                uops.append(Uop(
                                    UopKind.LOAD,
                                    addr=(node + _btree._PAYLOADS_OFFSET
                                          + 4 * slot),
                                    deps=(node_ready,)))
                                break
                else:
                    for i, _dep in members:
                        slot = 0
                        while (slot < _btree.FANOUT
                               and keys[i] > tree.node_key(node, slot)):
                            uops.append(Uop(UopKind.ALU,
                                            deps=(node_ready, key_ready[i])))
                            uops.append(Uop(UopKind.BRANCH,
                                            deps=(pos() - 1,)))
                            slot += 1
                        if slot < _btree.FANOUT:
                            uops.append(Uop(UopKind.ALU,
                                            deps=(node_ready, key_ready[i])))
                            uops.append(Uop(UopKind.BRANCH,
                                            deps=(pos() - 1,)))
                        child = tree.node_child(node, slot)
                        if child == NULL_PTR:
                            child = tree._last_real_child(node)
                        next_frontier.append((i, child, node_ready))
            frontier = next_frontier
        uops.append(Uop(UopKind.ALU))
        uops.append(Uop(UopKind.BRANCH, deps=(pos() - 1,)))
        return uops


def make_ordered_generator(index_class: str, index, probe_keys: Column, *,
                           batch: int = 4) -> _OrderedTraceGenerator:
    """The trace generator matching an ordered workload class."""
    if index_class == "btree":
        return TreeTraceGenerator(index, probe_keys)
    if index_class == "trie":
        return TrieTraceGenerator(index, probe_keys)
    if index_class == "wormhole":
        return WormholeTraceGenerator(index, probe_keys)
    if index_class == "batched":
        return BatchedTreeTraceGenerator(index, probe_keys, batch=batch)
    raise ValueError(f"unknown ordered index class {index_class!r}")


def measure_ordered_indexing(index, probe_keys: Column, *,
                             index_class: str,
                             core: str = "ooo",
                             config: SystemConfig = DEFAULT_CONFIG,
                             warmup_probes: int = 64,
                             measure_probes: Optional[int] = None,
                             batch: int = 4,
                             batch_size: int = 128,
                             warm_index: bool = True,
                             bulk: bool = False) -> CoreTimingResult:
    """Run an ordered-index probe loop on a baseline core model.

    Mirrors :func:`repro.cpu.timing.measure_indexing`; ``bulk`` is
    accepted for interface parity but always runs the event-driven path —
    ordered traces interleave variable-length dependent chains that the
    array replay cannot schedule unambiguously, and using one path keeps
    ``--bulk`` output bit-identical by construction.

    ``warmup_probes``/``measure_probes`` count probes (tuples), not
    traces: for the batched class they are rounded down to whole batches.
    """
    del bulk  # interface parity only; see docstring
    memory = MemoryHierarchy(config)
    if warm_index:
        warm_ordered_index(memory, index)
    if core == "ooo":
        model = OutOfOrderCore(config.ooo, memory)
    elif core == "inorder":
        model = InOrderCore(config.inorder, memory)
    else:
        raise ValueError(f"unknown core model {core!r} (want 'ooo' or 'inorder')")

    generator = make_ordered_generator(index_class, index, probe_keys,
                                       batch=batch)
    per_trace = generator.tuples_per_trace
    total_rows = len(probe_keys.values)
    limit = total_rows if measure_probes is None else min(
        total_rows, warmup_probes + measure_probes)
    rows = range((limit // per_trace) * per_trace)
    warmup_traces = warmup_probes // per_trace
    if len(rows) // per_trace <= warmup_traces:
        raise ValueError(
            f"need more than {warmup_probes} probes to measure after warm-up")

    stats = BatchStats(batch_size=max(1, batch_size // per_trace))
    measured_tuples = 0
    measure_start = 0.0
    for trace_number, uops in enumerate(generator.stream(rows)):
        before = model.completion_time
        model.execute(uops)
        if trace_number == warmup_traces - 1:
            measure_start = model.completion_time
        elif trace_number >= warmup_traces:
            stats.add(model.completion_time - before)
            measured_tuples += per_trace

    total = model.completion_time - measure_start
    mean, half = stats.interval()
    registry = StatsRegistry()
    model.register_into(registry, f"cpu.{core}")
    memory.register_into(registry, "mem")
    warm_tuples = warmup_traces * per_trace
    return CoreTimingResult(
        core=core,
        cycles_per_tuple=total / measured_tuples,
        ci_half_width=half / per_trace,
        tuples=measured_tuples,
        total_cycles=total,
        mem_stall_per_tuple=model.mem_stall_cycles / max(1, model.uops_executed)
        * (model.uops_executed / max(1, measured_tuples + warm_tuples)),
        tlb_stall_per_tuple=model.tlb_stall_cycles
        / max(1, measured_tuples + warm_tuples),
        l1_miss_ratio=memory.stats.l1d.miss_ratio,
        llc_miss_ratio=memory.stats.llc.miss_ratio,
        stats=registry.to_dict(),
    )
