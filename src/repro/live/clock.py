"""Clocks for the wall-clock serving driver.

The :class:`~repro.serve.core.ServingCore` is clock-free: it consumes
explicit ``now`` timestamps in *cycles*.  The discrete-event driver gets
those from the engine; the live driver gets them from one of the clocks
here.  Both expose a single reading method, ``now()``, returning
monotonic cycles.

:class:`WallClock` maps ``time.monotonic`` onto cycles at a configured
frequency — the production path.  :class:`ManualClock` is advanced
explicitly by the caller — the deterministic-replay path, used both by
the tests (so replay results never depend on host speed) and by the
demo server's virtual-time mode.
"""

from __future__ import annotations

import time

from ..errors import ServeError


class WallClock:
    """Monotonic wall-clock time expressed in simulated cycles.

    ``cycles_per_second`` sets the exchange rate (default 1 GHz, so one
    cycle is one nanosecond).  ``time_fn`` is injectable for tests.  The
    origin is captured at construction, so ``now()`` starts near zero —
    matching the DES convention that runs begin at cycle 0.
    """

    def __init__(self, cycles_per_second: float = 1.0e9,
                 time_fn=time.monotonic) -> None:
        if not cycles_per_second > 0:
            raise ServeError(f"cycles_per_second must be > 0, "
                             f"got {cycles_per_second!r}")
        self.cycles_per_second = float(cycles_per_second)
        self._time_fn = time_fn
        self._origin = time_fn()

    def now(self) -> float:
        """Cycles elapsed since the clock was created."""
        return (self._time_fn() - self._origin) * self.cycles_per_second

    def seconds_until(self, cycle: float) -> float:
        """Wall seconds from now until ``cycle`` (0 when already past).

        The asyncio pump sleeps this long before firing the service's
        next timed event.
        """
        return max(0.0, (cycle - self.now()) / self.cycles_per_second)


class ManualClock:
    """A clock that only moves when told to — deterministic replay.

    ``advance`` moves time forward by a delta; ``advance_to`` moves to an
    absolute cycle (and refuses to go backwards, preserving the
    monotonic contract every driver relies on).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The manually advanced current cycle."""
        return self._now

    def advance(self, cycles: float) -> float:
        """Move forward by ``cycles``; returns the new time."""
        if cycles < 0:
            raise ServeError(f"cannot advance a clock backwards "
                             f"({cycles!r} cycles)")
        self._now += cycles
        return self._now

    def advance_to(self, cycle: float) -> float:
        """Move to absolute ``cycle`` (no-op when already past it)."""
        if cycle > self._now:
            self._now = float(cycle)
        return self._now

    def seconds_until(self, cycle: float) -> float:
        """Virtual time never needs real sleeping."""
        return 0.0
