"""A seeded burst client for the live serving front-end.

Replays a pre-built open-loop request schedule (the same
:func:`~repro.serve.simulate.build_requests` streams the DES driver
consumes) against a running :class:`~repro.live.server.LiveServer` and
collects every response.  In replay mode each probe carries its arrival
cycle, so the run is deterministic end to end; in wall mode the client
paces itself with real sleeps at the schedule's inter-arrival gaps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

try:  # pragma: no cover - asyncio ships with every supported CPython
    import asyncio
except ImportError:  # pragma: no cover
    asyncio = None  # type: ignore[assignment]

from ..errors import ServeError
from ..serve.arrivals import Request


async def run_burst(host: str, port: int, requests: Sequence[Request], *,
                    replay: bool = True,
                    cycles_per_second: float = 1.0e9,
                    shutdown: bool = True) -> Dict[str, Any]:
    """Send ``requests`` to a live server; return the collected responses.

    The returned dict holds ``responses`` (per-request settlements,
    keyed by seq), ``stats`` (the pre-shutdown snapshot) and — when
    ``shutdown`` is set — ``result`` (the server's final
    conservation-checked summary).
    """
    if asyncio is None:  # pragma: no cover - exercised only when stubbed
        raise ServeError("the live client needs asyncio")
    reader, writer = await asyncio.open_connection(host, port)
    responses: Dict[int, Dict[str, Any]] = {}
    stats: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    errors: List[str] = []
    done = asyncio.Event()

    async def collect() -> None:
        nonlocal stats, result
        while True:
            line = await reader.readline()
            if not line:
                break
            message = json.loads(line)
            if "seq" in message:
                responses[message["seq"]] = message
            elif "stats" in message:
                stats = message["stats"]
                if not shutdown:
                    break
            elif "result" in message:
                result = message["result"]
                break
            elif "error" in message:
                errors.append(message["error"])
        done.set()

    collector = asyncio.ensure_future(collect())
    try:
        previous = 0.0
        for request in requests:
            if not replay:
                gap_seconds = (request.arrival - previous) / cycles_per_second
                previous = request.arrival
                if gap_seconds > 0:
                    await asyncio.sleep(gap_seconds)
            message = {"op": "probe", "keys": request.keys,
                       "at": request.arrival}
            writer.write(json.dumps(message).encode("utf-8") + b"\n")
            await writer.drain()
        writer.write(b'{"op": "stats"}\n')
        if shutdown:
            writer.write(b'{"op": "shutdown"}\n')
        await writer.drain()
        await done.wait()
    finally:
        collector.cancel()
        writer.close()
    return {"responses": responses, "stats": stats, "result": result,
            "errors": errors}
