"""repro.live: the wall-clock serving front-end.

The serving layer's third driver (after the discrete-event and
``--bulk`` paths): the same transport-agnostic
:class:`~repro.serve.core.ServingCore` state machine, driven by real
time and real request ingestion instead of a simulated schedule.

Layers, innermost first:

* :mod:`~repro.live.clock` — :class:`WallClock` (monotonic seconds →
  cycles) and :class:`ManualClock` (deterministic replay).
* :mod:`~repro.live.service` — :class:`LiveService`, a synchronous
  poll-able state machine: arrivals via ``offer``, time via ``advance``,
  with an internal heap for batch completions, deadline holds and
  controller ticks.  Adds the live-level adaptation: elastic walker
  allocation on the controller's windowed-p99 level delta.
* :mod:`~repro.live.server` / :mod:`~repro.live.client` — an asyncio
  newline-JSON transport (probe / stats / trail / shutdown) and a
  seeded burst client.  asyncio is import-guarded and only touched by
  these modules, so the clock and service layers stay hermetic.

``python -m repro.live --demo`` boots the whole stack against a seeded
overload burst and checks request conservation plus at least one
obs-driven adaptive action — the CI live-smoke entry point.
"""

from .clock import ManualClock, WallClock
from .service import LiveService

__all__ = [
    "LiveService",
    "LiveServer",
    "ManualClock",
    "WallClock",
    "run_burst",
    "start_server",
]


def __getattr__(name):
    # The transport layer imports asyncio; load it only when asked for,
    # so `import repro.live` stays transport-free.
    if name in ("LiveServer", "start_server"):
        from . import server
        return getattr(server, name)
    if name == "run_burst":
        from .client import run_burst
        return run_burst
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
