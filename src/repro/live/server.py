"""The asyncio front-end over :class:`~repro.live.service.LiveService`.

A newline-delimited JSON protocol on a TCP socket; asyncio is purely
transport — every serving decision stays inside the synchronous
:class:`LiveService` state machine, so the protocol layer holds no
policy at all.  Requests:

* ``{"op": "probe", "keys": K, "at": CYCLES}`` — offer one request.
  Shed arrivals answer immediately; admitted ones answer when they
  settle (``served`` with latency, or ``expired``).  ``at`` is only
  honored in replay mode (below).
* ``{"op": "stats"}`` — the live summary snapshot.
* ``{"op": "trail", "last": N}`` — the last N captured walker trails
  (per-request traversal paths; see :mod:`repro.widx.trail`), when a
  trail ring is attached.
* ``{"op": "shutdown"}`` — close admission, drain all queued work, and
  answer with the final conservation-checked result.

Two time modes:

* **replay** (default): virtual time on a
  :class:`~repro.live.clock.ManualClock`.  Each probe carries its
  arrival cycle in ``at`` and the server advances the clock to it —
  fully deterministic no matter how fast the host or network is, which
  is what the CI smoke test and the demo rely on.
* **wall**: a :class:`~repro.live.clock.WallClock` maps
  ``time.monotonic`` to cycles and a background pump task sleeps until
  the service's next timed event.

asyncio is stdlib, but the import is guarded so that environments
without it (or with it deliberately stubbed out) can still import
:mod:`repro.live`'s clock and service layers — only this transport
needs it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - asyncio ships with every supported CPython
    import asyncio
except ImportError:  # pragma: no cover
    asyncio = None  # type: ignore[assignment]

from ..errors import ServeError
from ..serve.arrivals import Request
from .clock import ManualClock
from .service import LiveService

#: Pump granularity in wall mode: the longest the server sleeps before
#: re-checking the service's event heap (seconds).
PUMP_SLICE_SECONDS = 0.02


def _require_asyncio() -> None:
    if asyncio is None:  # pragma: no cover - exercised only when stubbed
        raise ServeError(
            "the live server transport needs asyncio; the clock and "
            "LiveService layers work without it")


class LiveServer:
    """One TCP server wrapping one :class:`LiveService`."""

    def __init__(self, service: LiveService, *, trail=None,
                 replay: bool = True) -> None:
        _require_asyncio()
        if replay and not isinstance(service.clock, ManualClock):
            raise ServeError("replay mode needs a ManualClock on the service")
        self.service = service
        self.trail = trail
        self.replay = replay
        self.port: Optional[int] = None
        self._server = None
        self._pump_task = None
        self._stopping = None
        self._settled: List[Tuple[Request, str, float]] = []
        self._waiters: Dict[int, Any] = {}  # seq -> StreamWriter
        service.on_settled = self._on_settled

    # -- lifecycle -------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and listen; port 0 picks an ephemeral port (see ``.port``)."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        if not self.replay:
            self._pump_task = asyncio.ensure_future(self._pump())

    async def wait_closed(self) -> None:
        """Block until a shutdown op stops the server."""
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        if self._pump_task is not None:
            self._pump_task.cancel()

    async def _pump(self) -> None:
        """Wall mode: fire the service's timed events as real time passes."""
        service = self.service
        while not self._stopping.is_set():
            service.advance(service.clock.now())
            self._flush_settled()
            upcoming = service.next_event()
            delay = (PUMP_SLICE_SECONDS if upcoming is None
                     else min(PUMP_SLICE_SECONDS,
                              service.clock.seconds_until(upcoming)))
            await asyncio.sleep(max(delay, 0.0))

    # -- settlement fan-out ----------------------------------------------

    def _on_settled(self, request: Request, status: str, now: float) -> None:
        self._settled.append((request, status, now))

    def _flush_settled(self) -> None:
        while self._settled:
            request, status, now = self._settled.pop(0)
            writer = self._waiters.pop(request.seq, None)
            if writer is None or writer.is_closing():
                continue
            payload: Dict[str, Any] = {"seq": request.seq, "status": status}
            if status == "served":
                payload["latency"] = now - request.arrival
            _write(writer, payload)

    # -- protocol --------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("message must be a JSON object")
                except ValueError as exc:
                    _write(writer, {"error": f"bad message: {exc}"})
                    continue
                try:
                    self._dispatch(message, writer)
                except ServeError as exc:
                    _write(writer, {"error": str(exc)})
                self._flush_settled()
                await writer.drain()
        finally:
            writer.close()

    def _dispatch(self, message: Dict[str, Any], writer) -> None:
        op = message.get("op")
        if op == "probe":
            self._op_probe(message, writer)
        elif op == "stats":
            _write(writer, {"stats": self.service.summary()})
        elif op == "trail":
            self._op_trail(message, writer)
        elif op == "shutdown":
            self._op_shutdown(writer)
        else:
            _write(writer, {"error": f"unknown op {op!r}; valid ops are "
                                     f"'probe', 'stats', 'trail', "
                                     f"'shutdown'"})

    def _op_probe(self, message: Dict[str, Any], writer) -> None:
        service = self.service
        if self.replay and "at" in message:
            service.clock.advance_to(float(message["at"]))
        outcome = service.offer(keys=message.get("keys"))
        if outcome["status"] == "admitted":
            # Answer when the request settles (served or expired).
            self._waiters[outcome["seq"]] = writer
        else:
            _write(writer, outcome)

    def _op_trail(self, message: Dict[str, Any], writer) -> None:
        if self.trail is None:
            _write(writer, {"error": "no trail ring attached; start the "
                                     "server with trail capture enabled"})
            return
        last = message.get("last")
        entries = list(self.trail.entries)
        if last is not None:
            entries = entries[-int(last):]
        _write(writer, {"trails": entries,
                        "recorded": self.trail.recorded,
                        "dropped_entries": self.trail.dropped_entries,
                        "dropped_hops": self.trail.dropped_hops})

    def _op_shutdown(self, writer) -> None:
        service = self.service
        service.close()
        service.drain()
        self._flush_settled()
        result = service.result()
        _write(writer, {"result": {
            "requests": result.requests,
            "completed": result.completed,
            "shed": result.shed,
            "expired": result.expired,
            "in_slo": result.in_slo,
            "makespan": result.makespan,
            "p99": result.p99 if result.latency.count else None,
            "goodput": result.goodput,
            "adaptations": int(service.adaptations.value),
            "walkers_allocated": int(service.walkers_allocated.value),
            "walkers_released": int(service.walkers_released.value),
            "conservation": (result.completed + result.shed
                             + result.expired == result.requests),
        }})
        self._stopping.set()


def _write(writer, payload: Dict[str, Any]) -> None:
    writer.write(json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n")


async def start_server(service: LiveService, *, host: str = "127.0.0.1",
                       port: int = 0, trail=None,
                       replay: bool = True) -> LiveServer:
    """Start a :class:`LiveServer` and return it (``server.port`` is
    bound; ``await server.wait_closed()`` blocks until shutdown)."""
    server = LiveServer(service, trail=trail, replay=replay)
    await server.start(host, port)
    return server
