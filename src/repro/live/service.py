"""The wall-clock serving driver: a poll-able state machine over the core.

:class:`LiveService` is the third driver of the transport-agnostic
:class:`~repro.serve.core.ServingCore` (after the discrete-event and
``--bulk`` paths).  It is deliberately *synchronous*: callers feed it
arrivals via :meth:`offer` and time via :meth:`advance`, and it keeps an
internal timed-event heap (batch completions, deadline-policy holds,
controller ticks) exactly like a tiny discrete-event engine — except
the clock is external.  The asyncio front-end
(:mod:`repro.live.server`) is a thin transport that sleeps until
:meth:`next_event` and calls :meth:`advance`; the deterministic-replay
tests drive the same object from a :class:`~repro.live.clock.ManualClock`
with no asyncio (and so no host-speed dependence) at all.

Policy, admission, shedding, deadlines, SLO accounting and the
degraded-mode controller all come from the core unchanged.  The live
layer adds one adaptation of its own on top of the controller's level
delta: **elastic walker allocation** — the service runs power-frugal on
``walkers_min`` active walkers (service cycles scale by
``walkers_max / walkers_active``) and spends walkers when the windowed
p99 regresses, releasing them again on recovery.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import ServeError
from ..obs import StatsRegistry
from ..serve.arrivals import Request
from ..serve.core import ResilienceConfig, ServeResult, ServingCore
from ..serve.policies import (BatchByDeadline, BatchBySize, SchedulingPolicy,
                              base_policy, parse_policy)
from ..serve.service import ServiceModel
from .clock import ManualClock

#: Settlement statuses delivered to the ``on_settled`` callback.
SETTLED_STATUSES = ("served", "expired")


class LiveService:
    """Live request serving over the transport-agnostic core.

    ``clock`` supplies time (default: a fresh
    :class:`~repro.live.clock.ManualClock`); ``policy`` is a
    :class:`~repro.serve.policies.SchedulingPolicy` or a spec string;
    ``walkers=(min, max)`` opts into elastic walker allocation (requires
    a controller to drive it).  ``on_settled(request, status, now)``
    fires once per admitted request when it is served or expires — the
    server uses it to push completion responses to clients.
    """

    def __init__(self, model: ServiceModel, *,
                 policy: Union[SchedulingPolicy, str, None] = None,
                 cores: int = 1,
                 queue_depth: Optional[int] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 clock=None,
                 walkers: Optional[Tuple[int, int]] = None,
                 registry: Optional[StatsRegistry] = None,
                 on_settled: Optional[Callable[[Request, str, float],
                                               None]] = None) -> None:
        if cores < 1:
            raise ServeError(f"need at least one core, got {cores}")
        if policy is None:
            policy = parse_policy("fifo")
        elif isinstance(policy, str):
            policy = parse_policy(policy)
        self.model = model
        self.cores = cores
        self.clock = clock if clock is not None else ManualClock()
        self.registry = registry if registry is not None else StatsRegistry()
        self.core = ServingCore(policy, model, cores,
                                queue_depth=queue_depth,
                                resilience=resilience,
                                scope=self.registry.scope("serve"))
        self.on_settled = on_settled

        # Elastic walker state: frugal start when a controller can grow
        # it, full power otherwise (matching the calibrated model).
        if walkers is None:
            self.walkers_min = self.walkers_max = 1
        else:
            low, high = walkers
            if not 1 <= low <= high:
                raise ServeError(
                    f"walkers must satisfy 1 <= min <= max, got {walkers!r}")
            self.walkers_min, self.walkers_max = int(low), int(high)
        self.walkers_active = (self.walkers_min
                               if self.core.controller is not None
                               else self.walkers_max)

        live_scope = self.registry.scope("live")
        self.adaptations = live_scope.counter("adaptations")
        self.walkers_allocated = live_scope.counter("walkers_allocated")
        self.walkers_released = live_scope.counter("walkers_released")

        self._queues: List[List[Request]] = [[] for _ in range(cores)]
        self._busy: List[bool] = [False] * cores
        self._holds: List[Optional[float]] = [None] * cores
        self._events: List[tuple] = []   # (time, tiebreak, kind, data)
        self._tiebreak = itertools.count()
        self._now = self.clock.now()
        self.offered = 0
        self.first_arrival: Optional[float] = None
        self.closed = False
        if self.core.controller is not None:
            self._push(self._now + self.core.controller.spec.window,
                       "tick", None)

    # -- event plumbing --------------------------------------------------

    def _push(self, when: float, kind: str, data) -> None:
        heapq.heappush(self._events, (when, next(self._tiebreak), kind, data))

    def next_event(self) -> Optional[float]:
        """The next timed event's cycle (None when nothing is scheduled)."""
        return self._events[0][0] if self._events else None

    def advance(self, now: Optional[float] = None) -> float:
        """Process every timed event up to ``now`` (default: the clock).

        Events fire in timestamp order at their own timestamps, so a
        completion cascading into the next batch is accounted at the
        right instant even when the caller polls late.
        """
        if now is None:
            now = self.clock.now()
        while self._events and self._events[0][0] <= now:
            when, _seq, kind, data = heapq.heappop(self._events)
            self._now = max(self._now, when)
            if kind == "done":
                self._on_done(when, *data)
            elif kind == "hold":
                self._on_hold(when, data)
            else:  # tick
                self._on_tick(when)
        self._now = max(self._now, now)
        return self._now

    # -- arrivals --------------------------------------------------------

    def offer(self, keys: Optional[int] = None,
              now: Optional[float] = None, client: int = 0) -> Dict[str, Any]:
        """Admit (or shed) one arriving request.

        Returns ``{"seq", "status"}`` with status ``admitted`` or
        ``shed``; admitted requests settle later through ``on_settled``.
        Raises when the service is closed, the request's key count does
        not match the calibrated model, or admission would block with no
        shed depth declared (the open-loop contract).
        """
        if self.closed:
            raise ServeError("the live service is closed to new arrivals")
        if keys is None:
            keys = self.model.keys_per_request
        if keys != self.model.keys_per_request:
            raise ServeError(
                f"request carries {keys} keys but the service model was "
                f"calibrated for {self.model.keys_per_request}")
        now = self.advance(now)
        seq = self.offered
        self.offered += 1
        if self.first_arrival is None:
            self.first_arrival = now
        index = seq % self.cores
        if not self.core.try_admit(len(self._queues[index]),
                                   f"core{index}.admit"):
            return {"seq": seq, "status": "shed"}
        self._queues[index].append(
            Request(seq=seq, client=client, arrival=now, keys=keys))
        self._try_start(index, now)
        return {"seq": seq, "status": "admitted"}

    # -- per-core serving ------------------------------------------------

    def _form_batch(self, index: int,
                    now: float) -> Tuple[Optional[List[Request]],
                                         Optional[float]]:
        """Form the next batch per the active policy's declaration.

        Returns ``(batch, None)`` or ``(None, hold_until)`` when a
        deadline policy is still holding its batch open.  The policy
        objects are reused as declarations (size caps, hold windows);
        their generator ``collect`` protocol stays DES-only.
        """
        queue = self._queues[index]
        base = base_policy(self.core.active)
        if isinstance(base, BatchBySize):
            take = min(base.max_batch, len(queue))
        elif isinstance(base, BatchByDeadline):
            ready_at = queue[0].arrival + base.wait
            if now < ready_at:
                return None, ready_at
            cap = base.max_batch if base.max_batch is not None else len(queue)
            take = min(cap, len(queue))
        else:  # FIFO
            take = 1
        batch = queue[:take]
        del queue[:take]
        return batch, None

    def _walker_scale(self) -> float:
        return self.walkers_max / self.walkers_active

    def _try_start(self, index: int, now: float) -> None:
        while not self._busy[index] and self._queues[index]:
            batch, hold_until = self._form_batch(index, now)
            if batch is None:
                if self._holds[index] is None:
                    self._holds[index] = hold_until
                    self._push(hold_until, "hold", index)
                return
            capacity = self.core.capacities[index]
            kept = self.core.drop_doomed(batch, now, capacity)
            if len(kept) != len(batch):
                alive = {request.seq for request in kept}
                for request in batch:
                    if request.seq not in alive:
                        self._settle(request, "expired", now)
            if not kept:
                continue
            cycles = capacity.cycles_for(len(kept), now) * self._walker_scale()
            self._busy[index] = True
            self._push(now + cycles, "done", (index, kept, cycles))
            return

    def _on_done(self, now: float, index: int, batch: List[Request],
                 cycles: float) -> None:
        self.core.finish_batch(batch, cycles, now)
        self._busy[index] = False
        for request in batch:
            self._settle(request, "served", now)
        self._try_start(index, now)

    def _on_hold(self, now: float, index: int) -> None:
        self._holds[index] = None
        if not self._busy[index]:
            self._try_start(index, now)

    def _settle(self, request: Request, status: str, now: float) -> None:
        if self.on_settled is not None:
            self.on_settled(request, status, now)

    # -- adaptive control --------------------------------------------------

    def _on_tick(self, now: float) -> None:
        delta = self.core.controller_tick(now)
        if delta != 0:
            self.adaptations.value += 1
            self._adapt_walkers(delta)
        if not self.closed or self._pending():
            self._push(now + self.core.controller.spec.window, "tick", None)

    def _adapt_walkers(self, delta: int) -> None:
        """The live-level elastic knob on the controller's level delta:
        degrade spends a walker (power for latency), recover releases
        one back to the frugal floor."""
        if delta > 0 and self.walkers_active < self.walkers_max:
            self.walkers_active += 1
            self.walkers_allocated.value += 1
        elif delta < 0 and self.walkers_active > self.walkers_min:
            self.walkers_active -= 1
            self.walkers_released.value += 1

    # -- shutdown and results ----------------------------------------------

    def _pending(self) -> bool:
        return any(self._busy) or any(self._queues)

    def close(self, now: Optional[float] = None) -> float:
        """Stop accepting arrivals (queued work still drains)."""
        now = self.advance(now)
        self.closed = True
        return now

    def drain(self) -> float:
        """Run every remaining timed event to completion.

        Events fire at their already-scheduled virtual times; a
        :class:`~repro.live.clock.ManualClock` is advanced along so the
        service's clock agrees with its state afterwards.  Only valid
        after :meth:`close` (the controller tick chain stops once the
        service is closed and idle; with arrivals still possible it
        would spin forever).
        """
        if not self.closed:
            raise ServeError("close() the service before drain()")
        while self._events:
            when = self._events[0][0]
            if isinstance(self.clock, ManualClock):
                self.clock.advance_to(when)
            self.advance(when)
        return self._now

    def result(self, label: Optional[str] = None) -> ServeResult:
        """Finalize and return the run's :class:`ServeResult`.

        Checks request conservation (served + shed + expired == offered)
        — call after :meth:`close` and :meth:`drain`.
        """
        if not self.closed or self._pending() or self._events:
            raise ServeError(
                "result() needs a closed, drained service; call close() "
                "then drain() first")
        core = self.core
        end = self._now
        makespan = core.finalize(end)
        core.check_conservation(self.offered)
        first = self.first_arrival if self.first_arrival is not None else 0.0
        span = makespan - first
        offered_rate = self.offered * 1000.0 / span if span > 0 else 0.0
        return ServeResult(
            label=label if label is not None else self.model.label,
            policy=core.base.name, offered=offered_rate, cores=self.cores,
            requests=self.offered, completed=int(core.completed.value),
            makespan=makespan, latency=core.latency, first_arrival=first,
            stats=self.registry.to_dict(),
            shed=int(core.shed.value), expired=int(core.expired.value),
            faults=core.fault_total, slo=core.slo,
            in_slo=int(core.in_slo.value) if core.in_slo is not None else 0)

    def summary(self) -> Dict[str, Any]:
        """A live snapshot for the server's ``stats`` endpoint."""
        core = self.core
        data: Dict[str, Any] = {
            "now": self._now,
            "offered": self.offered,
            "served": int(core.completed.value),
            "shed": int(core.shed.value),
            "expired": int(core.expired.value),
            "queued": sum(len(queue) for queue in self._queues),
            "busy_cores": sum(1 for busy in self._busy if busy),
            "policy": core.active.name,
            "walkers_active": self.walkers_active,
            "adaptations": int(self.adaptations.value),
        }
        if core.latency.count:
            data["p50"] = core.latency.p50
            data["p99"] = core.latency.p99
        if core.in_slo is not None:
            data["in_slo"] = int(core.in_slo.value)
        if core.controller is not None:
            data["controller_level"] = core.controller.level
        return data
