"""``python -m repro.live`` — boot the live serving stack end to end.

The demo starts the asyncio server on an ephemeral localhost port,
replays a seeded open-loop burst through the TCP client, and prints the
final conservation-checked summary as one JSON line.  By default it
runs in deterministic replay mode (virtual time carried on each probe),
so the outcome is identical on any host at any speed — the CI
live-smoke job asserts request conservation and at least one
obs-driven adaptive action on exactly this output.

``--wall`` switches to the wall-clock path (real sleeps, real
monotonic time); ``--trails N`` additionally runs one small seeded Widx
offload with walker-trail capture and serves the traversal paths on the
``trail`` endpoint.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..config import DEFAULT_CONFIG
from ..errors import ReproError
from ..serve.control import parse_controller
from ..serve.core import ResilienceConfig
from ..serve.service import ServiceModel
from ..serve.simulate import build_requests
from .clock import ManualClock, WallClock
from .service import LiveService

#: Synthetic calibration for the demo service (cycles per batch size):
#: batching amortizes, exactly like the measured models.
DEMO_CYCLES = {1: 100.0, 2: 160.0, 4: 280.0}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``python -m repro.live`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Live (wall-clock) serving front-end demo.")
    parser.add_argument("--demo", action="store_true",
                        help="serve a seeded burst end to end and print "
                             "the final summary as JSON")
    parser.add_argument("--requests", type=int, default=400,
                        help="burst size (default: 400)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="offered load, requests per kilocycle "
                             "(default: 20 — a deliberate overload)")
    parser.add_argument("--seed", type=int, default=42,
                        help="arrival-schedule seed")
    parser.add_argument("--keys", type=int, default=8,
                        help="probe keys per request")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--policy", default="shed:64:size:4",
                        help="scheduling policy spec (default: "
                             "shed:64:size:4)")
    parser.add_argument("--slo", type=float, default=2500.0,
                        help="latency SLO in cycles (default: 2500)")
    parser.add_argument("--controller", default="p99:2000:2:3:all",
                        help="degraded-mode controller spec (default: "
                             "p99:2000:2:3:all; pass 'off' to disable)")
    parser.add_argument("--walkers", default="2:4", metavar="MIN:MAX",
                        help="elastic walker range (default: 2:4; pass "
                             "'off' to pin full power)")
    parser.add_argument("--wall", action="store_true",
                        help="use the wall clock (real sleeps) instead of "
                             "deterministic replay")
    parser.add_argument("--cps", type=float, default=1.0e6,
                        help="cycles per second for --wall (default: 1e6)")
    parser.add_argument("--trails", type=int, default=None, metavar="N",
                        help="capture N walker trails from a seeded Widx "
                             "offload and serve them on the trail endpoint")
    return parser


def demo_service(args, clock) -> LiveService:
    """The demo's LiveService: synthetic model, SLO, controller, elastic
    walkers — every adaptive path armed."""
    model = ServiceModel("live-demo", args.keys, dict(DEMO_CYCLES))
    resilience = None
    if args.controller != "off":
        resilience = ResilienceConfig(
            slo=args.slo, controller=parse_controller(args.controller))
    elif args.slo:
        resilience = ResilienceConfig(slo=args.slo)
    walkers = None
    if args.walkers != "off":
        low, _, high = args.walkers.partition(":")
        walkers = (int(low), int(high or low))
    return LiveService(model, policy=args.policy, cores=args.cores,
                       resilience=resilience, clock=clock, walkers=walkers)


def capture_demo_trails(capacity: int, seed: int = 17, probes: int = 120):
    """Run one small seeded Widx offload with trail capture attached.

    The live demo serves *calibrated* requests (no per-request machine
    simulation), so the trail endpoint's traversal paths come from a
    representative offload over a seeded index — same shape of data a
    widx-backed deployment would stream per request.
    """
    import numpy as np

    from ..db.column import Column
    from ..db.datagen import make_rng, probe_keys, unique_keys
    from ..db.hashfn import ROBUST_HASH_32
    from ..db.hashtable import HashIndex, choose_num_buckets
    from ..db.node import KERNEL_LAYOUT
    from ..db.types import DataType
    from ..mem.layout import AddressSpace
    from ..obs import Trail
    from ..widx.offload import offload_probe

    space = AddressSpace()
    rng = make_rng(seed)
    num_keys = 800
    keys = unique_keys(num_keys, 4, rng)
    index = HashIndex(space, KERNEL_LAYOUT,
                      choose_num_buckets(num_keys, 1.0),
                      ROBUST_HASH_32, capacity=num_keys)
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
    values = probe_keys(np.asarray(keys), probes, 1.0, 4, make_rng(seed + 1))
    column = Column("probes", DataType.for_key_bytes(4), values)
    column.materialize(space)
    trail = Trail(capacity=capacity)
    offload_probe(index, column, probes=probes, trail=trail,
                  config=DEFAULT_CONFIG.with_widx(mode="shared",
                                                  num_walkers=2))
    return trail


async def run_demo(args, out) -> int:
    """Boot the server, fire the seeded client burst, print the summary.

    Returns a process exit code: 0 on success, 1 when conservation or
    (in replay mode) the at-least-one-adaptation check fails.
    """
    from .client import run_burst
    from .server import start_server

    clock = WallClock(cycles_per_second=args.cps) if args.wall \
        else ManualClock()
    service = demo_service(args, clock)
    trail = (capture_demo_trails(args.trails, seed=args.seed)
             if args.trails is not None else None)
    server = await start_server(service, trail=trail, replay=not args.wall)
    requests = build_requests(args.rate, args.requests, args.keys,
                              seed=args.seed)
    outcome = await run_burst("127.0.0.1", server.port, requests,
                              replay=not args.wall,
                              cycles_per_second=args.cps)
    await server.wait_closed()

    result = outcome["result"]
    if trail is not None:
        result["trails_captured"] = len(trail)
    print(json.dumps({"live_demo": result}, sort_keys=True), file=out)
    failures: List[str] = []
    if not result["conservation"]:
        failures.append("request conservation violated")
    if result["adaptations"] < 1 and not args.wall:
        # Only deterministic replay guarantees the overload pattern; on
        # the wall clock the offered load depends on host speed.
        failures.append("no adaptive action fired")
    for failure in failures:
        print(f"FAIL: {failure}", file=out)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; parses ``argv`` and runs the demo."""
    args = build_parser().parse_args(argv)
    if not args.demo:
        build_parser().print_usage(file=out)
        print("nothing to do: pass --demo", file=out)
        return 2
    try:
        import asyncio
        return asyncio.run(run_demo(args, out))
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
