"""A miniature in-memory column-store execution engine.

This is the MonetDB stand-in: column-oriented tables, a bucketed hash index
with header nodes and (optionally) indirect keys, and the physical
operators the paper's Figure 2a accounts for — scan, hash join, sort and
aggregation — plus a query executor that attributes modelled cycles to each
operator category.

The hash index is laid out byte-for-byte in simulated memory
(:mod:`repro.mem`), which is what lets both the baseline-core probe traces
and the Widx programs execute against the very same bytes.
"""

from .types import DataType
from .column import Column
from .table import Table
from .hashfn import HashSpec, HashStep, KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64
from .node import NodeLayout, KERNEL_LAYOUT, MONETDB_LAYOUT
from .hashtable import HashIndex
from .build import build_index
from .btree import BPlusTree, batched_search
from .trie import MlpTrie
from .wormhole import WormholeIndex
from .plan import PlanNode, ScanNode, HashJoinNode, SortNode, AggregateNode, GroupByNode
from .executor import QueryExecutor, QueryProfile

__all__ = [
    "DataType",
    "Column",
    "Table",
    "HashSpec",
    "HashStep",
    "KERNEL_HASH",
    "ROBUST_HASH_32",
    "ROBUST_HASH_64",
    "NodeLayout",
    "KERNEL_LAYOUT",
    "MONETDB_LAYOUT",
    "HashIndex",
    "build_index",
    "BPlusTree",
    "batched_search",
    "MlpTrie",
    "WormholeIndex",
    "PlanNode",
    "ScanNode",
    "HashJoinNode",
    "SortNode",
    "AggregateNode",
    "GroupByNode",
    "QueryExecutor",
    "QueryProfile",
]
