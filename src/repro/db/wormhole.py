"""A Wormhole-style hash-accelerated ordered index in simulated memory.

Wormhole (PAPERS.md) replaces a B+-tree's internal levels with a hash
table of leaf-anchor prefixes (the "MetaTrieHash"): the sorted leaf list
stays, but locating the right leaf costs O(log L) *independent* hash
probes — a binary search over prefix lengths — instead of a
dependent-load descent.  This is the second counterpoint to the paper's
hash-chain premise: the pointer chain is collapsed rather than
prefetched.

Layout
------

Leaves reuse the B+-tree's 64-byte leaf node format (keys, payloads,
next-leaf pointer), bulk-loaded full and chained in key order.  A leaf's
*anchor* is its smallest key.

The MetaTrieHash stores one entry per distinct (depth, prefix) pair over
all anchors, ``depth`` in 1..8 nibbles.  Entry values combine prefix and
depth the same way the trie does (``prefix + 2^(32+depth)``), and the
entry records ``leaf_lo``: the leaf *preceding* the first anchor with
that prefix (clamped to the first leaf).  Because any key with prefix P
sorts after every anchor smaller than the first P-anchor, the key's true
leaf is always ``leaf_lo`` or later — so a lookup binary-searches for
the longest present prefix of its key, starts at that entry's
``leaf_lo``, and walks forward while the next anchor is <= key.  Anchor
prefixes are prefix-closed (an anchor matching d nibbles matches d-1),
which makes presence monotone in depth and the binary search sound.

Meta bucket layout (64 bytes)::

    ========  =====  ===================================================
    offset    size   field
    ========  =====  ===================================================
    0         8      overflow-chain pointer (NULL at the end)
    8         8      pad
    16        16     slot 0: tag (prefix + 2^(32+depth); 0 = empty),
                     leaf_lo pointer
    32        16     slot 1
    48        16     slot 2
    ========  =====  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import PlanError
from ..mem.layout import AddressSpace, Region
from ..mem.physmem import NULL_PTR
from .btree import (FANOUT, KEY_PAD, META_LEAF, NODE_BYTES, _KEYS_OFFSET,
                    _NEXT_LEAF_OFFSET, _PAYLOADS_OFFSET)
from .hashfn import ROBUST_HASH_32, HashSpec
from .trie import MAX_DEPTH, NIBBLE_BITS, _next_pow2, probe_value

META_BUCKET_BYTES = 64
META_SLOTS_PER_BUCKET = 3
META_SLOT_BYTES = 16

_META_OVERFLOW_OFFSET = 0
_META_SLOT_BASE = 16
_META_TAG_OFFSET = 0
_META_LEAF_OFFSET = 8

#: Same walker-compilable mix as the trie (shift-add-xor only).
META_HASH: HashSpec = ROBUST_HASH_32


@dataclass
class WormholeStats:
    """Shape statistics of a built wormhole index."""

    num_keys: int
    leaves: int
    meta_entries: int
    meta_buckets: int
    overflow_nodes: int


class WormholeIndex:
    """A read-only (bulk-loaded) wormhole over 4-byte keys/payloads."""

    def __init__(self, space: AddressSpace, keys: Sequence[int],
                 payloads: Sequence[int], name: str = "wormhole") -> None:
        if len(keys) != len(payloads):
            raise PlanError("keys and payloads must have equal length")
        if len(keys) == 0:
            raise PlanError("cannot bulk-load an empty wormhole")
        pairs = sorted(zip((int(k) for k in keys),
                           (int(p) for p in payloads)))
        sorted_keys = [k for k, _ in pairs]
        if any(a == b for a, b in zip(sorted_keys, sorted_keys[1:])):
            raise PlanError("bulk load requires unique keys")
        if sorted_keys[0] < 0 or sorted_keys[-1] >= KEY_PAD:
            raise PlanError(f"keys must be below the pad value {KEY_PAD:#x}")
        self.space = space
        self.memory = space.memory
        self.name = name
        self.num_keys = len(pairs)
        self.hash_spec = META_HASH

        # --- leaf chain (B+-tree leaf format, bulk-loaded full) --------
        self.leaf_count = (self.num_keys + FANOUT - 1) // FANOUT
        self.leaves: Region = space.allocate(
            f"{name}:leaves", self.leaf_count * NODE_BYTES, align=64)
        anchors: List[int] = []
        previous: Optional[int] = None
        for index in range(self.leaf_count):
            chunk = pairs[index * FANOUT:(index + 1) * FANOUT]
            node = self.leaves.base + index * NODE_BYTES
            self.memory.write_u64(node, META_LEAF)
            for slot in range(FANOUT):
                key = chunk[slot][0] if slot < len(chunk) else KEY_PAD
                self.memory.write_u32(node + _KEYS_OFFSET + 4 * slot, key)
            for slot, (_key, payload) in enumerate(chunk):
                self.memory.write_u32(node + _PAYLOADS_OFFSET + 4 * slot,
                                      payload)
            self.memory.write_u64(node + _NEXT_LEAF_OFFSET, NULL_PTR)
            if previous is not None:
                self.memory.write_u64(previous + _NEXT_LEAF_OFFSET, node)
            previous = node
            anchors.append(chunk[0][0])
        self.first_leaf = self.leaves.base
        self._anchors = anchors

        # --- MetaTrieHash over all anchor prefixes ---------------------
        # entries: tag value -> leaf_lo (predecessor of the first anchor
        # with that prefix, clamped to the first leaf).
        entries = {}
        for index, anchor in enumerate(anchors):
            for depth in range(1, MAX_DEPTH + 1):
                value = probe_value(anchor, depth)
                if value not in entries:
                    leaf_lo = self.leaves.base + max(0, index - 1) * NODE_BYTES
                    entries[value] = leaf_lo
        self.meta_entries = len(entries)
        self.meta_buckets = _next_pow2(
            max(1, (self.meta_entries + META_SLOTS_PER_BUCKET - 1)
                // META_SLOTS_PER_BUCKET))
        self.meta_mask = self.meta_buckets - 1
        self.meta: Region = space.allocate(
            f"{name}:meta", self.meta_buckets * META_BUCKET_BYTES, align=64)

        placements = [[] for _ in range(self.meta_buckets)]
        for value in sorted(entries):
            index = self.hash_spec(value) & self.meta_mask
            placements[index].append((value, entries[value]))
        overflow_blocks = sum(
            max(0, len(group) - 1) // META_SLOTS_PER_BUCKET
            for group in placements)
        self.overflow_count = overflow_blocks
        self.overflow: Optional[Region] = None
        if overflow_blocks:
            self.overflow = space.allocate(
                f"{name}:overflow", overflow_blocks * META_BUCKET_BYTES,
                align=64)
        next_overflow = self.overflow.base if self.overflow else NULL_PTR

        for index, group in enumerate(placements):
            block = self.meta.base + index * META_BUCKET_BYTES
            self.memory.write_u64(block + _META_OVERFLOW_OFFSET, NULL_PTR)
            cursor = 0
            for value, leaf_lo in group:
                if cursor == META_SLOTS_PER_BUCKET:
                    self.memory.write_u64(block + _META_OVERFLOW_OFFSET,
                                          next_overflow)
                    block = next_overflow
                    next_overflow += META_BUCKET_BYTES
                    self.memory.write_u64(block + _META_OVERFLOW_OFFSET,
                                          NULL_PTR)
                    cursor = 0
                slot = block + _META_SLOT_BASE + cursor * META_SLOT_BYTES
                self.memory.write_u64(slot + _META_TAG_OFFSET, value)
                self.memory.write_u64(slot + _META_LEAF_OFFSET, leaf_lo)
                cursor += 1

    # ------------------------------------------------------------------
    # Layout accessors (shared with the trace/Widx program generators)
    # ------------------------------------------------------------------

    def meta_bucket_addr(self, value: int) -> int:
        """The MetaTrieHash bucket for a depth-tagged prefix value."""
        return self.meta.base + (
            (self.hash_spec(value) & self.meta_mask) * META_BUCKET_BYTES)

    def meta_lookup(self, value: int) -> Optional[int]:
        """The leaf_lo stored for a (prefix, depth) value, or None."""
        block = self.meta_bucket_addr(value)
        while block != NULL_PTR:
            for index in range(META_SLOTS_PER_BUCKET):
                slot = block + _META_SLOT_BASE + index * META_SLOT_BYTES
                if self.memory.read_u64(slot + _META_TAG_OFFSET) == value:
                    return self.memory.read_u64(slot + _META_LEAF_OFFSET)
            block = self.memory.read_u64(block + _META_OVERFLOW_OFFSET)
        return None

    def leaf_key(self, node: int, slot: int) -> int:
        """The key stored in a leaf slot (``KEY_PAD`` when unused)."""
        return self.memory.read_u32(node + _KEYS_OFFSET + 4 * slot)

    def leaf_payload(self, node: int, slot: int) -> int:
        """The payload stored beside a leaf slot's key."""
        return self.memory.read_u32(node + _PAYLOADS_OFFSET + 4 * slot)

    def next_leaf(self, node: int) -> int:
        """The sorted-order pointer to the following leaf node."""
        return self.memory.read_u64(node + _NEXT_LEAF_OFFSET)

    # ------------------------------------------------------------------
    # Search (the functional reference: the walker program in slow motion)
    # ------------------------------------------------------------------

    def locate_leaf(self, key: int) -> Tuple[int, List[int]]:
        """The leaf that would hold ``key``, plus the probed depths.

        Binary-searches depths 0..8 for the longest anchor prefix of
        ``key`` (depth 0 is the implicit root: always present, leaf_lo =
        first leaf), then walks the leaf chain forward while the next
        anchor is <= key.  The probed-depth list feeds the baseline trace
        generator, which charges one independent meta fetch per probe.
        """
        probed: List[int] = []
        lo, hi = 0, MAX_DEPTH
        best = self.first_leaf
        while lo < hi:
            mid = (lo + hi + 1) // 2
            probed.append(mid)
            found = self.meta_lookup(probe_value(key, mid))
            if found is None:
                hi = mid - 1
            else:
                best = found
                lo = mid
        leaf = best
        while True:
            nxt = self.next_leaf(leaf)
            if nxt == NULL_PTR or self.leaf_key(nxt, 0) > key:
                return leaf, probed
            leaf = nxt

    def search(self, key: int) -> Optional[int]:
        """The payload stored for ``key``, or None."""
        leaf, _probed = self.locate_leaf(key)
        for slot in range(FANOUT):
            if self.leaf_key(leaf, slot) == key:
                return self.leaf_payload(leaf, slot)
        return None

    def range_scan(self, low: int, high: int) -> List[Tuple[int, int]]:
        """All (key, payload) pairs with low <= key <= high, in order."""
        if low > high:
            return []
        leaf, _probed = self.locate_leaf(low)
        results: List[Tuple[int, int]] = []
        while leaf != NULL_PTR:
            for slot in range(FANOUT):
                key = self.leaf_key(leaf, slot)
                if key == KEY_PAD or key > high:
                    return results
                if key >= low:
                    results.append((key, self.leaf_payload(leaf, slot)))
            leaf = self.next_leaf(leaf)
        return results

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (key, payload) pairs in key order, via the leaf chain."""
        leaf = self.first_leaf
        while leaf != NULL_PTR:
            for slot in range(FANOUT):
                key = self.leaf_key(leaf, slot)
                if key == KEY_PAD:
                    return
                yield key, self.leaf_payload(leaf, slot)
            leaf = self.next_leaf(leaf)

    def stats(self) -> WormholeStats:
        """Structure summary: keys, leaves, meta entries and buckets."""
        return WormholeStats(num_keys=self.num_keys, leaves=self.leaf_count,
                             meta_entries=self.meta_entries,
                             meta_buckets=self.meta_buckets,
                             overflow_nodes=self.overflow_count)

    @property
    def region(self) -> Region:
        """The leaf region (warmed together with the meta region)."""
        return self.leaves

    @property
    def footprint_bytes(self) -> int:
        total = self.leaves.size + self.meta.size
        if self.overflow is not None:
            total += self.overflow.size
        return total
