"""Hash-table node layouts (schemas).

The paper stresses that real DBMS index layouts differ from the Listing 1
abstraction: buckets start with a *header node* (the first node is stored
inline in the bucket array, saving a dereference), and some systems
(MonetDB) store keys *indirectly* — the node holds a row id and the key
must be fetched from the base column, trading space for an extra memory
access and extra address arithmetic.  Supporting all of these layouts is
exactly why Widx is programmable, so the layout is a first-class object
here: the same :class:`NodeLayout` drives the software build/probe code,
the baseline-core trace generator and the Widx program generator.

Bucket strides are powers of two because the Widx ISA has no multiply —
bucket addresses are computed with a fused shift-add.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeLayout:
    """Byte layout of one hash-table node (header nodes use the same layout).

    For ``indirect`` layouts the "key" slot holds a row id into the indexed
    base column; probing loads the row id, computes the key's address in the
    base column (shift-add), and loads the key itself.
    """

    name: str
    stride: int            # node size in bytes; power of two
    key_bytes: int         # width of the key value being compared
    payload_bytes: int     # width of the emitted payload (direct layouts)
    key_offset: int        # offset of the key (direct) or row id (indirect)
    payload_offset: int    # offset of the payload (direct layouts only)
    next_offset: int       # offset of the 8-byte next pointer
    indirect: bool         # True: node stores a row id, key lives in a column
    empty_sentinel: int    # value in the key/rowid slot marking an empty header

    def __post_init__(self) -> None:
        if self.stride & (self.stride - 1):
            raise ValueError("node stride must be a power of two (no MUL on Widx)")
        if self.key_bytes not in (4, 8):
            raise ValueError("keys must be 4 or 8 bytes")
        if self.next_offset % 8 != 0:
            raise ValueError("next pointer must be 8-byte aligned")
        slot = 8 if self.indirect else self.key_bytes
        if self.key_offset % slot != 0:
            raise ValueError("key slot must be naturally aligned")

    @property
    def shift(self) -> int:
        """log2(stride): the shift used for bucket address calculation."""
        return self.stride.bit_length() - 1

    @property
    def key_slot_bytes(self) -> int:
        """Width of the slot at ``key_offset`` (row ids are always 8 bytes)."""
        return 8 if self.indirect else self.key_bytes

    def describe(self) -> str:
        """One-line human-readable summary of the layout."""
        kind = "indirect (row-id) keys" if self.indirect else "inline keys"
        return (f"{self.name}: {self.stride}B nodes, {self.key_bytes}B keys, "
                f"{kind}, next@+{self.next_offset}")


#: The optimized hash-join kernel's compact schema [Balkesen et al. 2013,
#: Kim et al. 2009]: a 4 B key and 4 B payload per tuple, plus the chain
#: pointer.  Four nodes per 64 B cache block.
KERNEL_LAYOUT = NodeLayout(
    name="kernel",
    stride=16,
    key_bytes=4,
    payload_bytes=4,
    key_offset=0,
    payload_offset=4,
    next_offset=8,
    indirect=False,
    empty_sentinel=0xFFFF_FFFF,
)

#: A direct layout with 8-byte keys/payloads ("double integers", TPC-H q20).
WIDE_LAYOUT = NodeLayout(
    name="wide",
    stride=32,
    key_bytes=8,
    payload_bytes=8,
    key_offset=0,
    payload_offset=8,
    next_offset=16,
    indirect=False,
    empty_sentinel=(1 << 64) - 1,
)

#: MonetDB-style indirect layout: the node stores the row id of the indexed
#: tuple; the probe loads the row id, computes the key's address inside the
#: base column (ADD-SHF) and loads the key — one extra memory access and
#: extra address computation per node, exactly the "more computation for
#: address calculation" the paper observes in Figure 9a.
MONETDB_LAYOUT = NodeLayout(
    name="monetdb",
    stride=32,
    key_bytes=4,           # key width of the indexed column (override-able)
    payload_bytes=8,       # the emitted payload is the row id itself
    key_offset=0,          # row id slot
    payload_offset=0,      # payload == row id
    next_offset=8,
    indirect=True,
    empty_sentinel=(1 << 64) - 1,
)


def monetdb_layout(key_bytes: int) -> NodeLayout:
    """The indirect layout specialized to a base column's key width."""
    if key_bytes == MONETDB_LAYOUT.key_bytes:
        return MONETDB_LAYOUT
    return NodeLayout(
        name=f"monetdb{key_bytes * 8}",
        stride=32,
        key_bytes=key_bytes,
        payload_bytes=8,
        key_offset=0,
        payload_offset=0,
        next_offset=8,
        indirect=True,
        empty_sentinel=(1 << 64) - 1,
    )


def direct_layout(key_bytes: int) -> NodeLayout:
    """The compact direct layout for a given key width."""
    if key_bytes == 4:
        return KERNEL_LAYOUT
    if key_bytes == 8:
        return WIDE_LAYOUT
    raise ValueError(f"unsupported key width {key_bytes}")
