"""The bucketed hash index, laid out byte-for-byte in simulated memory.

Structure (paper Section 2.2):

* a bucket array of *header nodes* — the first node of each bucket lives
  inline in the array, so a one-node bucket needs no pointer dereference
  beyond the bucket itself;
* an overflow node heap for collision chains, linked through each node's
  ``next`` pointer (NULL-terminated).

All reads/writes go through :class:`~repro.mem.PhysicalMemory`, so the
probe loop here is the functional *reference*: the baseline-core traces and
the Widx programs must reproduce its results exactly (tested
property-based in ``tests/``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import InvariantViolation, PlanError
from ..mem.layout import AddressSpace, Region
from ..mem.physmem import NULL_PTR
from .column import Column
from .hashfn import HashSpec
from .node import NodeLayout


def choose_num_buckets(num_keys: int, target_nodes_per_bucket: float = 1.0) -> int:
    """Smallest power-of-two bucket count giving <= the target chain depth.

    DBMSs "use a large number of buckets ... to reduce the number of nodes
    per bucket" (Section 2.1); a target of 1.0 mirrors that, while larger
    targets build the deliberately deep buckets used by the Figure 5 study.
    """
    if num_keys < 1:
        raise ValueError("need at least one key")
    if target_nodes_per_bucket <= 0:
        raise ValueError("target chain depth must be positive")
    want = max(1, round(num_keys / target_nodes_per_bucket))
    buckets = 1
    while buckets < want:
        buckets <<= 1
    return buckets


@dataclass
class IndexStats:
    """Occupancy statistics of a built index."""

    num_keys: int
    num_buckets: int
    used_buckets: int
    overflow_nodes: int
    max_chain: int

    @property
    def nodes_per_used_bucket(self) -> float:
        if self.used_buckets == 0:
            return 0.0
        return self.num_keys / self.used_buckets

    @property
    def load_factor(self) -> float:
        return self.num_keys / self.num_buckets


class HashIndex:
    """A hash index over (key, payload) pairs in simulated memory."""

    def __init__(self, space: AddressSpace, layout: NodeLayout,
                 num_buckets: int, hash_spec: HashSpec,
                 capacity: int, name: str = "index",
                 key_column: Optional[Column] = None) -> None:
        if num_buckets & (num_buckets - 1):
            raise ValueError("bucket count must be a power of two")
        if capacity < 1:
            raise ValueError("index capacity must be positive")
        if layout.indirect and key_column is None:
            raise PlanError("an indirect layout needs the indexed base column")
        if layout.indirect and key_column is not None:
            if key_column.dtype.nbytes != layout.key_bytes:
                raise PlanError(
                    f"layout expects {layout.key_bytes}B keys but column "
                    f"{key_column.name!r} is {key_column.dtype.nbytes}B")
        self.space = space
        self.memory = space.memory
        self.layout = layout
        self.num_buckets = num_buckets
        self.hash_spec = hash_spec
        self.name = name
        self.key_column = key_column
        self.buckets: Region = space.allocate(
            f"{name}:buckets", num_buckets * layout.stride, align=64)
        # Worst case every key overflows past the header node.
        self.nodes: Region = space.allocate(
            f"{name}:nodes", capacity * layout.stride, align=64)
        self._next_node = self.nodes.base
        self.num_keys = 0
        self._overflow_nodes = 0
        self._initialize_headers()

    # ------------------------------------------------------------------
    # Layout accessors
    # ------------------------------------------------------------------

    def bucket_addr(self, bucket: int) -> int:
        """Simulated address of a bucket's header node."""
        return self.buckets.base + (bucket << self.layout.shift)

    def bucket_of_key(self, key: int) -> int:
        """The bucket index the hash function maps a key to."""
        return self.hash_spec.bucket_of(key, self.num_buckets)

    def _read_slot(self, node_addr: int) -> int:
        """The key (direct) or row id (indirect) stored at a node."""
        layout = self.layout
        return self.memory.read(node_addr + layout.key_offset, layout.key_slot_bytes)

    def node_next(self, node_addr: int) -> int:
        """A node's next-chain pointer (NULL terminates)."""
        return self.memory.read_u64(node_addr + self.layout.next_offset)

    def node_payload(self, node_addr: int) -> int:
        """The payload a probe emits for this node."""
        layout = self.layout
        if layout.indirect:
            return self._read_slot(node_addr)  # payload is the row id
        return self.memory.read(node_addr + layout.payload_offset,
                                layout.payload_bytes)

    def key_address_for_row(self, row_id: int) -> int:
        """Address of the key in the base column (indirect layouts)."""
        if self.key_column is None:
            raise InvariantViolation(
                "key_address_for_row on a direct layout: no base key column")
        return self.key_column.address_of(row_id)

    def node_key(self, node_addr: int) -> int:
        """The key value a probe compares at this node."""
        slot = self._read_slot(node_addr)
        if not self.layout.indirect:
            return slot
        return self.memory.read(self.key_address_for_row(slot),
                                self.layout.key_bytes)

    def _header_empty(self, header_addr: int) -> bool:
        return self._read_slot(header_addr) == self.layout.empty_sentinel

    def _initialize_headers(self) -> None:
        layout = self.layout
        sentinel = layout.empty_sentinel
        for bucket in range(self.num_buckets):
            addr = self.bucket_addr(bucket)
            self.memory.write(addr + layout.key_offset, layout.key_slot_bytes,
                              sentinel)
            self.memory.write_u64(addr + layout.next_offset, NULL_PTR)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def insert(self, key: int, payload: int) -> None:
        """Insert one entry.

        For direct layouts ``payload`` is the stored payload; for indirect
        layouts it is the row id into the base column (and ``key`` must be
        the value at that row — validated).
        """
        layout = self.layout
        if not layout.indirect and key == layout.empty_sentinel:
            raise ValueError("key collides with the empty-bucket sentinel")
        if layout.indirect:
            stored = self.memory.read(self.key_address_for_row(payload),
                                      layout.key_bytes)
            if stored != key:
                raise PlanError(
                    f"row {payload} holds key {stored}, not {key}")
        slot_value = payload if layout.indirect else key
        header = self.bucket_addr(self.bucket_of_key(key))
        if self._header_empty(header):
            self._write_node(header, slot_value,
                             payload if not layout.indirect else 0,
                             self.node_next(header))
        else:
            node = self._alloc_node()
            # Insert right after the header, preserving the header inline.
            self._write_node(node, slot_value,
                             payload if not layout.indirect else 0,
                             self.node_next(header))
            self.memory.write_u64(header + layout.next_offset, node)
            self._overflow_nodes += 1
        self.num_keys += 1

    def _alloc_node(self) -> int:
        addr = self._next_node
        if addr + self.layout.stride > self.nodes.end:
            raise PlanError(f"index {self.name!r} node heap exhausted")
        self._next_node += self.layout.stride
        return addr

    def _write_node(self, addr: int, slot_value: int, payload: int,
                    next_ptr: int) -> None:
        layout = self.layout
        self.memory.write(addr + layout.key_offset, layout.key_slot_bytes,
                          slot_value)
        if not layout.indirect:
            self.memory.write(addr + layout.payload_offset,
                              layout.payload_bytes, payload)
        self.memory.write_u64(addr + layout.next_offset, next_ptr)

    def build(self, keys: Sequence[int], payloads: Sequence[int]) -> None:
        """Bulk insert (Step 1 of the paper's Figure 1)."""
        if len(keys) != len(payloads):
            raise ValueError("keys and payloads must have equal length")
        for key, payload in zip(keys, payloads):
            self.insert(int(key), int(payload))

    # ------------------------------------------------------------------
    # Probe (the functional reference for Listing 1 / Step 2 of Figure 1)
    # ------------------------------------------------------------------

    def walk_chain(self, key: int) -> Iterator[int]:
        """Yield the node addresses a probe for ``key`` visits, in order."""
        header = self.bucket_addr(self.bucket_of_key(key))
        if self._header_empty(header):
            return
        node = header
        while node != NULL_PTR:
            yield node
            node = self.node_next(node)

    def probe(self, key: int) -> List[int]:
        """All payloads whose key matches (the reference result)."""
        matches = []
        for node in self.walk_chain(key):
            if self.node_key(node) == key:
                matches.append(self.node_payload(node))
        return matches

    def probe_count_nodes(self, key: int) -> Tuple[List[int], int]:
        """Like :meth:`probe` but also returns the number of nodes visited."""
        matches, visited = [], 0
        for node in self.walk_chain(key):
            visited += 1
            if self.node_key(node) == key:
                matches.append(self.node_payload(node))
        return matches, visited

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def chain_length(self, bucket: int) -> int:
        """Number of nodes in one bucket's chain (0 if empty)."""
        header = self.bucket_addr(bucket)
        if self._header_empty(header):
            return 0
        length, node = 0, header
        while node != NULL_PTR:
            length += 1
            node = self.node_next(node)
        return length

    def stats(self) -> IndexStats:
        """Occupancy statistics (chains, overflow, load factor)."""
        used = 0
        max_chain = 0
        for bucket in range(self.num_buckets):
            length = self.chain_length(bucket)
            if length:
                used += 1
                if length > max_chain:
                    max_chain = length
        return IndexStats(
            num_keys=self.num_keys,
            num_buckets=self.num_buckets,
            used_buckets=used,
            overflow_nodes=self._overflow_nodes,
            max_chain=max_chain,
        )

    @property
    def footprint_bytes(self) -> int:
        """Bytes the index actually touches (buckets + used overflow nodes)."""
        return self.buckets.size + (self._next_node - self.nodes.base)
