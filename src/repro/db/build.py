"""Index construction helpers (Step 1 of the paper's Figure 1).

``build_index`` turns a table column into a :class:`HashIndex` in simulated
memory, choosing the layout the way the modelled DBMS would: the kernel
workloads use compact direct nodes; the MonetDB-style queries use indirect
(row-id) nodes over a materialized base column.
"""

from __future__ import annotations

from typing import Optional

from ..mem.layout import AddressSpace
from .column import Column
from .hashfn import HashSpec, ROBUST_HASH_32, ROBUST_HASH_64
from .hashtable import HashIndex, choose_num_buckets
from .node import NodeLayout, direct_layout, monetdb_layout
from .table import Table


def default_hash_for(key_bytes: int) -> HashSpec:
    """The robust hash a production DBMS would pick for this key width."""
    return ROBUST_HASH_64 if key_bytes == 8 else ROBUST_HASH_32


def build_index(space: AddressSpace, table: Table, key_column: str,
                payload_column: Optional[str] = None, *,
                indirect: bool = False,
                hash_spec: Optional[HashSpec] = None,
                target_nodes_per_bucket: float = 1.0,
                layout: Optional[NodeLayout] = None,
                name: Optional[str] = None) -> HashIndex:
    """Build a hash index on ``table.key_column``.

    Direct indexes store ``payload_column`` values (default: the row id)
    inline; indirect indexes store row ids and fetch keys from the
    materialized base column at probe time.
    """
    keys = table.column(key_column)
    key_bytes = keys.dtype.nbytes
    if layout is None:
        layout = monetdb_layout(key_bytes) if indirect else direct_layout(key_bytes)
    if hash_spec is None:
        hash_spec = default_hash_for(key_bytes)
    num_rows = table.num_rows
    if num_rows == 0:
        raise ValueError(f"cannot index empty table {table.name!r}")
    num_buckets = choose_num_buckets(num_rows, target_nodes_per_bucket)
    index_name = name or f"{table.name}.{key_column}"

    base_column = None
    if indirect:
        base_column = keys
        if base_column.is_materialized and base_column.space is not space:
            base_column = base_column.detached_copy()
        base_column.materialize(space, f"{index_name}:basecol")

    index = HashIndex(space, layout, num_buckets, hash_spec,
                      capacity=num_rows, name=index_name,
                      key_column=base_column)

    if indirect:
        for row in range(num_rows):
            index.insert(int(keys.values[row]), row)
    else:
        if payload_column is not None:
            payloads = table.column(payload_column).values
        else:
            payloads = range(num_rows)
        for row in range(num_rows):
            index.insert(int(keys.values[row]), int(payloads[row]))
    return index
