"""Query executor with per-operator cycle attribution.

Evaluates a :class:`~repro.db.plan.PlanNode` tree functionally (numpy /
simulated memory) while charging modelled cycles to the Figure 2a
categories.  The *index* (hash probe) cost comes from a pluggable
``probe_timing`` provider so the profiling harness can use the detailed
OoO-core simulation while unit tests use the fast analytic estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..config import SystemConfig, DEFAULT_CONFIG
from ..errors import PlanError
from ..mem.layout import AddressSpace
from .column import Column
from .cost import CostModel, DEFAULT_COST_MODEL
from .hashtable import HashIndex
from .operators.aggregate import aggregate_table
from .operators.groupby import group_by
from .operators.hashjoin import hash_join
from .operators.scan import apply_predicate
from .operators.sort import sort_table
from .plan import (AggregateNode, GroupByNode, HashJoinNode, PlanNode,
                   ScanNode, SortNode)
from .table import Table

#: Given the probed index and the probe-key column, return cycles per tuple.
ProbeTimingProvider = Callable[[HashIndex, Column], float]

CATEGORIES = ("index", "scan", "sortjoin", "other")


@dataclass
class QueryProfile:
    """Cycle attribution for one executed query."""

    name: str
    cycles: Dict[str, float] = field(default_factory=lambda: dict.fromkeys(CATEGORIES, 0.0))
    result_rows: int = 0
    probe_tuples: int = 0

    def charge(self, category: str, amount: float) -> None:
        """Add cycles to one Figure 2a category."""
        if category not in self.cycles:
            raise PlanError(f"unknown cost category {category!r}")
        self.cycles[category] += amount

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    def fraction(self, category: str) -> float:
        """One category's share of the query's total cycles."""
        total = self.total_cycles
        return self.cycles[category] / total if total else 0.0

    @property
    def index_fraction(self) -> float:
        return self.fraction("index")

    def breakdown(self) -> Dict[str, float]:
        """All four category fractions (sums to 1)."""
        return {category: self.fraction(category) for category in CATEGORIES}


def analytic_probe_cycles(index: HashIndex, probe_column: Column,
                          config: SystemConfig = DEFAULT_CONFIG) -> float:
    """Fast AMAT-style estimate of baseline (OoO) cycles per probe.

    Used where the detailed core simulation would be too slow (full-query
    profiling and unit tests).  Classifies the index by footprint against
    the cache hierarchy, estimates node-access AMAT, and divides the serial
    per-probe latency by the MLP an OoO window can expose across probes.
    """
    footprint = index.footprint_bytes
    l1 = config.l1d.size_bytes
    llc = config.llc.size_bytes
    if footprint <= l1:
        node_amat = config.l1d.latency_cycles + 1
    elif footprint <= llc:
        spill = min(1.0, footprint / llc)
        node_amat = (config.llc.latency_cycles + 2 * config.interconnect_cycles
                     + config.l1d.latency_cycles) * (0.5 + 0.5 * spill)
    else:
        llc_miss = min(1.0, max(0.2, 1.0 - llc / footprint))
        dram = config.dram.latency_cycles(config.freq_ghz)
        llc_hit_lat = config.llc.latency_cycles + 2 * config.interconnect_cycles
        node_amat = llc_hit_lat + llc_miss * dram
    stats = index.stats()
    nodes = max(1.0, stats.nodes_per_used_bucket)
    hash_cycles = index.hash_spec.compute_cycles + 2  # mix + mask + add
    key_load = 1.0  # amortized: many keys per block, L1-resident stream
    extra_key_loads = nodes if index.layout.indirect else 0.0
    serial = hash_cycles + key_load + nodes * (node_amat + 2) + extra_key_loads * node_amat
    # The OoO window overlaps consecutive probes; effective MLP ~2 for
    # DRAM-bound chains (ROB fills), higher when chains are cache-resident.
    mlp = 1.6 if footprint > llc else 2.5
    return serial / mlp


class QueryExecutor:
    """Evaluate plans over a named-table catalog."""

    def __init__(self, catalog: Dict[str, Table],
                 space: Optional[AddressSpace] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 probe_timing: Optional[ProbeTimingProvider] = None,
                 config: SystemConfig = DEFAULT_CONFIG) -> None:
        self.catalog = dict(catalog)
        self.space = space if space is not None else AddressSpace()
        self.cost_model = cost_model
        self.config = config
        self.probe_timing = probe_timing or (
            lambda index, column: analytic_probe_cycles(index, column, config))

    def execute(self, plan: PlanNode, name: str = "query",
                other_overhead_fraction: float = 0.0) -> QueryProfile:
        """Run ``plan``; returns its cycle profile.

        ``other_overhead_fraction`` adds library/system time (Figure 2a's
        residual "Other") as a fraction of the measured operator cycles.
        """
        profile = QueryProfile(name)
        result = self._evaluate(plan, profile)
        profile.result_rows = result.num_rows
        if other_overhead_fraction > 0:
            profile.charge("other", profile.total_cycles * other_overhead_fraction)
        return profile

    def execute_with_result(self, plan: PlanNode, name: str = "query"):
        """Like :meth:`execute` but also returns the result table."""
        profile = QueryProfile(name)
        result = self._evaluate(plan, profile)
        profile.result_rows = result.num_rows
        return profile, result

    # ------------------------------------------------------------------

    def _evaluate(self, node: PlanNode, profile: QueryProfile) -> Table:
        if isinstance(node, ScanNode):
            return self._scan(node, profile)
        if isinstance(node, HashJoinNode):
            return self._hash_join(node, profile)
        if isinstance(node, SortNode):
            return self._sort(node, profile)
        if isinstance(node, AggregateNode):
            return self._aggregate(node, profile)
        if isinstance(node, GroupByNode):
            return self._group_by(node, profile)
        raise PlanError(f"unknown plan node {type(node).__name__}")

    def _group_by(self, node: GroupByNode, profile: QueryProfile) -> Table:
        table = self._evaluate(node.child, profile)
        # Hash aggregation costs one hash + accumulate per row; Figure 2a
        # counts aggregation under "Other".
        profile.charge("other", self.cost_model.aggregate_cycles(table.num_rows))
        return group_by(table, node.key,
                        node.aggregates or {"rows": "count:*"})

    def _scan(self, node: ScanNode, profile: QueryProfile) -> Table:
        try:
            table = self.catalog[node.table]
        except KeyError:
            raise PlanError(f"unknown table {node.table!r}; "
                            f"catalog has {sorted(self.catalog)}") from None
        bytes_per_row = sum(table.column(c).dtype.nbytes for c in table.column_names)
        profile.charge("scan", self.cost_model.scan_cycles(table.num_rows, bytes_per_row))
        if node.predicate is None:
            return table
        return apply_predicate(table, node.predicate)

    def _hash_join(self, node: HashJoinNode, profile: QueryProfile) -> Table:
        build_table = self._evaluate(node.build, profile)
        probe_table = self._evaluate(node.probe, profile)
        if build_table.num_rows == 0:
            raise PlanError("hash join build side selected zero rows")
        result = hash_join(
            self.space, build_table, probe_table,
            node.build_key, node.probe_key,
            payload_column=node.payload_column,
            indirect=node.indirect,
            hash_spec=node.hash_spec,
            target_nodes_per_bucket=node.target_nodes_per_bucket)
        profile.charge("sortjoin", self.cost_model.build_cycles(build_table.num_rows))
        cycles_per_tuple = self.probe_timing(result.index, result.probe_keys)
        probes = probe_table.num_rows
        profile.charge("index", cycles_per_tuple * probes)
        profile.charge("sortjoin", self.cost_model.materialize_cycles(result.matches))
        profile.probe_tuples += probes
        return result.table

    def _sort(self, node: SortNode, profile: QueryProfile) -> Table:
        table = self._evaluate(node.child, profile)
        profile.charge("sortjoin", self.cost_model.sort_cycles(table.num_rows))
        return sort_table(table, node.key, node.descending)

    def _aggregate(self, node: AggregateNode, profile: QueryProfile) -> Table:
        table = self._evaluate(node.child, profile)
        profile.charge("other", self.cost_model.aggregate_cycles(table.num_rows))
        aggregates = node.aggregates or {"rows": "count:*"}
        results = aggregate_table(table, aggregates)
        from .types import DataType  # local import avoids a cycle at module load
        out = Table(f"{profile.name}#agg")
        for column_name, value in results.items():
            out.add_column(Column(column_name, DataType.U64,
                                  [int(max(0, value))]))
        return out
