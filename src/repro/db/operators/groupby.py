"""Grouped aggregation (hash aggregation).

DSS queries rarely end at a join: the matched tuples are grouped and
aggregated (Figure 2a folds this into "Other").  This operator implements
hash aggregation over one grouping key with the same aggregate functions
as :mod:`repro.db.operators.aggregate`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...errors import PlanError
from ..column import Column
from ..table import Table
from ..types import DataType

_REDUCERS = {
    "sum": np.add.reduceat,
    "min": np.minimum.reduceat,
    "max": np.maximum.reduceat,
}


def group_by(table: Table, key: str,
             aggregates: Dict[str, str]) -> Table:
    """Group ``table`` by ``key`` and aggregate.

    ``aggregates`` maps output column names to ``"func:column"`` specs
    with func in {sum, min, max, count, mean}.  Returns one row per
    distinct key, sorted by key.
    """
    if table.num_rows == 0:
        raise PlanError("cannot group an empty table")
    keys = table.column(key).values
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1])))
    group_keys = sorted_keys[boundaries]
    counts = np.diff(np.append(boundaries, len(sorted_keys)))

    out = Table(f"{table.name}#groupby:{key}")
    out.add_column(Column(key, table.column(key).dtype, group_keys))
    for out_name, spec in aggregates.items():
        try:
            func_name, column_name = spec.split(":", 1)
        except ValueError:
            raise PlanError(f"aggregate spec {spec!r} must look like "
                            f"'func:column'") from None
        if func_name == "count":
            out.add_column(Column(out_name, DataType.U64,
                                  counts.astype(np.uint64)))
            continue
        values = table.column(column_name).values[order]
        if func_name in _REDUCERS:
            reduced = _REDUCERS[func_name](
                values.astype(np.uint64), boundaries)
            out.add_column(Column(out_name, DataType.U64, reduced))
        elif func_name == "mean":
            sums = np.add.reduceat(values.astype(np.uint64), boundaries)
            out.add_column(Column(out_name, DataType.U64,
                                  (sums // counts).astype(np.uint64)))
        else:
            raise PlanError(f"unknown aggregate {func_name!r}; supported: "
                            f"{sorted(_REDUCERS) + ['count', 'mean']}")
    return out


def group_by_reference(table: Table, key: str,
                       aggregates: Dict[str, str]) -> List[dict]:
    """Slow dict-based reference for property tests."""
    groups: Dict[int, List[int]] = {}
    keys = table.column(key).values
    for row, value in enumerate(keys):
        groups.setdefault(int(value), []).append(row)
    results = []
    for group_key in sorted(groups):
        rows = groups[group_key]
        record = {key: group_key}
        for out_name, spec in aggregates.items():
            func_name, _, column_name = spec.partition(":")
            if func_name == "count":
                record[out_name] = len(rows)
                continue
            values = [int(table.column(column_name).values[r])
                      for r in rows]
            record[out_name] = {
                "sum": sum(values),
                "min": min(values),
                "max": max(values),
                "mean": sum(values) // len(values),
            }[func_name]
        results.append(record)
    return results
