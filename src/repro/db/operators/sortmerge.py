"""Sort-merge join: the algorithmic baseline the paper references.

Prior work the paper cites [Kim et al. 2009; Balkesen et al. 2013] compares
hash join against sort-merge join and finds hash join faster on modern
multi-cores.  We implement sort-merge both as a correctness cross-check for
the hash join and for the algorithm-comparison ablation benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..table import Table


def sort_merge_join(build: Table, probe: Table, build_key: str,
                    probe_key: str,
                    payload_column: Optional[str] = None) -> List[Tuple[int, int]]:
    """Equi-join via sort-merge; returns sorted (probe_row, payload) pairs."""
    build_keys = build.column(build_key).values
    probe_keys = probe.column(probe_key).values
    payloads = (build.column(payload_column).values if payload_column
                else np.arange(build.num_rows, dtype=np.uint64))

    build_order = np.argsort(build_keys, kind="stable")
    probe_order = np.argsort(probe_keys, kind="stable")
    sorted_build = build_keys[build_order]
    sorted_probe = probe_keys[probe_order]

    pairs: List[Tuple[int, int]] = []
    i = j = 0
    nb, np_ = len(sorted_build), len(sorted_probe)
    while i < nb and j < np_:
        bk, pk = sorted_build[i], sorted_probe[j]
        if bk < pk:
            i += 1
        elif bk > pk:
            j += 1
        else:
            # Gather the equal runs on both sides and emit the cross product.
            i_end = i
            while i_end < nb and sorted_build[i_end] == bk:
                i_end += 1
            j_end = j
            while j_end < np_ and sorted_probe[j_end] == pk:
                j_end += 1
            for jj in range(j, j_end):
                probe_row = int(probe_order[jj])
                for ii in range(i, i_end):
                    pairs.append((probe_row, int(payloads[build_order[ii]])))
            i, j = i_end, j_end
    return sorted(pairs)


def sort_merge_cycles(build_rows: int, probe_rows: int,
                      cycles_per_cmp: float = 4.0) -> float:
    """First-order cost: sort both sides then a linear merge."""
    def n_log_n(n: int) -> float:
        if n <= 1:
            return float(n)
        return n * max(1, n.bit_length() - 1)
    return cycles_per_cmp * (n_log_n(build_rows) + n_log_n(probe_rows)) \
        + (build_rows + probe_rows)
