"""The "no partitioning" hash join (Blanas et al.), the paper's target.

Build a hash index on the smaller relation's join key, then probe it with
every tuple of the larger relation (Figure 1).  The probe loop is the
indexing operation Widx accelerates.

The join is executed functionally through the simulated-memory
:class:`~repro.db.HashIndex`, so its matches are the ground truth that both
the baseline-core traces and Widx programs are validated against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ...mem.layout import AddressSpace
from ..build import build_index, default_hash_for
from ..column import Column
from ..hashfn import HashSpec
from ..hashtable import HashIndex
from ..table import Table
from ..types import DataType


_join_counter = itertools.count()


@dataclass
class HashJoinResult:
    """Output of a hash join, plus the artifacts timing models need."""

    table: Table                 # matched (probe_row, build_payload) pairs
    index: HashIndex             # the index that was probed
    probe_keys: Column           # the outer relation's key column
    matches: int                 # number of emitted result tuples
    nodes_visited: int           # total node-list traversal length

    @property
    def match_rate(self) -> float:
        probes = len(self.probe_keys.values)
        return self.matches / probes if probes else 0.0


def hash_join(space: AddressSpace, build: Table, probe: Table,
              build_key: str, probe_key: str, *,
              payload_column: Optional[str] = None,
              indirect: bool = False,
              hash_spec: Optional[HashSpec] = None,
              target_nodes_per_bucket: float = 1.0,
              result_name: Optional[str] = None) -> HashJoinResult:
    """Join ``build`` and ``probe`` on equality of their key columns."""
    index = build_index(
        space, build, build_key, payload_column,
        indirect=indirect, hash_spec=hash_spec,
        target_nodes_per_bucket=target_nodes_per_bucket)
    probe_column = probe.column(probe_key)
    # The outer relation's key column lives in memory in a column store;
    # materializing it here lets the timing models (baseline cores, Widx)
    # replay this exact probe stream.  A column already materialized in a
    # *different* space is copied, so its addresses resolve in this one.
    if probe_column.is_materialized and probe_column.space is not space:
        probe_column = probe_column.detached_copy()
    if not probe_column.is_materialized:
        probe_column.materialize(
            space, f"probe:{probe.name}.{probe_key}#{next(_join_counter)}")

    probe_rows: List[int] = []
    payloads: List[int] = []
    nodes_visited = 0
    for row, key in enumerate(probe_column.values):
        found, visited = index.probe_count_nodes(int(key))
        nodes_visited += visited
        for payload in found:
            probe_rows.append(row)
            payloads.append(payload)

    dtype = DataType.U64
    result = Table(result_name or f"{build.name}x{probe.name}", [
        Column("probe_row", dtype, np.asarray(probe_rows, dtype=np.uint64)),
        Column("payload", dtype, np.asarray(payloads, dtype=np.uint64)),
    ])
    return HashJoinResult(
        table=result,
        index=index,
        probe_keys=probe_column,
        matches=len(payloads),
        nodes_visited=nodes_visited,
    )


def reference_join(build: Table, probe: Table, build_key: str,
                   probe_key: str,
                   payload_column: Optional[str] = None) -> List[Tuple[int, int]]:
    """Dictionary-based reference join for correctness testing.

    Returns sorted (probe_row, payload) pairs, independent of the hash
    index implementation.
    """
    payloads = (build.column(payload_column).values if payload_column
                else np.arange(build.num_rows, dtype=np.uint64))
    mapping: dict = {}
    for row, key in enumerate(build.column(build_key).values):
        mapping.setdefault(int(key), []).append(int(payloads[row]))
    pairs: List[Tuple[int, int]] = []
    for row, key in enumerate(probe.column(probe_key).values):
        for payload in mapping.get(int(key), ()):  # preserve duplicates
            pairs.append((row, payload))
    return sorted(pairs)
