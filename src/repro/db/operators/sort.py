"""The sort operator."""

from __future__ import annotations

import numpy as np

from ..column import Column
from ..table import Table


def sort_table(table: Table, key: str, descending: bool = False) -> Table:
    """A new table sorted by ``key``."""
    order = np.argsort(table.column(key).values, kind="stable")
    if descending:
        order = order[::-1]
    result = Table(f"{table.name}#sorted")
    for name in table.column_names:
        column = table.column(name)
        result.add_column(Column(name, column.dtype, column.values[order]))
    return result
