"""Aggregation operators (the bulk of Figure 2a's "Other" category)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...errors import PlanError
from ..table import Table

_AGGREGATES = {
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": len,
    "mean": np.mean,
}


def aggregate_table(table: Table, aggregates: Dict[str, str]) -> Dict[str, float]:
    """Compute ``{output_name: "func(column)"}`` aggregates.

    ``aggregates`` maps an output name to ``"func:column"`` (for example
    ``{"total": "sum:price"}``) or ``"count:*"``.
    """
    results: Dict[str, float] = {}
    for out_name, spec in aggregates.items():
        try:
            func_name, column_name = spec.split(":", 1)
        except ValueError:
            raise PlanError(f"aggregate spec {spec!r} must look like 'func:column'")
        if func_name not in _AGGREGATES:
            raise PlanError(f"unknown aggregate {func_name!r}; "
                            f"supported: {sorted(_AGGREGATES)}")
        if func_name == "count":
            results[out_name] = float(table.num_rows)
            continue
        values = table.column(column_name).values
        if len(values) == 0:
            results[out_name] = 0.0
        else:
            results[out_name] = float(_AGGREGATES[func_name](values))
    return results
