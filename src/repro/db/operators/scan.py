"""The scan operator: predicate evaluation over a column."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import PlanError
from ..table import Table

_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


@dataclass(frozen=True)
class Predicate:
    """``column <op> value`` selection condition."""

    column: str
    op: str
    value: int

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PlanError(f"unknown predicate operator {self.op!r}; "
                            f"supported: {sorted(_OPS)}")

    def evaluate(self, table: Table) -> np.ndarray:
        """Boolean selection mask over the table's rows."""
        column = table.column(self.column)
        return _OPS[self.op](column.values, column.dtype.numpy_dtype.type(self.value))

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value}"


def apply_predicate(table: Table, predicate: Predicate) -> Table:
    """Select the rows of ``table`` satisfying ``predicate``."""
    return table.select(predicate.evaluate(table))
