"""Physical operators: scan, hash join, sort-merge join, sort, aggregate."""

from .scan import Predicate, apply_predicate
from .hashjoin import HashJoinResult, hash_join
from .sortmerge import sort_merge_join
from .partitioned import partitioned_hash_join, PartitionedJoinResult
from .sort import sort_table
from .aggregate import aggregate_table
from .groupby import group_by

__all__ = [
    "Predicate",
    "apply_predicate",
    "HashJoinResult",
    "hash_join",
    "sort_merge_join",
    "partitioned_hash_join",
    "PartitionedJoinResult",
    "sort_table",
    "aggregate_table",
    "group_by",
]
