"""Hardware-conscious partitioned hash join (Section 7's discussion).

The paper contrasts its hardware-oblivious "no partitioning" join with
hardware-conscious designs [Manegold et al.] that radix-partition both
relations first so each partition's hash table is cache-resident, and
argues Widx "is equally applicable to hash join algorithms that employ
data partitioning" — the walkers do not care whether the index they
traverse fits a cache.

This module implements that algorithm: radix-split both inputs on the low
key bits, build one compact hash index per partition, probe partition by
partition.  A first-order cost model charges the partitioning passes
(histogram + scatter at streaming bandwidth), which is the overhead the
paper's cited partitioning accelerators [Wu et al.] attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ...errors import PlanError
from ...mem.layout import AddressSpace
from ..column import Column
from ..cost import CostModel, DEFAULT_COST_MODEL
from ..hashfn import HashSpec
from ..build import default_hash_for
from ..hashtable import HashIndex, choose_num_buckets
from ..node import direct_layout
from ..table import Table

#: Cycles per row per partitioning pass (histogram, then scatter) beyond
#: the bandwidth term — index arithmetic and the scatter store.
PARTITION_PASS_COMPUTE = 3.0


@dataclass
class Partition:
    """One radix partition: its index plus its probe stream."""

    number: int
    index: HashIndex
    probe_keys: Column
    probe_rows: np.ndarray      # original row ids of the probe stream
    build_rows: int


@dataclass
class PartitionedJoinResult:
    """Outcome of a partitioned hash join."""

    partitions: List[Partition]
    pairs: List[Tuple[int, int]]        # (probe row, payload), sorted
    partition_cycles: float             # modelled partitioning overhead
    partition_bits: int
    skipped_empty: int = 0

    @property
    def matches(self) -> int:
        return len(self.pairs)

    @property
    def num_partitions(self) -> int:
        return 1 << self.partition_bits

    def max_partition_footprint(self) -> int:
        """Largest per-partition index footprint in bytes."""
        return max((p.index.footprint_bytes for p in self.partitions),
                   default=0)


def partitioning_cycles(rows: int, bytes_per_row: int,
                        cost: CostModel = DEFAULT_COST_MODEL) -> float:
    """Two passes over the data: build the histogram, then scatter."""
    stream = 2.0 * rows * bytes_per_row / cost.bytes_per_cycle
    compute = 2.0 * rows * PARTITION_PASS_COMPUTE
    return stream + compute


def partitioned_hash_join(space: AddressSpace, build: Table, probe: Table,
                          build_key: str, probe_key: str, *,
                          partition_bits: int,
                          payload_column: Optional[str] = None,
                          hash_spec: Optional[HashSpec] = None,
                          target_nodes_per_bucket: float = 1.0,
                          cost: CostModel = DEFAULT_COST_MODEL,
                          ) -> PartitionedJoinResult:
    """Radix-partition both inputs, then hash-join partition by partition.

    Partitioning uses the low ``partition_bits`` of the key, so matching
    keys always co-locate.  Returns every (probe row, payload) pair plus
    the modelled partitioning cost.
    """
    if not 1 <= partition_bits <= 16:
        raise PlanError("partition bits must be in [1, 16]")
    num_partitions = 1 << partition_bits
    mask = num_partitions - 1

    build_keys = build.column(build_key).values
    probe_keys_all = probe.column(probe_key).values
    key_bytes = build.column(build_key).dtype.nbytes
    if hash_spec is None:
        hash_spec = default_hash_for(key_bytes)
    payloads = (build.column(payload_column).values if payload_column
                else np.arange(build.num_rows, dtype=np.uint64))

    build_partition = (build_keys & mask).astype(np.int64)
    probe_partition = (probe_keys_all & mask).astype(np.int64)

    partitions: List[Partition] = []
    pairs: List[Tuple[int, int]] = []
    skipped = 0
    layout = direct_layout(key_bytes)
    for number in range(num_partitions):
        build_rows = np.flatnonzero(build_partition == number)
        probe_rows = np.flatnonzero(probe_partition == number)
        if len(build_rows) == 0 or len(probe_rows) == 0:
            skipped += 1
            continue
        index = HashIndex(
            space, layout,
            choose_num_buckets(len(build_rows), target_nodes_per_bucket),
            hash_spec, capacity=len(build_rows),
            name=f"part{partition_bits}b:{number}:"
                 f"{build.name}.{build_key}")
        for row in build_rows:
            index.insert(int(build_keys[row]), int(payloads[row]))
        keys_column = Column(f"part{number}", build.column(build_key).dtype,
                             probe_keys_all[probe_rows])
        keys_column.materialize(
            space, f"part{partition_bits}b:{number}:probes:{probe.name}")
        for local, row in enumerate(probe_rows):
            for payload in index.probe(int(probe_keys_all[row])):
                pairs.append((int(row), int(payload)))
        partitions.append(Partition(
            number=number, index=index, probe_keys=keys_column,
            probe_rows=probe_rows, build_rows=len(build_rows)))

    overhead = (partitioning_cycles(build.num_rows, key_bytes + 8, cost)
                + partitioning_cycles(probe.num_rows, key_bytes, cost))
    return PartitionedJoinResult(
        partitions=partitions, pairs=sorted(pairs),
        partition_cycles=overhead, partition_bits=partition_bits,
        skipped_empty=skipped)
