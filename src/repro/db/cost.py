"""Cycle-cost models for the non-indexing operators.

Figure 2a attributes query time to Index / Scan / Sort&Join / Other.  The
*Index* portion is measured by detailed simulation (it is the paper's whole
subject); the remaining operators get first-order streaming/comparison cost
models calibrated against the Table 2 machine:

* Scans stream columns at effective off-chip bandwidth (they are
  bandwidth-bound on MonetDB's column-at-a-time operators) plus a small
  per-row predicate cost.
* Sort is an O(n log n) comparison cost.
* Join build is a per-row hash+store cost.
* Aggregation and miscellaneous library/system work form "Other".

These models only need to place the non-index operators in the right
*proportion* relative to indexing — the paper's breakdown, not absolute
times — and the calibration tests assert those proportions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig, DEFAULT_CONFIG


@dataclass(frozen=True)
class CostModel:
    """First-order per-operator cycle costs."""

    config: SystemConfig = DEFAULT_CONFIG
    predicate_cycles_per_row: float = 2.0
    build_cycles_per_row: float = 24.0
    sort_cycles_per_cmp: float = 4.0
    aggregate_cycles_per_row: float = 6.0
    materialize_cycles_per_row: float = 3.0

    @property
    def bytes_per_cycle(self) -> float:
        """Aggregate effective streaming bandwidth in bytes per core cycle."""
        dram = self.config.dram
        total_gbps = dram.num_controllers * dram.bandwidth_gbps * dram.efficiency
        return total_gbps / self.config.freq_ghz

    def scan_cycles(self, rows: int, bytes_per_row: int) -> float:
        """Streaming scan: bandwidth-bound transfer plus predicate ALU work."""
        transfer = rows * bytes_per_row / self.bytes_per_cycle
        compute = rows * self.predicate_cycles_per_row
        return max(transfer, compute) + min(transfer, compute) * 0.25

    def build_cycles(self, rows: int) -> float:
        """Hash-table build: hash + header/overflow store per row."""
        return rows * self.build_cycles_per_row

    def sort_cycles(self, rows: int) -> float:
        """O(n log n) comparison-sort cost."""
        if rows <= 1:
            return float(rows)
        log2n = max(1.0, (rows).bit_length() - 1)
        return rows * log2n * self.sort_cycles_per_cmp

    def aggregate_cycles(self, rows: int) -> float:
        """Per-row aggregation cost (Figure 2a's 'Other')."""
        return rows * self.aggregate_cycles_per_row

    def materialize_cycles(self, rows: int) -> float:
        """Writing result tuples out (Step 3 of Figure 1)."""
        return rows * self.materialize_cycles_per_row


DEFAULT_COST_MODEL = CostModel()
