"""Columns: typed value vectors that can be materialized into simulated memory.

A column lives in two forms:

* a numpy array (``values``) used by the functional operators, and
* optionally a *materialized* copy in simulated :class:`PhysicalMemory`,
  which is what the timing-simulated probe loops actually read.  Keys are
  packed densely, so eight 8-byte keys (or sixteen 4-byte keys) share one
  64 B cache block — the spatial locality the dispatcher exploits.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..mem.layout import AddressSpace, Region
from .types import DataType


class Column:
    """A named, typed vector of values."""

    def __init__(self, name: str, dtype: DataType,
                 values: Union[Sequence[int], np.ndarray]) -> None:
        self.name = name
        self.dtype = dtype
        self.values = np.asarray(values, dtype=dtype.numpy_dtype)
        self._region: Optional[Region] = None
        self._space: Optional[AddressSpace] = None

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"

    @property
    def nbytes(self) -> int:
        return len(self.values) * self.dtype.nbytes

    @property
    def region(self) -> Region:
        if self._region is None:
            raise RuntimeError(f"column {self.name!r} is not materialized")
        return self._region

    @property
    def is_materialized(self) -> bool:
        return self._region is not None

    @property
    def space(self) -> Optional[AddressSpace]:
        """The address space this column is materialized in (or None)."""
        return self._space

    def detached_copy(self) -> "Column":
        """An unmaterialized copy (for re-materializing elsewhere)."""
        return Column(self.name, self.dtype, self.values.copy())

    def materialize(self, space: AddressSpace, region_name: Optional[str] = None) -> Region:
        """Copy the values into simulated memory; returns the region.

        Idempotent within one address space; materializing into a second
        space is an error (the region's addresses would be meaningless
        there) — use :meth:`detached_copy` instead.
        """
        if self._region is not None:
            if self._space is not space:
                raise RuntimeError(
                    f"column {self.name!r} is already materialized in a "
                    f"different address space; materialize a detached_copy()")
            return self._region
        name = region_name or f"column:{self.name}"
        region = space.allocate(name, max(self.nbytes, 1), align=64)
        memory = space.memory
        width = self.dtype.nbytes
        addr = region.base
        for value in self.values:
            memory.write(addr, width, int(value))
            addr += width
        self._region = region
        self._space = space
        return region

    def address_of(self, row: int) -> int:
        """Simulated address of ``values[row]``."""
        if not 0 <= row < len(self.values):
            raise IndexError(f"row {row} out of range for column {self.name!r}")
        return self.region.base + row * self.dtype.nbytes

    def iter_addresses(self) -> Iterable[int]:
        """Yield each row's simulated-memory address in order."""
        base = self.region.base
        width = self.dtype.nbytes
        for row in range(len(self.values)):
            yield base + row * width
