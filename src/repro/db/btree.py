"""A bulk-loaded B+-tree index in simulated memory.

Section 7 of the paper: "Widx can easily be extended to accelerate other
index structures, such as balanced trees, which are also common in
DBMSs."  This module provides that extension's substrate: a B+-tree whose
nodes are laid out for the Widx datapath (64-byte power-of-two nodes, so
level descent needs only shifts and adds), plus the functional search used
as the validation reference.

Node layout (64 bytes, one cache block):

========  =====  ======================================================
offset    size   field
========  =====  ======================================================
0         8      meta: bit 0 = leaf flag
8         4x4    keys[4] (unused slots padded with KEY_PAD = 2^32-1)
24        5x8    internal: children[5]  (child i covers key <= keys[i])
24        4x4    leaf: payloads[4]
40        8      leaf: next-leaf pointer (for range scans)
========  =====  ======================================================

The tree is bulk-loaded from sorted unique keys (the common DSS pattern:
indexes built once per query plan), giving full leaves and a minimal
height.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import PlanError
from ..mem.layout import AddressSpace, Region
from ..mem.physmem import NULL_PTR

NODE_BYTES = 64
FANOUT = 4                      # keys per node; FANOUT+1 children
KEY_PAD = (1 << 32) - 1         # pads unused key slots; sorts after all keys
META_LEAF = 1

_KEYS_OFFSET = 8
_CHILDREN_OFFSET = 24
_PAYLOADS_OFFSET = 24
_NEXT_LEAF_OFFSET = 40


@dataclass
class BTreeStats:
    """Shape statistics of a built tree."""

    num_keys: int
    height: int                 # levels including the leaf level
    leaves: int
    internal_nodes: int

    @property
    def total_nodes(self) -> int:
        return self.leaves + self.internal_nodes


class BPlusTree:
    """A read-only (bulk-loaded) B+-tree over 4-byte keys and payloads."""

    def __init__(self, space: AddressSpace, keys: Sequence[int],
                 payloads: Sequence[int], name: str = "btree") -> None:
        if len(keys) != len(payloads):
            raise PlanError("keys and payloads must have equal length")
        if len(keys) == 0:
            raise PlanError("cannot bulk-load an empty tree")
        pairs = sorted(zip((int(k) for k in keys),
                           (int(p) for p in payloads)))
        sorted_keys = [k for k, _ in pairs]
        if any(a == b for a, b in zip(sorted_keys, sorted_keys[1:])):
            raise PlanError("bulk load requires unique keys")
        if sorted_keys[-1] >= KEY_PAD:
            raise PlanError(f"keys must be below the pad value {KEY_PAD:#x}")
        self.space = space
        self.memory = space.memory
        self.name = name
        self.num_keys = len(pairs)

        leaves = (self.num_keys + FANOUT - 1) // FANOUT
        total = self._count_nodes(leaves)
        self.region: Region = space.allocate(f"{name}:nodes",
                                             total * NODE_BYTES, align=64)
        self._next_node = self.region.base
        self.height = 0
        self.leaf_count = 0
        self.internal_count = 0
        self.root = self._bulk_load(pairs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _count_nodes(leaves: int) -> int:
        total, level = leaves, leaves
        while level > 1:
            level = (level + FANOUT) // (FANOUT + 1)
            total += level
        return total

    def _alloc(self) -> int:
        addr = self._next_node
        if addr + NODE_BYTES > self.region.end:
            raise PlanError(f"btree {self.name!r} node budget exhausted")
        self._next_node += NODE_BYTES
        return addr

    def _write_keys(self, node: int, keys: List[int]) -> None:
        for slot in range(FANOUT):
            value = keys[slot] if slot < len(keys) else KEY_PAD
            self.memory.write_u32(node + _KEYS_OFFSET + 4 * slot, value)

    def _bulk_load(self, pairs: List[Tuple[int, int]]) -> int:
        # Leaf level.
        leaf_entries: List[Tuple[int, int]] = []  # (max key, node addr)
        previous_leaf: Optional[int] = None
        for start in range(0, len(pairs), FANOUT):
            chunk = pairs[start:start + FANOUT]
            node = self._alloc()
            self.memory.write_u64(node, META_LEAF)
            self._write_keys(node, [k for k, _ in chunk])
            for slot, (_key, payload) in enumerate(chunk):
                self.memory.write_u32(node + _PAYLOADS_OFFSET + 4 * slot,
                                      payload)
            self.memory.write_u64(node + _NEXT_LEAF_OFFSET, NULL_PTR)
            if previous_leaf is not None:
                self.memory.write_u64(previous_leaf + _NEXT_LEAF_OFFSET, node)
            previous_leaf = node
            leaf_entries.append((chunk[-1][0], node))
            self.leaf_count += 1
        self.height = 1

        # Internal levels: child i covers keys <= keys[i]; the last child
        # has no separator (covers everything greater).
        level = leaf_entries
        while len(level) > 1:
            next_level: List[Tuple[int, int]] = []
            for start in range(0, len(level), FANOUT + 1):
                group = level[start:start + FANOUT + 1]
                node = self._alloc()
                self.memory.write_u64(node, 0)
                separators = [max_key for max_key, _ in group[:-1]]
                self._write_keys(node, separators)
                for slot, (_max_key, child) in enumerate(group):
                    self.memory.write_u64(
                        node + _CHILDREN_OFFSET + 8 * slot, child)
                for slot in range(len(group), FANOUT + 1):
                    self.memory.write_u64(
                        node + _CHILDREN_OFFSET + 8 * slot, NULL_PTR)
                next_level.append((group[-1][0], node))
                self.internal_count += 1
            level = next_level
            self.height += 1
        return level[0][1]

    # ------------------------------------------------------------------
    # Layout accessors (shared with the trace/Widx program generators)
    # ------------------------------------------------------------------

    def node_is_leaf(self, node: int) -> bool:
        """True if the node's meta word has the leaf bit set."""
        return bool(self.memory.read_u64(node) & META_LEAF)

    def node_key(self, node: int, slot: int) -> int:
        """The key stored in the given slot of a node."""
        return self.memory.read_u32(node + _KEYS_OFFSET + 4 * slot)

    def node_child(self, node: int, slot: int) -> int:
        """The child pointer in the given slot of an internal node."""
        return self.memory.read_u64(node + _CHILDREN_OFFSET + 8 * slot)

    def node_payload(self, node: int, slot: int) -> int:
        """The payload stored in the given slot of a leaf."""
        return self.memory.read_u32(node + _PAYLOADS_OFFSET + 4 * slot)

    def next_leaf(self, node: int) -> int:
        """The leaf-chain successor pointer (NULL at the end)."""
        return self.memory.read_u64(node + _NEXT_LEAF_OFFSET)

    # ------------------------------------------------------------------
    # Search (the functional reference)
    # ------------------------------------------------------------------

    def descend_path(self, key: int) -> Iterator[int]:
        """Yield the node addresses visited searching for ``key``."""
        node = self.root
        while True:
            yield node
            if self.node_is_leaf(node):
                return
            slot = 0
            while slot < FANOUT and key > self.node_key(node, slot):
                slot += 1
            child = self.node_child(node, slot)
            if child == NULL_PTR:
                # Key is larger than everything under the last real child.
                child = self._last_real_child(node)
            node = child

    def _last_real_child(self, node: int) -> int:
        for slot in range(FANOUT, -1, -1):
            child = self.node_child(node, slot)
            if child != NULL_PTR:
                return child
        raise PlanError("internal node with no children")

    def search(self, key: int) -> Optional[int]:
        """The payload stored for ``key``, or None."""
        for node in self.descend_path(key):
            if self.node_is_leaf(node):
                for slot in range(FANOUT):
                    if self.node_key(node, slot) == key:
                        return self.node_payload(node, slot)
                return None
        return None  # pragma: no cover - descend always ends at a leaf

    def range_scan(self, low: int, high: int) -> List[Tuple[int, int]]:
        """All (key, payload) pairs with low <= key <= high, in order."""
        if low > high:
            return []
        leaf = None
        for node in self.descend_path(low):
            leaf = node
        results: List[Tuple[int, int]] = []
        while leaf != NULL_PTR:
            for slot in range(FANOUT):
                key = self.node_key(leaf, slot)
                if key == KEY_PAD or key > high:
                    return results
                if key >= low:
                    results.append((key, self.node_payload(leaf, slot)))
            leaf = self.next_leaf(leaf)
        return results

    def stats(self) -> BTreeStats:
        """Shape statistics: height, leaf and internal node counts."""
        return BTreeStats(num_keys=self.num_keys, height=self.height,
                          leaves=self.leaf_count,
                          internal_nodes=self.internal_count)

    @property
    def footprint_bytes(self) -> int:
        return self._next_node - self.region.base


def batched_search(tree: BPlusTree, keys: Sequence[int],
                   visit_log: Optional[List[int]] = None) -> List[Optional[int]]:
    """Level-wise batched point lookups (the FPGA batch-search pattern).

    All probes of one batch descend in lock-step: at each level the
    frontier is grouped by node and every distinct node is fetched exactly
    once, no matter how many probes route through it — the amortization a
    per-probe descent cannot get.  Returns payloads aligned with ``keys``
    (None for misses).

    ``visit_log``, when given, collects the fetched node addresses in
    visit order; the hypothesis suite asserts each node appears at most
    once per batch, and the Widx batched walker relies on the same
    sharing (its repeat fetches of a shared upper-level node are L1 hits).
    """
    keys = [int(k) for k in keys]
    results: List[Optional[int]] = [None] * len(keys)
    frontier = [(i, tree.root) for i in range(len(keys))]
    while frontier:
        groups: Dict[int, List[int]] = {}
        for i, node in frontier:
            groups.setdefault(node, []).append(i)
        next_frontier: List[Tuple[int, int]] = []
        for node, members in groups.items():
            if visit_log is not None:
                visit_log.append(node)
            if tree.node_is_leaf(node):
                for i in members:
                    for slot in range(FANOUT):
                        if tree.node_key(node, slot) == keys[i]:
                            results[i] = tree.node_payload(node, slot)
                            break
            else:
                for i in members:
                    slot = 0
                    while (slot < FANOUT
                           and keys[i] > tree.node_key(node, slot)):
                        slot += 1
                    child = tree.node_child(node, slot)
                    if child == NULL_PTR:
                        child = tree._last_real_child(node)
                    next_frontier.append((i, child))
        frontier = next_frontier
    return results
