"""A Cuckoo-Trie-style MLP-friendly ordered index in simulated memory.

The Cuckoo Trie (PAPERS.md) makes the counter-argument to the paper's
premise: instead of accelerating a dependent-load chain, restructure the
index so node fetches are *independent*.  Its trick is storing trie nodes
in a hash table keyed by the node's path, so a lookup can compute the
memory location of every level it might touch straight from the key and
issue all those fetches concurrently — an OoO window (or a prefetching
walker) overlaps them, where a B+-tree descent serializes them.

This module reproduces that layout over 32-bit keys split into eight
4-bit nibbles.  Each key is stored exactly once, as a *terminal* entry at
the shallowest depth where its prefix is unique among all keys (path
compression: dense key sets push terminals deep, sparse ones keep them
shallow).  All terminals live in one bucketed hash table; the bucket for
key ``k`` at depth ``d`` is computed purely from ``k``::

    v(k, d)    = (k >> (32 - 4 d)) + 2^(32+d)     # prefix + depth tag
    bucket(k, d) = hash(v(k, d)) & mask

so a probe's eight candidate buckets are all known up front — the MLP the
structure is designed to expose.  A lookup scans depths 1..8 in order and
stops at the first tag match; the tag stores the *full* key plus the
depth bit, so prefix aliasing and hash collisions are both resolved by a
single 8-byte compare per slot.

Bucket layout (64 bytes, one cache block)::

    ========  =====  ===================================================
    offset    size   field
    ========  =====  ===================================================
    0         8      overflow-chain pointer (NULL at the end)
    8         8      pad
    16        24     slot 0
    40        24     slot 1
    ========  =====  ===================================================

Slot layout (24 bytes)::

    ========  =====  ===================================================
    0         8      tag: key + 2^(32+depth)   (0 = empty)
    8         4      payload
    12        4      pad
    16        8      next-terminal pointer (sorted key order; NULL last)
    ========  =====  ===================================================

Ordered semantics come from the next-terminal chain threaded through the
slots at build time: iterating from ``head_terminal`` yields keys in
sorted order, and a range scan walks the chain from the first terminal
with ``key >= low`` — the ordered-index counterpart of the B+-tree's
leaf chain.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import PlanError
from ..mem.layout import AddressSpace, Region
from ..mem.physmem import NULL_PTR
from .hashfn import ROBUST_HASH_32, HashSpec

#: Nibble width and depth budget: 32-bit keys = 8 levels of 4 bits.
NIBBLE_BITS = 4
MAX_DEPTH = 32 // NIBBLE_BITS

BUCKET_BYTES = 64
SLOTS_PER_BUCKET = 2
SLOT_BYTES = 24

_OVERFLOW_OFFSET = 0
_SLOT_BASE = 16
_TAG_OFFSET = 0
_PAYLOAD_OFFSET = 8
_NEXT_OFFSET = 16

#: The prefix mix: shift-add-xor only, so walker programs (role W) can
#: compile it — AND-SHF is dispatcher-only in Table 1.
TRIE_HASH: HashSpec = ROBUST_HASH_32

#: Keys must stay below the B+-tree pad value so the same probe columns
#: drive every ordered index interchangeably.
KEY_LIMIT = (1 << 32) - 1


def probe_value(key: int, depth: int) -> int:
    """The hashed quantity for ``key`` at ``depth``: prefix + depth tag."""
    return (key >> (32 - NIBBLE_BITS * depth)) + (1 << (32 + depth))


def tag_value(key: int, depth: int) -> int:
    """The slot tag a terminal for ``key`` at ``depth`` stores."""
    return key + (1 << (32 + depth))


@dataclass
class TrieStats:
    """Shape statistics of a built trie."""

    num_keys: int
    buckets: int
    overflow_nodes: int
    max_depth: int
    mean_depth: float


class MlpTrie:
    """A read-only (bulk-loaded) hashed trie over 4-byte keys/payloads."""

    def __init__(self, space: AddressSpace, keys: Sequence[int],
                 payloads: Sequence[int], name: str = "trie") -> None:
        if len(keys) != len(payloads):
            raise PlanError("keys and payloads must have equal length")
        if len(keys) == 0:
            raise PlanError("cannot bulk-load an empty trie")
        pairs = sorted(zip((int(k) for k in keys),
                           (int(p) for p in payloads)))
        sorted_keys = [k for k, _ in pairs]
        if any(a == b for a, b in zip(sorted_keys, sorted_keys[1:])):
            raise PlanError("bulk load requires unique keys")
        if sorted_keys[0] < 0 or sorted_keys[-1] >= KEY_LIMIT:
            raise PlanError(f"keys must be in [0, {KEY_LIMIT:#x})")
        self.space = space
        self.memory = space.memory
        self.name = name
        self.num_keys = len(pairs)
        self.hash_spec = TRIE_HASH

        depths = _terminal_depths(sorted_keys)
        self.max_depth = max(depths)
        self.mean_depth = sum(depths) / len(depths)

        self.num_buckets = _next_pow2(max(1, self.num_keys))
        self.bucket_mask = self.num_buckets - 1
        self.buckets: Region = space.allocate(
            f"{name}:buckets", self.num_buckets * BUCKET_BYTES, align=64)

        # Place every terminal: bucket slots first, overflow blocks after.
        placements = [[] for _ in range(self.num_buckets)]
        for (key, payload), depth in zip(pairs, depths):
            index = self.hash_spec(probe_value(key, depth)) & self.bucket_mask
            placements[index].append((key, depth, payload))
        overflow_blocks = sum(
            max(0, len(group) - SLOTS_PER_BUCKET + SLOTS_PER_BUCKET - 1)
            // SLOTS_PER_BUCKET
            for group in placements)
        self.overflow_count = overflow_blocks
        self.overflow: Optional[Region] = None
        if overflow_blocks:
            self.overflow = space.allocate(
                f"{name}:overflow", overflow_blocks * BUCKET_BYTES, align=64)
        next_overflow = self.overflow.base if self.overflow else NULL_PTR

        slot_of = {}
        for index, group in enumerate(placements):
            block = self.buckets.base + index * BUCKET_BYTES
            self.memory.write_u64(block + _OVERFLOW_OFFSET, NULL_PTR)
            cursor = 0
            for key, depth, payload in group:
                if cursor == SLOTS_PER_BUCKET:
                    # Chain a fresh overflow block onto this bucket.
                    self.memory.write_u64(block + _OVERFLOW_OFFSET,
                                          next_overflow)
                    block = next_overflow
                    next_overflow += BUCKET_BYTES
                    self.memory.write_u64(block + _OVERFLOW_OFFSET, NULL_PTR)
                    cursor = 0
                slot = block + _SLOT_BASE + cursor * SLOT_BYTES
                self.memory.write_u64(slot + _TAG_OFFSET,
                                      tag_value(key, depth))
                self.memory.write_u32(slot + _PAYLOAD_OFFSET, payload)
                self.memory.write_u64(slot + _NEXT_OFFSET, NULL_PTR)
                slot_of[key] = slot
                cursor += 1

        # Thread the sorted terminal chain through the slots.
        self._ordered_keys = sorted_keys
        self._ordered_slots = [slot_of[key] for key in sorted_keys]
        for addr, succ in zip(self._ordered_slots, self._ordered_slots[1:]):
            self.memory.write_u64(addr + _NEXT_OFFSET, succ)
        self.head_terminal = self._ordered_slots[0]

    # ------------------------------------------------------------------
    # Layout accessors (shared with the trace/Widx program generators)
    # ------------------------------------------------------------------

    def bucket_addr(self, key: int, depth: int) -> int:
        """The bucket a probe for ``key`` reads at ``depth`` — computable
        from the key alone, which is the whole point of the layout."""
        index = self.hash_spec(probe_value(key, depth)) & self.bucket_mask
        return self.buckets.base + index * BUCKET_BYTES

    def chain_blocks(self, bucket: int) -> Iterator[int]:
        """Yield the bucket block then each overflow block in its chain."""
        block = bucket
        while block != NULL_PTR:
            yield block
            block = self.memory.read_u64(block + _OVERFLOW_OFFSET)

    def slot_tag(self, slot: int) -> int:
        """The depth-tagged key stored in a slot (0 = empty)."""
        return self.memory.read_u64(slot + _TAG_OFFSET)

    def slot_payload(self, slot: int) -> int:
        """The payload word stored beside a slot's tag."""
        return self.memory.read_u32(slot + _PAYLOAD_OFFSET)

    def slot_next(self, slot: int) -> int:
        """The ordered-chain pointer to the next terminal slot."""
        return self.memory.read_u64(slot + _NEXT_OFFSET)

    # ------------------------------------------------------------------
    # Search (the functional reference: the walker program in slow motion)
    # ------------------------------------------------------------------

    def search(self, key: int) -> Optional[int]:
        """The payload stored for ``key``, or None.

        Scans depths 1..8 in order, exactly as the Widx walker and the
        baseline traces do: each depth costs one independent bucket fetch
        plus tag compares; the first tag match wins.
        """
        for depth in range(1, MAX_DEPTH + 1):
            expect = tag_value(key, depth)
            for block in self.chain_blocks(self.bucket_addr(key, depth)):
                for index in range(SLOTS_PER_BUCKET):
                    slot = block + _SLOT_BASE + index * SLOT_BYTES
                    if self.slot_tag(slot) == expect:
                        return self.slot_payload(slot)
        return None

    def search_start(self, low: int) -> int:
        """The terminal-slot address where a scan for ``low`` begins
        (first terminal with key >= low), or NULL when none exists."""
        position = bisect.bisect_left(self._ordered_keys, low)
        if position == len(self._ordered_slots):
            return NULL_PTR
        return self._ordered_slots[position]

    def range_scan(self, low: int, high: int) -> List[Tuple[int, int]]:
        """All (key, payload) pairs with low <= key <= high, in order,
        read by walking the in-memory terminal chain."""
        if low > high:
            return []
        slot = self.search_start(low)
        results: List[Tuple[int, int]] = []
        while slot != NULL_PTR:
            key = self.slot_tag(slot) & 0xFFFFFFFF
            if key > high:
                break
            results.append((key, self.slot_payload(slot)))
            slot = self.slot_next(slot)
        return results

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (key, payload) pairs in key order, via the terminal chain."""
        slot = self.head_terminal
        while slot != NULL_PTR:
            yield (self.slot_tag(slot) & 0xFFFFFFFF,
                   self.slot_payload(slot))
            slot = self.slot_next(slot)

    def stats(self) -> TrieStats:
        """Structure summary: key count, buckets, overflow, depths."""
        return TrieStats(num_keys=self.num_keys, buckets=self.num_buckets,
                         overflow_nodes=self.overflow_count,
                         max_depth=self.max_depth,
                         mean_depth=self.mean_depth)

    @property
    def region(self) -> Region:
        """The primary bucket region (warmed before measurement)."""
        return self.buckets

    @property
    def footprint_bytes(self) -> int:
        total = self.buckets.size
        if self.overflow is not None:
            total += self.overflow.size
        return total


def _terminal_depths(sorted_keys: List[int]) -> List[int]:
    """Terminal depth per key: one nibble past the longest prefix it
    shares with any other key — which, on sorted keys, is a prefix shared
    with an immediate neighbour."""
    depths = []
    for index, key in enumerate(sorted_keys):
        shared = 0
        for neighbour in (index - 1, index + 1):
            if 0 <= neighbour < len(sorted_keys):
                shared = max(shared,
                             _shared_nibbles(key, sorted_keys[neighbour]))
        depths.append(min(MAX_DEPTH, shared + 1))
    return depths


def _shared_nibbles(a: int, b: int) -> int:
    if a == b:
        return MAX_DEPTH
    return (32 - (a ^ b).bit_length()) // NIBBLE_BITS


def _next_pow2(value: int) -> int:
    return 1 << max(0, value - 1).bit_length()
