"""Hash functions expressible on the Widx datapath.

The Widx ISA (Table 1 of the paper) has shifts, adds, xors and the fused
ADD-SHF / AND-SHF / XOR-SHF forms — but **no multiply**.  Robust DBMS hash
functions therefore have to be built from shift-add-xor mixing (the same
family as Thomas Wang's integer hashes and MonetDB's mix macros).

A :class:`HashSpec` is a sequence of :class:`HashStep` micro-steps.  The
same spec is (a) evaluated directly in Python as the functional reference,
(b) compiled to Widx assembly by :mod:`repro.widx.programs`, and (c) costed
by the analytical model (one fused instruction per step).

The paper's Listing 1 toy hash ``(X & MASK) ^ HPRIME`` is ``KERNEL_HASH``;
``ROBUST_HASH_32/64`` model the heavier production functions whose ALU cost
makes key hashing 30% (avg) to 68% (max) of lookup time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import InvariantViolation

MASK64 = (1 << 64) - 1

#: step kinds -> (uses_shift, uses_const)
_STEP_KINDS = {
    "xor_shl": (True, False),   # h ^= h << a
    "xor_shr": (True, False),   # h ^= h >> a
    "add_shl": (True, False),   # h += h << a
    "sub_shl": (True, False),   # h = (h << a) - h   (negated add-shift)
    "and_const": (False, True),  # h &= c
    "xor_const": (False, True),  # h ^= c
    "add_const": (False, True),  # h += c
    "shr": (True, False),        # h >>= a
    "shl": (True, False),        # h <<= a
}


@dataclass(frozen=True)
class HashStep:
    """One mixing micro-step; maps to one (possibly fused) Widx instruction."""

    kind: str
    amount: int = 0   # shift distance, if the step shifts
    const: int = 0    # immediate constant, if the step uses one

    def __post_init__(self) -> None:
        if self.kind not in _STEP_KINDS:
            raise ValueError(f"unknown hash step kind {self.kind!r}")
        uses_shift, uses_const = _STEP_KINDS[self.kind]
        if uses_shift and not 0 < self.amount < 64:
            raise ValueError(f"step {self.kind} needs a shift amount in (0, 64)")
        if uses_const and self.const == 0:
            raise ValueError(f"step {self.kind} needs a nonzero constant")

    def apply(self, h: int) -> int:
        """Evaluate this step on a 64-bit value."""
        if self.kind == "xor_shl":
            return (h ^ (h << self.amount)) & MASK64
        if self.kind == "xor_shr":
            return (h ^ (h >> self.amount)) & MASK64
        if self.kind == "add_shl":
            return (h + (h << self.amount)) & MASK64
        if self.kind == "sub_shl":
            return ((h << self.amount) - h) & MASK64
        if self.kind == "and_const":
            return h & self.const
        if self.kind == "xor_const":
            return (h ^ self.const) & MASK64
        if self.kind == "add_const":
            return (h + self.const) & MASK64
        if self.kind == "shr":
            return h >> self.amount
        if self.kind == "shl":
            return (h << self.amount) & MASK64
        raise InvariantViolation(f"unhandled hash step kind {self.kind!r}")


@dataclass(frozen=True)
class HashSpec:
    """A named hash function: an ordered pipeline of mixing steps."""

    name: str
    steps: Tuple[HashStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a hash function needs at least one step")

    def __call__(self, key: int) -> int:
        h = key & MASK64
        for step in self.steps:
            h = step.apply(h)
        return h

    def bucket_of(self, key: int, num_buckets: int) -> int:
        """Bucket index: the mixed value masked to a power-of-two table."""
        if num_buckets & (num_buckets - 1):
            raise ValueError("bucket count must be a power of two")
        return self(key) & (num_buckets - 1)

    @property
    def compute_cycles(self) -> int:
        """ALU cycles on Widx: one fused instruction per step."""
        return len(self.steps)


def _steps(*specs: Sequence) -> Tuple[HashStep, ...]:
    return tuple(HashStep(kind, amount, const) for kind, amount, const in specs)


def kernel_hash(mask_bits: int = 24) -> HashSpec:
    """Listing 1's toy hash, ``((X) & MASK) ^ HPRIME``, with a mask wide
    enough for the bucket count in use (the optimized kernel radix-masks
    raw keys).  Two instructions — so cheap that decoupled hashing barely
    helps, which is why the paper's one-walker kernel gains only 4%."""
    if not 1 <= mask_bits <= 63:
        raise ValueError("mask must cover 1..63 bits")
    return HashSpec(f"kernel{mask_bits}", _steps(
        ("and_const", 0, (1 << mask_bits) - 1),
        ("xor_const", 0, 0xB16),
    ))


#: Default kernel hash: 24-bit mask covers every scaled kernel table.
KERNEL_HASH = kernel_hash(24)

#: A robust 32-bit mix in the style of Wang's hash32 (shift-add-xor only).
ROBUST_HASH_32 = HashSpec("robust32", _steps(
    ("add_shl", 15, 0),       # h = (h << 15) + h  ~  h *= 0x8001
    ("xor_shr", 10, 0),
    ("add_shl", 3, 0),
    ("xor_shr", 6, 0),
    ("add_shl", 11, 0),
    ("xor_shr", 16, 0),
))

#: A robust 64-bit mix modelled on Wang's 64-bit shift-add hash; used for
#: 8-byte ("double integer") keys such as TPC-H query 20's, whose
#: computationally intensive hashing gives Widx its best speedup.
ROBUST_HASH_64 = HashSpec("robust64", _steps(
    ("add_shl", 21, 0),       # key += key << 21 (Widx has no SUB; same mixing family)
    ("xor_shr", 24, 0),
    ("add_shl", 3, 0),
    ("add_shl", 8, 0),
    ("xor_shr", 14, 0),
    ("add_shl", 2, 0),
    ("add_shl", 4, 0),
    ("xor_shr", 28, 0),
    ("add_shl", 31, 0),
))

ALL_HASHES = {spec.name: spec for spec in (KERNEL_HASH, ROBUST_HASH_32, ROBUST_HASH_64)}
