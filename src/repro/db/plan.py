"""Query plans: small physical-operator trees.

The executor (:mod:`repro.db.executor`) evaluates these trees functionally
and attributes modelled cycles to the Figure 2a categories:

* ``index``    — hash-index probes (what Widx accelerates),
* ``scan``     — selection scans,
* ``sortjoin`` — sorting plus non-probe join work (build, materialize),
* ``other``    — aggregation, library code and system overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .hashfn import HashSpec
from .operators.scan import Predicate


class PlanNode:
    """Base class for plan-tree nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child plan nodes, in evaluation order."""
        return ()

    def describe(self) -> str:
        """One-line description of this operator."""
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the plan tree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass
class ScanNode(PlanNode):
    """Read a base table, optionally filtering with a predicate."""

    table: str
    predicate: Optional[Predicate] = None

    def describe(self) -> str:
        """One-line description of this operator."""
        condition = f" where {self.predicate}" if self.predicate else ""
        return f"Scan({self.table}{condition})"


@dataclass
class HashJoinNode(PlanNode):
    """Index the build child's key and probe it with the probe child's key."""

    build: PlanNode
    probe: PlanNode
    build_key: str
    probe_key: str
    payload_column: Optional[str] = None
    indirect: bool = False
    hash_spec: Optional[HashSpec] = None
    target_nodes_per_bucket: float = 1.0

    def children(self) -> Tuple[PlanNode, ...]:
        """Child plan nodes: (build, probe)."""
        return (self.build, self.probe)

    def describe(self) -> str:
        """One-line description of this operator."""
        style = "indirect" if self.indirect else "direct"
        return (f"HashJoin({self.build_key} = {self.probe_key}, {style})")


@dataclass
class SortNode(PlanNode):
    """Sort the child's output by one key."""

    child: PlanNode
    key: str
    descending: bool = False

    def children(self) -> Tuple[PlanNode, ...]:
        """Child plan nodes, in evaluation order."""
        return (self.child,)

    def describe(self) -> str:
        """One-line description of this operator."""
        direction = "desc" if self.descending else "asc"
        return f"Sort({self.key} {direction})"


@dataclass
class AggregateNode(PlanNode):
    """Aggregate the child's output; terminal node of most DSS plans."""

    child: PlanNode
    aggregates: Dict[str, str] = field(default_factory=dict)

    def children(self) -> Tuple[PlanNode, ...]:
        """Child plan nodes, in evaluation order."""
        return (self.child,)

    def describe(self) -> str:
        """One-line description of this operator."""
        return f"Aggregate({', '.join(self.aggregates.values()) or 'count'})"


@dataclass
class GroupByNode(PlanNode):
    """Grouped (hash) aggregation over one key."""

    child: PlanNode
    key: str
    aggregates: Dict[str, str] = field(default_factory=dict)

    def children(self) -> Tuple[PlanNode, ...]:
        """Child plan nodes, in evaluation order."""
        return (self.child,)

    def describe(self) -> str:
        """One-line description of this operator."""
        specs = ", ".join(self.aggregates.values()) or "count"
        return f"GroupBy({self.key}: {specs})"
