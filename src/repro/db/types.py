"""Column data types.

The engine stores fixed-width unsigned integers; SQL-level types (dates,
decimals, doubles) are encoded into them the way column stores do.  The
paper's workloads use 4-byte keys (hash-join kernel, most DSS queries) and
8-byte keys ("double integers" in TPC-H query 20).
"""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """Fixed-width column types."""

    U32 = "u32"
    U64 = "u64"

    @property
    def nbytes(self) -> int:
        return 4 if self is DataType.U32 else 8

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.uint32 if self is DataType.U32 else np.uint64)

    @property
    def max_value(self) -> int:
        return (1 << (8 * self.nbytes)) - 1

    @classmethod
    def for_key_bytes(cls, key_bytes: int) -> "DataType":
        if key_bytes == 4:
            return cls.U32
        if key_bytes == 8:
            return cls.U64
        raise ValueError(f"unsupported key width {key_bytes} bytes")
