"""Workload data generation (the dbgen/dsdgen stand-in).

Generates key columns with controlled cardinality, distribution and match
rate.  The paper's kernel uses uniformly distributed 4 B keys probing an
index of Small/Medium/Large cardinality; the DSS queries probe indexes
built on dimension/fact columns of varying cardinality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .column import Column
from .table import Table
from .types import DataType


def make_rng(seed: int) -> np.random.Generator:
    """A seeded numpy Generator (all workload data is reproducible)."""
    return np.random.default_rng(seed)


def unique_keys(count: int, key_bytes: int, rng: np.random.Generator) -> np.ndarray:
    """``count`` distinct keys, dense-ish but shuffled (realistic surrogate keys)."""
    dtype = DataType.for_key_bytes(key_bytes)
    # Spread keys over 4x the count so values are not trivially sequential,
    # while staying far below the empty-bucket sentinel.
    space = 4 * count
    values = rng.choice(space, size=count, replace=False).astype(dtype.numpy_dtype)
    return values + 1  # avoid key 0, which reads like a NULL in some schemas


def probe_keys(build_keys: np.ndarray, count: int, match_fraction: float,
               key_bytes: int, rng: np.random.Generator) -> np.ndarray:
    """Outer-relation keys: ``match_fraction`` of probes hit the index.

    Misses draw from a disjoint key range, modelling foreign keys that fall
    outside the (filtered) build side.
    """
    if not 0.0 <= match_fraction <= 1.0:
        raise ValueError("match fraction must be in [0, 1]")
    dtype = DataType.for_key_bytes(key_bytes)
    matches = rng.choice(build_keys, size=count).astype(dtype.numpy_dtype)
    if match_fraction >= 1.0:
        return matches
    miss_base = int(build_keys.max()) + 1
    misses = (miss_base + rng.integers(0, max(4 * count, 16), size=count)) \
        .astype(dtype.numpy_dtype)
    take_match = rng.random(count) < match_fraction
    return np.where(take_match, matches, misses)


def zipf_keys(count: int, cardinality: int, skew: float,
              rng: np.random.Generator) -> np.ndarray:
    """Zipf-distributed keys over ``cardinality`` distinct values.

    Used by the skew-sensitivity ablation: real analytics key columns are
    often skewed, which lengthens hot chains and shifts work between the
    dispatcher and the walkers.
    """
    if cardinality < 1:
        raise ValueError("cardinality must be >= 1")
    if skew <= 0:
        return rng.integers(1, cardinality + 1, size=count).astype(np.uint32)
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return (rng.choice(cardinality, size=count, p=weights) + 1).astype(np.uint32)


def build_pair_tables(build_rows: int, probe_rows: int, *, key_bytes: int = 4,
                      match_fraction: float = 1.0, seed: int = 42,
                      build_name: str = "A", probe_name: str = "B",
                      key_name: str = "age") -> tuple:
    """The Figure 1 scenario: tables A (indexed) and B (probing) on one key.

    Returns ``(build_table, probe_table)``.
    """
    rng = make_rng(seed)
    dtype = DataType.for_key_bytes(key_bytes)
    build_key = unique_keys(build_rows, key_bytes, rng)
    payloads = np.arange(1, build_rows + 1, dtype=dtype.numpy_dtype)
    build_table = Table(build_name, [
        Column(key_name, dtype, build_key),
        Column("id", dtype, payloads),
    ])
    probe_key = probe_keys(build_key, probe_rows, match_fraction, key_bytes, rng)
    probe_table = Table(probe_name, [
        Column(key_name, dtype, probe_key),
    ])
    return build_table, probe_table
