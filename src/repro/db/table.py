"""Column-store tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import PlanError
from .column import Column
from .types import DataType


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: Optional[Iterable[Column]] = None) -> None:
        self.name = name
        self._columns: Dict[str, Column] = {}
        if columns:
            for column in columns:
                self.add_column(column)

    def add_column(self, column: Column) -> None:
        """Attach a column (must match the table's row count)."""
        if column.name in self._columns:
            raise PlanError(f"table {self.name!r} already has column {column.name!r}")
        if self._columns:
            expected = self.num_rows
            if len(column) != expected:
                raise PlanError(
                    f"column {column.name!r} has {len(column)} rows; "
                    f"table {self.name!r} has {expected}")
        self._columns[column.name] = column

    def column(self, name: str) -> Column:
        """Look up a column by name (PlanError if absent)."""
        try:
            return self._columns[name]
        except KeyError:
            raise PlanError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self._columns)}") from None

    def has_column(self, name: str) -> bool:
        """True if a column of that name exists."""
        return name in self._columns

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.column_names})"

    def select(self, mask: np.ndarray, name: Optional[str] = None) -> "Table":
        """A new table with only the rows where ``mask`` is true."""
        result = Table(name or f"{self.name}#sel")
        for column in self._columns.values():
            result.add_column(Column(column.name, column.dtype, column.values[mask]))
        return result

    @classmethod
    def from_arrays(cls, name: str, **arrays: np.ndarray) -> "Table":
        """Build a table from keyword numpy arrays (dtype inferred)."""
        table = cls(name)
        for column_name, values in arrays.items():
            array = np.asarray(values)
            dtype = DataType.U64 if array.dtype.itemsize > 4 else DataType.U32
            table.add_column(Column(column_name, dtype, array))
        return table
