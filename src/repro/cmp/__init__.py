"""Chip-multiprocessor co-simulation (the Table 2 four-core CMP).

The paper evaluates the hash-join kernel with four threads: four cores,
each with a private L1-D/TLB (and its own Widx complex), contending for
one shared 4 MB LLC and two DDR3 memory controllers.  This package builds
that system: per-core memory hierarchies wired to shared lower levels, and
a driver that co-simulates one Widx offload per core on a single event
engine so cross-core LLC and bandwidth contention is real.
"""

from .system import (ChipMultiprocessor, MulticoreRunResult,
                     MulticoreBaselineResult, run_multicore_baseline,
                     run_multicore_offload)

__all__ = [
    "ChipMultiprocessor",
    "MulticoreRunResult",
    "MulticoreBaselineResult",
    "run_multicore_baseline",
    "run_multicore_offload",
]
