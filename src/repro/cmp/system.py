"""The shared-LLC CMP and the multi-threaded Widx offload driver."""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..config import SystemConfig, DEFAULT_CONFIG
from ..cpu.timing import warm_hash_index
from ..db.column import Column
from ..db.hashtable import HashIndex
from ..errors import ConfigError, WidxFault
from ..mem.cache import CacheLevel
from ..mem.dram import MemoryControllers
from ..mem.hierarchy import MemoryHierarchy
from ..obs import StatsRegistry
from ..sim.engine import Engine
from ..widx.machine import WidxMachine, WidxRunResult
from ..widx.programs import (dispatcher_program, producer_program,
                             walker_program)

_multicore_counter = itertools.count()


class ChipMultiprocessor:
    """Per-core private hierarchies over one shared LLC and DRAM bank."""

    def __init__(self, cfg: SystemConfig = DEFAULT_CONFIG,
                 num_cores: Optional[int] = None) -> None:
        self.cfg = cfg
        self.num_cores = num_cores if num_cores is not None else cfg.num_cores
        if not 1 <= self.num_cores <= 64:
            raise ConfigError("core count must be in [1, 64]")
        self.shared_llc = CacheLevel(cfg.llc, "LLC")
        self.shared_dram = MemoryControllers(cfg.dram, cfg.freq_ghz,
                                             cfg.llc.block_bytes)
        self.cores: List[MemoryHierarchy] = [
            MemoryHierarchy(cfg, shared_llc=self.shared_llc,
                            shared_dram=self.shared_dram)
            for _ in range(self.num_cores)
        ]

    def core(self, index: int) -> MemoryHierarchy:
        """The i-th core's private memory hierarchy."""
        return self.cores[index]

    def warm_all(self, index: HashIndex) -> None:
        """Warm the shared LLC once and every core's TLB."""
        for hierarchy in self.cores:
            warm_hash_index(hierarchy, index)

    def llc_miss_ratio(self) -> float:
        """Miss ratio of the shared LLC across all cores."""
        return self.shared_llc.stats.miss_ratio

    def dram_utilization(self, elapsed_cycles: float) -> float:
        """Mean shared-controller utilization over the run."""
        return self.shared_dram.utilization(elapsed_cycles)

    def register_into(self, registry, prefix: str = "cmp") -> None:
        """Publish per-core private hierarchies plus the shared LLC/DRAM.

        Private paths land under ``{prefix}.core{i}``; the shared LLC and
        controllers are registered once under ``{prefix}.llc`` /
        ``{prefix}.dram``.
        """
        for index, hierarchy in enumerate(self.cores):
            hierarchy.register_into(registry, f"{prefix}.core{index}",
                                    include_shared=False)
        self.shared_llc.register_into(registry, f"{prefix}.llc")
        self.shared_dram.register_into(registry, f"{prefix}.dram")


@dataclass
class MulticoreRunResult:
    """A multi-threaded bulk probe: one Widx offload per core."""

    total_cycles: float
    tuples: int
    matches: int
    per_core: Dict[int, WidxRunResult] = field(default_factory=dict)
    llc_miss_ratio: float = 0.0
    dram_utilization: float = 0.0
    validated: Optional[bool] = None
    stats: Optional[Dict[str, Any]] = None  # registry snapshot (to_dict)

    @property
    def cycles_per_tuple(self) -> float:
        """Aggregate throughput: wall-clock cycles per tuple processed."""
        if self.tuples == 0:
            return 0.0
        return self.total_cycles / self.tuples

    @property
    def throughput_tuples_per_kilocycle(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return 1000.0 * self.tuples / self.total_cycles


def run_multicore_offload(index: HashIndex, probe_column: Column, *,
                          config: SystemConfig = DEFAULT_CONFIG,
                          threads: Optional[int] = None,
                          probes: Optional[int] = None,
                          warm: bool = True,
                          validate: bool = True) -> MulticoreRunResult:
    """Probe ``index`` with ``threads`` cores, each running its own Widx.

    The probe stream is split into contiguous per-thread chunks (the
    paper's kernel setup: four threads share one hash table).  All
    machines co-simulate on one engine, so LLC capacity and off-chip
    bandwidth contention across cores is modelled.
    """
    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    cmp_system = ChipMultiprocessor(config, threads)
    threads = cmp_system.num_cores
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    if probes < threads:
        raise WidxFault(f"need at least {threads} probes for {threads} threads")

    space = index.space
    layout = index.layout
    key_bytes = layout.key_bytes
    widx = config.widx
    if widx.mode != "shared":
        raise WidxFault("the multicore driver runs the paper's shared-"
                        "dispatcher organization")

    reference: List[int] = []
    for row in range(probes):
        reference.extend(index.probe(int(probe_column.values[row])))

    if warm:
        cmp_system.warm_all(index)

    engine = Engine()
    machines: List[WidxMachine] = []
    chunk = (probes + threads - 1) // threads
    run_id = next(_multicore_counter)
    out_regions = []
    chunks = []
    for core_index in range(threads):
        first = core_index * chunk
        count = max(0, min(chunk, probes - first))
        chunks.append((first, count))
        out_regions.append(space.allocate(
            f"{index.name}:mc{run_id}:out{core_index}",
            max(64, 8 * (count * 4 + 1)), align=64))

    dispatcher = dispatcher_program(index.hash_spec, layout)
    walker = walker_program(layout)
    producer = producer_program(8)
    mask = index.num_buckets - 1
    base = probe_column.region.base

    for core_index in range(threads):
        first, count = chunks[core_index]
        machine = WidxMachine(config, cmp_system.core(core_index),
                              space.memory, engine=engine)
        machine.build(dispatcher, walker, producer)
        machine.configure_unit("dispatcher", {
            dispatcher.config_registers["key_cursor"]:
                base + first * key_bytes,
            dispatcher.config_registers["key_count"]: count,
            dispatcher.config_registers["bucket_base"]: index.buckets.base,
            dispatcher.config_registers["bucket_mask"]: mask,
        })
        if layout.indirect:
            column_reg = walker.config_registers["column_base"]
            for walker_index in range(widx.num_walkers):
                machine.configure_unit(
                    f"walker{walker_index}",
                    {column_reg: index.key_column.region.base})
        machine.configure_unit("producer", {
            producer.config_registers["out_cursor"]:
                out_regions[core_index].base,
        })
        machine.launch()
        machines.append(machine)

    engine.run()

    per_core: Dict[int, WidxRunResult] = {}
    payloads: List[int] = []
    for core_index, machine in enumerate(machines):
        result = machine.collect(chunks[core_index][1])
        per_core[core_index] = result
        region = out_regions[core_index]
        payloads.extend(space.memory.read_u64(region.base + 8 * i)
                        for i in range(result.matches))
    # Output buffers are scratch: release them (LIFO) so repeated runs on
    # one workload space see identical address layouts.
    for region in reversed(out_regions):
        space.release(region)

    validated: Optional[bool] = None
    if validate:
        validated = sorted(payloads) == sorted(reference)
        if not validated:
            raise WidxFault(
                f"multicore offload diverged: {len(payloads)} emitted vs "
                f"{len(reference)} expected")
    registry = StatsRegistry()
    cmp_system.register_into(registry)
    for core_index, machine in enumerate(machines):
        machine.register_into(registry,
                              prefix=f"cmp.core{core_index}.widx",
                              queue_prefix=f"cmp.core{core_index}.queue")
    engine.register_into(registry, "sim.engine")
    return MulticoreRunResult(
        total_cycles=engine.now,
        tuples=probes,
        matches=len(payloads),
        per_core=per_core,
        llc_miss_ratio=cmp_system.llc_miss_ratio(),
        dram_utilization=cmp_system.dram_utilization(max(1.0, engine.now)),
        validated=validated,
        stats=registry.to_dict(),
    )



@dataclass
class MulticoreBaselineResult:
    """A multi-threaded software probe run on the baseline cores."""

    total_cycles: float
    tuples: int
    per_core_cycles: Dict[int, float] = field(default_factory=dict)
    llc_miss_ratio: float = 0.0
    dram_utilization: float = 0.0

    @property
    def cycles_per_tuple(self) -> float:
        """Aggregate throughput: wall-clock cycles per tuple processed."""
        if self.tuples == 0:
            return 0.0
        return self.total_cycles / self.tuples


def run_multicore_baseline(index: HashIndex, probe_column: Column, *,
                           config: SystemConfig = DEFAULT_CONFIG,
                           threads: Optional[int] = None,
                           probes: Optional[int] = None,
                           core: str = "ooo",
                           warm: bool = True) -> MulticoreBaselineResult:
    """The software counterpart of :func:`run_multicore_offload`: one
    baseline core per thread running the probe loop over its chunk.

    The trace-driven core models are not event-engine processes, so cores
    are interleaved round-robin one probe at a time — their clocks stay
    aligned to within a single probe, which keeps shared-LLC and
    controller reservations approximately causal (the same tolerance the
    analytic resources already absorb).
    """
    from ..cpu.inorder import InOrderCore
    from ..cpu.ooo import OutOfOrderCore
    from ..cpu.trace import ProbeTraceGenerator

    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    cmp_system = ChipMultiprocessor(config, threads)
    threads = cmp_system.num_cores
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    if probes < threads:
        raise WidxFault(f"need at least {threads} probes for {threads} threads")
    if warm:
        cmp_system.warm_all(index)

    chunk = (probes + threads - 1) // threads
    cores = []
    streams = []
    for core_index in range(threads):
        hierarchy = cmp_system.core(core_index)
        if core == "ooo":
            model = OutOfOrderCore(config.ooo, hierarchy)
        elif core == "inorder":
            model = InOrderCore(config.inorder, hierarchy)
        else:
            raise WidxFault(f"unknown baseline core {core!r}")
        first = core_index * chunk
        rows = range(first, min(first + chunk, probes))
        generator = ProbeTraceGenerator(index, probe_column)
        cores.append(model)
        streams.append(generator.stream(rows))

    live = list(range(threads))
    while live:
        still_live = []
        for core_index in live:
            trace = next(streams[core_index], None)
            if trace is None:
                continue
            cores[core_index].execute(trace)
            still_live.append(core_index)
        live = still_live

    per_core = {i: cores[i].completion_time for i in range(threads)}
    total = max(per_core.values())
    return MulticoreBaselineResult(
        total_cycles=total,
        tuples=probes,
        per_core_cycles=per_core,
        llc_miss_ratio=cmp_system.llc_miss_ratio(),
        dram_utilization=cmp_system.dram_utilization(max(1.0, total)),
    )
