"""Unified observability: one stats registry + cycle-attribution tracing.

Every simulated component (cache levels, TLB, DRAM controllers, cores,
Widx units, queues, the event engine itself) owns typed metric objects
from :mod:`repro.obs.metrics` and publishes them into a hierarchical
:class:`~repro.obs.registry.StatsRegistry` via a ``register_into(registry,
prefix)`` method.  The registry is the single machine-readable view of a
run: JSON-serializable (``to_dict``/``from_dict``) and mergeable across
campaign workers (``merge``), which is what backs the CLI's
``--stats-json``.

:class:`~repro.obs.trace.Tracer` is the companion event tracer: components
record begin/end intervals and occupancy samples on named tracks, and the
result exports as Chrome trace-event JSON (loadable in ``about:tracing``
or https://ui.perfetto.dev) — the CLI's ``--trace``.
"""

from .metrics import (Breakdown, Counter, Distribution, Histogram, Occupancy,
                      Trail, decode_metric)
from .registry import StatsRegistry
from .trace import Tracer

__all__ = [
    "Breakdown",
    "Counter",
    "Distribution",
    "Histogram",
    "Occupancy",
    "StatsRegistry",
    "Tracer",
    "Trail",
    "decode_metric",
]
