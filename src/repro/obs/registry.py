"""The hierarchical stats registry.

A :class:`StatsRegistry` maps dotted component paths
(``cmp.core0.l1d.misses``) to live metric objects.  Components publish
their metrics via ``register_into(registry, prefix)`` methods — the
registry holds the *same objects* the simulation mutates, so reading it is
always current and costs the hot path nothing.

Registries serialize with :meth:`StatsRegistry.to_dict` (a flat
``{path: metric_snapshot}`` dict with sorted keys) and re-combine with
:meth:`StatsRegistry.merge`, which accumulates same-path metrics
element-wise.  That pair is what lets a measurement campaign snapshot
per-point stats in worker processes and deterministically fold them into
one registry on the coordinator, independent of worker count or cache
hits.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Union

from ..errors import SimulationError
from .metrics import (Counter, Distribution, Histogram, Occupancy, Trail,
                      decode_metric)


class StatsRegistry:
    """Dotted-path -> metric mapping; the single source of run statistics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- registration ----------------------------------------------------

    def register(self, path: str, metric: Any) -> Any:
        """Publish a metric under a unique dotted path; returns it."""
        if not path:
            raise SimulationError("metric path must be non-empty")
        if path in self._metrics:
            raise SimulationError(f"metric path {path!r} already registered")
        if not hasattr(metric, "to_dict") or not hasattr(metric, "merge_from"):
            raise SimulationError(
                f"object registered at {path!r} is not a metric "
                f"(needs to_dict/merge_from): {type(metric).__name__}")
        self._metrics[path] = metric
        return metric

    def counter(self, path: str) -> Counter:
        """Get-or-create a :class:`Counter` at ``path``."""
        metric = self._metrics.get(path)
        if metric is None:
            return self.register(path, Counter())
        if not isinstance(metric, Counter):
            raise SimulationError(
                f"{path!r} holds a {type(metric).__name__}, not a Counter")
        return metric

    def histogram(self, path: str) -> Histogram:
        """Get-or-create a :class:`Histogram` at ``path``."""
        metric = self._metrics.get(path)
        if metric is None:
            return self.register(path, Histogram())
        if not isinstance(metric, Histogram):
            raise SimulationError(
                f"{path!r} holds a {type(metric).__name__}, not a Histogram")
        return metric

    def distribution(self, path: str) -> Distribution:
        """Get-or-create a :class:`Distribution` at ``path``."""
        metric = self._metrics.get(path)
        if metric is None:
            return self.register(path, Distribution())
        if not isinstance(metric, Distribution):
            raise SimulationError(
                f"{path!r} holds a {type(metric).__name__}, not a Distribution")
        return metric

    def occupancy(self, path: str, capacity: int = 0) -> Occupancy:
        """Get-or-create an :class:`Occupancy` at ``path``."""
        metric = self._metrics.get(path)
        if metric is None:
            return self.register(path, Occupancy(capacity))
        if not isinstance(metric, Occupancy):
            raise SimulationError(
                f"{path!r} holds a {type(metric).__name__}, not an Occupancy")
        return metric

    def trail(self, path: str, capacity: int = Trail.DEFAULT_CAPACITY,
              max_hops: int = Trail.DEFAULT_MAX_HOPS) -> Trail:
        """Get-or-create a :class:`Trail` at ``path``."""
        metric = self._metrics.get(path)
        if metric is None:
            return self.register(path, Trail(capacity, max_hops))
        if not isinstance(metric, Trail):
            raise SimulationError(
                f"{path!r} holds a {type(metric).__name__}, not a Trail")
        return metric

    def scope(self, prefix: str) -> "Scope":
        """A view that prepends ``prefix.`` to every registered path."""
        return Scope(self, prefix)

    # -- access ----------------------------------------------------------

    def get(self, path: str) -> Any:
        """The metric at ``path`` (raises KeyError if absent)."""
        return self._metrics[path]

    def paths(self) -> List[str]:
        """Every registered path, sorted."""
        return sorted(self._metrics)

    def __contains__(self, path: str) -> bool:
        return path in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self.paths())

    # -- serialization and merging ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready flat snapshot: ``{path: metric.to_dict()}``."""
        return {path: self._metrics[path].to_dict()
                for path in sorted(self._metrics)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StatsRegistry":
        """Rebuild a registry (of detached metric copies) from a snapshot."""
        registry = cls()
        for path in sorted(data):
            registry.register(path, decode_metric(data[path]))
        return registry

    def merge(self, other: Union["StatsRegistry", Dict[str, Any]]) -> None:
        """Accumulate another registry (or a ``to_dict`` snapshot).

        Paths present in both are merged element-wise (same metric kind
        required); new paths are adopted as independent copies.
        """
        if isinstance(other, StatsRegistry):
            snapshot = other.to_dict()
        else:
            snapshot = other
        for path in sorted(snapshot):
            incoming = decode_metric(snapshot[path])
            existing = self._metrics.get(path)
            if existing is None:
                self._metrics[path] = incoming
            elif type(existing).kind != type(incoming).kind:
                raise SimulationError(
                    f"cannot merge {type(incoming).kind} into "
                    f"{type(existing).kind} at {path!r}")
            else:
                existing.merge_from(incoming)


class Scope:
    """A prefix-bound view of a registry (``scope('mem').counter('loads')``
    registers ``mem.loads``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: StatsRegistry, prefix: str) -> None:
        if not prefix:
            raise SimulationError("scope prefix must be non-empty")
        self._registry = registry
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def _path(self, path: str) -> str:
        return f"{self._prefix}.{path}"

    def register(self, path: str, metric: Any) -> Any:
        """Register ``metric`` under ``{prefix}.{path}``; returns it."""
        return self._registry.register(self._path(path), metric)

    def counter(self, path: str) -> Counter:
        """Get-or-create a :class:`Counter` under this scope's prefix."""
        return self._registry.counter(self._path(path))

    def histogram(self, path: str) -> Histogram:
        """Get-or-create a :class:`Histogram` under this scope's prefix."""
        return self._registry.histogram(self._path(path))

    def distribution(self, path: str) -> Distribution:
        """Get-or-create a :class:`Distribution` under this scope's prefix."""
        return self._registry.distribution(self._path(path))

    def occupancy(self, path: str, capacity: int = 0) -> Occupancy:
        """Get-or-create an :class:`Occupancy` under this scope's prefix."""
        return self._registry.occupancy(self._path(path), capacity)

    def trail(self, path: str, capacity: int = Trail.DEFAULT_CAPACITY,
              max_hops: int = Trail.DEFAULT_MAX_HOPS) -> Trail:
        """Get-or-create a :class:`Trail` under this scope's prefix."""
        return self._registry.trail(self._path(path), capacity, max_hops)

    def scope(self, prefix: str) -> "Scope":
        """A nested scope: ``{this prefix}.{prefix}``."""
        return Scope(self._registry, self._path(prefix))
