"""Typed metric scalars: Counter, Histogram, Occupancy, Breakdown.

Every metric implements the same small protocol:

* ``kind`` — a class-level tag ("counter", "histogram", ...);
* ``to_dict()`` — a JSON-ready snapshot, decodable via
  :func:`decode_metric`;
* ``merge_from(other)`` — element-wise accumulation of another instance of
  the same kind, used when merging campaign-worker registries.

:class:`Counter` additionally speaks the numeric protocol (``+=``,
comparisons, division, formatting), so hot simulation loops keep the
natural ``stats.misses += 1`` idiom and derived quantities like miss
ratios are plain ``counter / counter`` expressions that yield ordinary
floats.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SimulationError

try:  # bulk-mode replay vectorizes bucket counting when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

Number = Union[int, float]


def _value_of(other: Any) -> Number:
    return other.value if isinstance(other, Counter) else other


class Counter:
    """A monotonically growing scalar (int or float cycles).

    The in-place operators mutate the counter; binary arithmetic and
    comparisons unwrap to plain numbers, so expressions like
    ``misses / accesses`` or ``max(1, uops)`` behave exactly as the raw
    ints they replaced.
    """

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, value: Number = 0) -> None:
        self.value = value

    def add(self, amount: Number = 1) -> None:
        """Increment by ``amount`` (named form of ``+=``)."""
        self.value += amount

    def record_max(self, value: Number) -> None:
        """Keep the running maximum instead of a running sum."""
        if value > self.value:
            self.value = value

    # -- metric protocol -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (decodable via :func:`decode_metric`)."""
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Counter":
        """Rebuild from a :meth:`to_dict` snapshot."""
        return cls(data["value"])

    def merge_from(self, other: "Counter") -> None:
        """Accumulate another counter's value into this one."""
        self.value += other.value

    # -- numeric protocol ------------------------------------------------

    def __iadd__(self, other: Any) -> "Counter":
        self.value += _value_of(other)
        return self

    def __isub__(self, other: Any) -> "Counter":
        self.value -= _value_of(other)
        return self

    def __add__(self, other: Any) -> Number:
        return self.value + _value_of(other)

    __radd__ = __add__

    def __sub__(self, other: Any) -> Number:
        return self.value - _value_of(other)

    def __rsub__(self, other: Any) -> Number:
        return _value_of(other) - self.value

    def __mul__(self, other: Any) -> Number:
        return self.value * _value_of(other)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> float:
        return self.value / _value_of(other)

    def __rtruediv__(self, other: Any) -> float:
        return _value_of(other) / self.value

    def __floordiv__(self, other: Any) -> Number:
        return self.value // _value_of(other)

    def __rfloordiv__(self, other: Any) -> Number:
        return _value_of(other) // self.value

    def __neg__(self) -> Number:
        return -self.value

    def __eq__(self, other: Any) -> bool:
        return self.value == _value_of(other)

    def __ne__(self, other: Any) -> bool:
        return self.value != _value_of(other)

    def __lt__(self, other: Any) -> bool:
        return self.value < _value_of(other)

    def __le__(self, other: Any) -> bool:
        return self.value <= _value_of(other)

    def __gt__(self, other: Any) -> bool:
        return self.value > _value_of(other)

    def __ge__(self, other: Any) -> bool:
        return self.value >= _value_of(other)

    def __int__(self) -> int:
        return int(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return self.value != 0

    def __str__(self) -> str:
        return str(self.value)

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    def __repr__(self) -> str:
        return f"Counter({self.value!r})"

    __hash__ = None  # mutable; comparing by value makes it unhashable


class Histogram:
    """A power-of-two-bucketed distribution (latencies, durations).

    Bucket ``b`` covers values in ``[2**(b-1), 2**b)``; bucket 0 holds
    everything at or below zero plus the open interval up to 1.
    """

    kind = "histogram"

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @staticmethod
    def bucket_of(value: Number) -> int:
        scaled = int(value)
        return 0 if scaled <= 0 else scaled.bit_length()

    def record(self, value: Number) -> None:
        """Add one observation to its bucket and the running moments."""
        bucket = self.bucket_of(value)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- metric protocol -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (string bucket keys, sorted)."""
        return {
            "kind": self.kind,
            "counts": {str(bucket): self.counts[bucket]
                       for bucket in sorted(self.counts)},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild from a :meth:`to_dict` snapshot."""
        histogram = cls()
        histogram.counts = {int(bucket): count
                            for bucket, count in data["counts"].items()}
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram

    def merge_from(self, other: "Histogram") -> None:
        """Combine bucket counts, totals and extrema element-wise."""
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"Histogram(count={self.count}, mean={self.mean:.3f}, "
                f"min={self.min}, max={self.max})")


class Distribution:
    """A log-linear-bucketed distribution with quantile extraction.

    The serving layer's latency metric.  :class:`Histogram`'s power-of-two
    buckets are too coarse for tail percentiles (a p99 estimate could be
    off by 2x), so this metric uses HDR-histogram-style buckets computed
    on a **fixed-point representation**: observations are scaled by
    ``2**FP_BITS`` and bucketed as integers, so fractional cycle counts
    keep their resolution instead of truncating to the bucket below
    (``int(0.75)`` is 0 — the old scheme reported every sub-cycle latency
    as 0.0).  Scaled values below ``2**(SUB_BITS + 1)`` are recorded
    exactly (values below ``2**(SUB_BITS + 1 - FP_BITS)`` cycles land in
    dedicated ``2**-FP_BITS``-cycle-wide buckets); larger values share a
    bucket with at most ``2**-SUB_BITS`` relative width.  Like every
    metric it is JSON-serializable and mergeable, so per-worker latency
    records fold deterministically into campaign totals; snapshots carry
    the scale and refuse to merge across incompatible bucket geometries.
    """

    kind = "distribution"

    #: Sub-bucket resolution: each power-of-two range of the *scaled*
    #: value is split into ``2**SUB_BITS`` linear buckets (relative
    #: error <= 1/2**SUB_BITS).
    SUB_BITS = 14

    #: Fixed-point fractional bits: values are scaled by ``2**FP_BITS``
    #: before bucketing, giving sub-integer observations real buckets.
    FP_BITS = 8

    #: The fixed-point scale factor (kept as a float so scaling is one
    #: multiply on the hot record() path).
    _FP_SCALE = float(1 << FP_BITS)

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @classmethod
    def bucket_of(cls, value: Number) -> int:
        """The bucket index covering ``value`` (monotone in ``value``)."""
        scaled = int(value * cls._FP_SCALE)  # fixed-point, truncating
        if scaled <= 0:
            return 0
        exponent = scaled.bit_length()
        if exponent <= cls.SUB_BITS + 1:
            return scaled  # small scaled values: exact
        shift = exponent - 1 - cls.SUB_BITS
        return (scaled >> shift) + (shift << cls.SUB_BITS)

    @classmethod
    def bucket_value(cls, bucket: int) -> float:
        """A representative (midpoint) value for one bucket."""
        subs = 1 << cls.SUB_BITS
        if bucket < 2 * subs:
            return bucket / cls._FP_SCALE
        shift = (bucket >> cls.SUB_BITS) - 1
        mantissa = bucket - (shift << cls.SUB_BITS)
        low = mantissa << shift
        high = (mantissa + 1) << shift
        return (low + high - 1) / 2.0 / cls._FP_SCALE

    def record(self, value: Number) -> None:
        """Add one observation to its bucket and the running moments."""
        bucket = self.bucket_of(value)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Sequence[Number]) -> None:
        """Add many observations, bit-identically to a :meth:`record` loop.

        Bucket counts are order-free integer increments and the extrema
        are order-free comparisons, so both vectorize; the running
        ``total`` is kept as a sequential left-fold over ``values`` in
        order, because float addition is not associative.  Falls back to
        the scalar loop when numpy is unavailable or a value leaves the
        range where the vectorized bit-length trick is exact (scaled
        magnitudes at or above ``2**53``, non-finite values).
        """
        n = len(values)
        if n == 0:
            return
        arr = None
        if _np is not None:
            arr = _np.asarray(values, dtype=_np.float64)
            if not (bool(_np.isfinite(arr).all())
                    and float(_np.abs(arr).max()) * self._FP_SCALE < 2.0 ** 53):
                arr = None
        if arr is None:
            for value in values:
                self.record(value)
            return
        scaled = (arr * self._FP_SCALE).astype(_np.int64)
        # bit_length, vectorized: the int64 -> float64 conversion is
        # exact below 2**53 (guarded above), and frexp's exponent of an
        # exactly represented positive integer is its bit length.
        exponent = _np.frexp(scaled.astype(_np.float64))[1]
        shift = exponent - 1 - self.SUB_BITS
        clamped = _np.where(shift > 0, shift, 0)
        buckets = _np.where(shift > 0,
                            (scaled >> clamped) + (clamped << self.SUB_BITS),
                            scaled)
        buckets = _np.where(scaled > 0, buckets, 0)
        ids, reps = _np.unique(buckets, return_counts=True)
        counts = self.counts
        for bucket, repeat in zip(ids.tolist(), reps.tolist()):
            counts[bucket] = counts.get(bucket, 0) + repeat
        self.count += n
        total = self.total
        for value in arr.tolist():  # float adds are order-sensitive
            total += value
        self.total = total
        low = float(arr.min())
        high = float(arr.max())
        if self.min is None or low < self.min:
            self.min = low
        if self.max is None or high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Discard every observation, in place.

        The windowing primitive: a controller (or live p99 monitor) that
        samples a rolling window records into one distribution, reads its
        quantiles, and resets it for the next window — no reallocation,
        no second windowing scheme.  A reset distribution is
        indistinguishable from a freshly constructed one.
        """
        self.counts.clear()
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def snapshot(self, *, reset: bool = False) -> "Distribution":
        """A detached copy of the current state; optionally reset after.

        ``snapshot(reset=True)`` is the windowed read: it hands back this
        window's observations as an independent distribution and clears
        the live one for the next window, atomically from the caller's
        point of view.
        """
        copy = Distribution()
        copy.counts = dict(self.counts)
        copy.count = self.count
        copy.total = self.total
        copy.min = self.min
        copy.max = self.max
        if reset:
            self.reset()
        return copy

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0.0 on no samples).

        Walks buckets in value order to the observation of rank
        ``ceil(q * count)`` and returns that bucket's representative
        value, clamped to the exactly tracked extrema — so ``quantile``
        is monotone in ``q``, bounded by min/max, and within one bucket
        width (``2**-SUB_BITS`` relative, or ``2**-FP_BITS`` cycles
        absolute for sub-integer values) of the true order statistic.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= rank:
                value = self.bucket_value(bucket)
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
        return float(self.max)  # pragma: no cover - rank <= count

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    # -- metric protocol -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (string bucket keys, sorted)."""
        return {
            "kind": self.kind,
            "scale": 1 << self.FP_BITS,
            "counts": {str(bucket): self.counts[bucket]
                       for bucket in sorted(self.counts)},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Distribution":
        """Rebuild from a :meth:`to_dict` snapshot.

        Snapshots carry the fixed-point ``scale`` their bucket indices
        were computed under (older snapshots carried none, i.e. scale 1);
        decoding one with a different geometry would silently remap every
        bucket, so it is rejected instead.
        """
        scale = int(data.get("scale", 1))
        if scale != 1 << cls.FP_BITS:
            raise SimulationError(
                f"distribution snapshot uses fixed-point scale {scale}, "
                f"this build buckets at scale {1 << cls.FP_BITS}")
        distribution = cls()
        distribution.counts = {int(bucket): count
                               for bucket, count in data["counts"].items()}
        distribution.count = data["count"]
        distribution.total = data["total"]
        distribution.min = data["min"]
        distribution.max = data["max"]
        return distribution

    def merge_from(self, other: "Distribution") -> None:
        """Combine bucket counts, totals and extrema element-wise."""
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"Distribution(count={self.count}, mean={self.mean:.3f}, "
                f"p99={self.p99:.3f}, min={self.min}, max={self.max})")


class Occupancy:
    """Peak and mean occupancy of a bounded resource (MSHRs, queues).

    Call :meth:`record` with the instantaneous level whenever it changes;
    the metric keeps the peak and a sample-weighted mean (not a
    time-weighted one: pool releases land out of simulated-time order, so
    samples are the honest granularity).
    """

    kind = "occupancy"

    __slots__ = ("capacity", "peak", "total", "samples")

    def __init__(self, capacity: int = 0) -> None:
        self.capacity = capacity
        self.peak = 0
        self.total = 0
        self.samples = 0

    def record(self, level: int) -> None:
        """Sample the instantaneous level (call on every change)."""
        self.samples += 1
        self.total += level
        if level > self.peak:
            self.peak = level

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    # -- metric protocol -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (decodable via :func:`decode_metric`)."""
        return {"kind": self.kind, "capacity": self.capacity,
                "peak": self.peak, "total": self.total,
                "samples": self.samples}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Occupancy":
        """Rebuild from a :meth:`to_dict` snapshot."""
        occupancy = cls(data["capacity"])
        occupancy.peak = data["peak"]
        occupancy.total = data["total"]
        occupancy.samples = data["samples"]
        return occupancy

    def merge_from(self, other: "Occupancy") -> None:
        """Take the max capacity/peak, sum the sample totals."""
        self.capacity = max(self.capacity, other.capacity)
        self.peak = max(self.peak, other.peak)
        self.total += other.total
        self.samples += other.samples

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Occupancy):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"Occupancy(capacity={self.capacity}, peak={self.peak}, "
                f"mean={self.mean:.3f})")


class Breakdown:
    """A fixed set of named float categories summing to a total.

    Subclasses declare ``CATEGORIES`` (and may back them with ``__slots__``
    attributes for hot-loop accumulation, as
    :class:`repro.widx.unit.UnitCycleBreakdown` does); the base class is
    dict-backed for generic/decoded breakdowns.  All derived operations
    (``total``, ``merged``, ``scaled``) iterate categories in declaration
    order, keeping float summation order — and therefore report bits —
    stable.
    """

    kind = "breakdown"

    CATEGORIES: Tuple[str, ...] = ()

    __slots__ = ("_values",)

    def __init__(self, **values: Number) -> None:
        categories = self.CATEGORIES or tuple(values)
        self._values: Dict[str, float] = dict.fromkeys(categories, 0.0)
        for category, value in values.items():
            if category not in self._values:
                raise SimulationError(
                    f"{type(self).__name__} has no category {category!r}")
            self._values[category] = float(value)

    @property
    def categories(self) -> Tuple[str, ...]:
        return self.CATEGORIES or tuple(self._values)

    def get(self, category: str) -> float:
        """The value of one category (typed error on an unknown name)."""
        try:
            return self._values[category]
        except KeyError:
            raise SimulationError(
                f"{type(self).__name__} has no category {category!r}"
            ) from None

    def _set(self, category: str, value: float) -> None:
        if category not in self._values:
            raise SimulationError(
                f"{type(self).__name__} has no category {category!r}")
        self._values[category] = value

    def add(self, category: str, amount: Number) -> None:
        """Accumulate ``amount`` into one category."""
        self._set(category, self.get(category) + amount)

    @property
    def total(self) -> float:
        total = 0.0
        for category in self.categories:
            total += self.get(category)
        return total

    def merged(self, other: "Breakdown") -> "Breakdown":
        """Element-wise sum with another breakdown (same categories)."""
        return type(self)(**{category: self.get(category) + other.get(category)
                             for category in self.categories})

    def scaled(self, factor: float) -> "Breakdown":
        """Element-wise multiply by a factor."""
        return type(self)(**{category: self.get(category) * factor
                             for category in self.categories})

    def as_values(self) -> Dict[str, float]:
        """Plain ``{category: value}`` dict in declaration order."""
        return {category: self.get(category) for category in self.categories}

    # -- metric protocol -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (decodable via :func:`decode_metric`)."""
        return {"kind": self.kind, "values": self.as_values()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Breakdown":
        """Rebuild from a :meth:`to_dict` snapshot."""
        return cls(**data["values"])

    def merge_from(self, other: "Breakdown") -> None:
        """Accumulate another breakdown's categories element-wise."""
        for category in other.categories:
            self.add(category, other.get(category))

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Breakdown):
            return NotImplemented
        return (self.categories == other.categories
                and self.as_values() == other.as_values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{category}={self.get(category)!r}"
                          for category in self.categories)
        return f"{type(self).__name__}({inner})"


class Trail:
    """A bounded ring of per-request traversal trails.

    One *entry* is one walker invocation: which walker served it, the
    queue item (probe key operands) it carried, when it started and
    finished, and the sequence of memory *hops* the traversal took —
    ``(cycle, address, cache level)`` per pointer chase, the provenance
    PULSE-style adaptive placement needs.  Capture is opt-in and doubly
    bounded: the ring keeps the last ``capacity`` entries and each entry
    keeps at most ``max_hops`` hops (overflow is counted, never stored),
    so a trail-enabled run cannot grow without bound.

    Like every metric it snapshots to JSON and merges: merging
    concatenates entries in order (the ring bound still applies) and
    sums the overflow counters, so per-worker trails fold into campaign
    registries like any counter.
    """

    kind = "trail"

    DEFAULT_CAPACITY = 256
    DEFAULT_MAX_HOPS = 64

    __slots__ = ("capacity", "max_hops", "entries", "recorded",
                 "dropped_hops")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 max_hops: int = DEFAULT_MAX_HOPS) -> None:
        if capacity < 1:
            raise SimulationError(
                f"trail capacity must be >= 1, got {capacity}")
        if max_hops < 1:
            raise SimulationError(
                f"trail max_hops must be >= 1, got {max_hops}")
        self.capacity = capacity
        self.max_hops = max_hops
        self.entries: List[Dict[str, Any]] = []
        self.recorded = 0       # entries ever recorded (ring may drop old)
        self.dropped_hops = 0   # hops past max_hops, counted not stored

    def record(self, walker: str, key: Sequence[int], start: Number,
               end: Number, hops: Sequence[Tuple[Number, int, str]],
               dropped_hops: int = 0) -> None:
        """Append one finished traversal to the ring."""
        overflow = max(0, len(hops) - self.max_hops)
        self.dropped_hops += dropped_hops + overflow
        self.entries.append({
            "walker": walker,
            "key": [int(k) for k in key],
            "start": float(start),
            "end": float(end),
            "hops": [[float(ts), int(addr), str(level)]
                     for ts, addr, level in hops[:self.max_hops]],
            "dropped": int(dropped_hops + overflow),
        })
        self.recorded += 1
        if len(self.entries) > self.capacity:
            del self.entries[:len(self.entries) - self.capacity]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def dropped_entries(self) -> int:
        """Entries pushed out of the ring by newer ones."""
        return self.recorded - len(self.entries)

    def feed_tracer(self, tracer, prefix: str = "trail") -> None:
        """Export every entry as Chrome-trace spans on ``tracer``.

        Each walker gets a ``{prefix}.{walker}`` track; an entry becomes
        an invocation span plus one span per hop, named by the cache
        level that serviced it and lasting until the next hop (or the
        traversal's end), so the trace shows *where in the hierarchy*
        each traversal spent its time.
        """
        for entry in self.entries:
            track = f"{prefix}.{entry['walker']}"
            name = "probe:" + ",".join(str(k) for k in entry["key"])
            tracer.complete(track, name, entry["start"],
                            entry["end"] - entry["start"])
            hops = entry["hops"]
            for i, (ts, addr, level) in enumerate(hops):
                until = hops[i + 1][0] if i + 1 < len(hops) else entry["end"]
                tracer.complete(track, f"{level}@{addr:#x}", ts,
                                max(0.0, until - ts))

    # -- metric protocol -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (decodable via :func:`decode_metric`)."""
        return {
            "kind": self.kind,
            "capacity": self.capacity,
            "max_hops": self.max_hops,
            "recorded": self.recorded,
            "dropped_hops": self.dropped_hops,
            "entries": [dict(entry, hops=[list(hop) for hop in entry["hops"]])
                        for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trail":
        """Rebuild from a :meth:`to_dict` snapshot."""
        trail = cls(data["capacity"], data["max_hops"])
        trail.recorded = data["recorded"]
        trail.dropped_hops = data["dropped_hops"]
        trail.entries = [
            dict(entry, hops=[list(hop) for hop in entry["hops"]])
            for entry in data["entries"]]
        return trail

    def merge_from(self, other: "Trail") -> None:
        """Concatenate another trail's entries (ring bound still applies)."""
        self.capacity = max(self.capacity, other.capacity)
        self.max_hops = max(self.max_hops, other.max_hops)
        self.recorded += other.recorded
        self.dropped_hops += other.dropped_hops
        self.entries.extend(
            dict(entry, hops=[list(hop) for hop in entry["hops"]])
            for entry in other.entries)
        if len(self.entries) > self.capacity:
            del self.entries[:len(self.entries) - self.capacity]

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Trail):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"Trail(capacity={self.capacity}, entries={len(self.entries)}, "
                f"recorded={self.recorded}, dropped_hops={self.dropped_hops})")


_METRIC_TYPES = {cls.kind: cls for cls in
                 (Counter, Histogram, Distribution, Occupancy, Breakdown,
                  Trail)}


def decode_metric(data: Dict[str, Any]):
    """Rebuild a metric from its :meth:`to_dict` snapshot."""
    try:
        metric_type = _METRIC_TYPES[data["kind"]]
    except (KeyError, TypeError) as exc:
        raise SimulationError(f"cannot decode metric snapshot: {exc}") from exc
    return metric_type.from_dict(data)
