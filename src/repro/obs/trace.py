"""Low-overhead interval tracer with Chrome trace-event export.

Components record three things on named *tracks* (one track per unit,
queue or pool — e.g. ``widx.walker0``):

* spans — ``begin(track, name, ts)`` / ``end(track, name, ts)`` pairs (or
  one-shot :meth:`Tracer.complete`) marking how long an activity ran;
* samples — ``sample(track, series, ts, value)`` instantaneous occupancy
  readings rendered as counter plots.

Timestamps are simulation cycles.  :meth:`Tracer.to_chrome` converts the
record into the Chrome trace-event JSON array format (``X`` complete
events, ``C`` counter events, ``M`` thread-name metadata) with cycles
reported as microseconds, so the file loads directly in
``about:tracing`` or https://ui.perfetto.dev.

The tracer is optional everywhere: components hold ``tracer = None`` by
default and the hot paths guard with a single ``is not None`` test, so an
untraced run pays one branch per instrumented site.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from ..errors import TraceError

Number = float


class Tracer:
    """Records spans and occupancy samples; exports Chrome trace JSON."""

    def __init__(self) -> None:
        # Finished spans: (track, name, start, duration).
        self._spans: List[Tuple[str, str, Number, Number]] = []
        # Counter samples: (track, series, ts, value).
        self._samples: List[Tuple[str, str, Number, Number]] = []
        # Per-track stacks of (name, start) for open spans.
        self._open: Dict[str, List[Tuple[str, Number]]] = {}

    # -- recording -------------------------------------------------------

    def begin(self, track: str, name: str, ts: Number) -> None:
        """Open a span named ``name`` on ``track`` at cycle ``ts``."""
        self._open.setdefault(track, []).append((name, ts))

    def end(self, track: str, name: str, ts: Number) -> None:
        """Close the innermost open span on ``track`` (must match ``name``)."""
        stack = self._open.get(track)
        if not stack:
            raise TraceError(
                f"end({name!r}) on track {track!r} with no open span")
        open_name, start = stack.pop()
        if open_name != name:
            raise TraceError(
                f"end({name!r}) on track {track!r} does not match open "
                f"span {open_name!r}")
        if ts < start:
            raise TraceError(
                f"span {name!r} on track {track!r} ends at {ts} before its "
                f"start {start}")
        self._spans.append((track, name, start, ts - start))

    def complete(self, track: str, name: str, start: Number,
                 duration: Number) -> None:
        """Record a finished span in one call."""
        if duration < 0:
            raise TraceError(
                f"span {name!r} on track {track!r} has negative duration "
                f"{duration}")
        self._spans.append((track, name, start, duration))

    def sample(self, track: str, series: str, ts: Number,
               value: Number) -> None:
        """Record an instantaneous level (queue depth, pool occupancy)."""
        self._samples.append((track, series, ts, value))

    def close_all(self, ts: Number) -> None:
        """Force-close every open span at ``ts``.

        For abnormal termination (an aborted offload unwinds units
        mid-invocation): the truncated spans still export instead of
        poisoning :meth:`to_chrome`.
        """
        for track in sorted(self._open):
            stack = self._open[track]
            while stack:
                name, start = stack.pop()
                self._spans.append((track, name, start,
                                    max(0.0, ts - start)))

    # -- inspection ------------------------------------------------------

    def open_spans(self) -> List[Tuple[str, str, Number]]:
        """Currently unclosed spans as (track, name, start) tuples."""
        return [(track, name, start)
                for track, stack in sorted(self._open.items())
                for name, start in stack]

    @property
    def num_events(self) -> int:
        return len(self._spans) + len(self._samples)

    # -- export ----------------------------------------------------------

    def to_chrome(self) -> List[Dict[str, Any]]:
        """The record as a Chrome trace-event JSON array (list of dicts).

        Tracks become threads of a single process, named via metadata
        events and numbered in sorted-track order so output is
        deterministic.  Raises :class:`TraceError` if any span is still
        open — an unclosed span means the instrumented component never
        finished its activity.
        """
        if self._open and any(self._open.values()):
            leaks = ", ".join(f"{track}:{name}@{start}"
                              for track, name, start in self.open_spans())
            raise TraceError(f"cannot export trace with open spans: {leaks}")
        tracks = sorted({track for track, _, _, _ in self._spans}
                        | {track for track, _, _, _ in self._samples})
        tids = {track: tid for tid, track in enumerate(tracks)}
        events: List[Dict[str, Any]] = []
        for track in tracks:
            events.append({
                "ph": "M", "pid": 0, "tid": tids[track],
                "name": "thread_name", "args": {"name": track},
            })
        for track, name, start, duration in sorted(self._spans):
            events.append({
                "ph": "X", "pid": 0, "tid": tids[track],
                "name": name, "ts": start, "dur": duration,
            })
        for track, series, ts, value in sorted(self._samples):
            events.append({
                "ph": "C", "pid": 0, "tid": tids[track],
                "name": series, "ts": ts, "args": {series: value},
            })
        return events

    def write(self, path: str) -> None:
        """Write the Chrome trace-event JSON array to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")
