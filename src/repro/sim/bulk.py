"""Bulk-mode simulation: array replay of independent probe streams.

The discrete-event core pays per-event dispatch cost for work that is —
on the fig8-point and fig-serve paths — overwhelmingly *uncontended*:
thousands of independent probes or requests whose interactions reduce to
a handful of analytic recurrences.  Bulk mode exploits that:

* probe *plans* (address streams, match/mispredict flags) are computed in
  batch by :mod:`repro.mem.bulk` instead of regenerating uop objects per
  probe;
* the core timing models are replayed as specialized scalar recurrences
  over those plans — statement-for-statement mirrors of
  :class:`~repro.cpu.ooo.OutOfOrderCore` / :class:`~repro.cpu.inorder.InOrderCore`
  ``execute``, with local-variable state instead of per-uop objects, and
  the per-uop bookkeeping inlined straight into the replay loops;
* memory accesses go through :func:`repro.mem.bulk.make_fast_load`, which
  inlines the full hierarchy access path against the live cache/TLB
  objects.

Whenever a genuinely contended resource is in play (Widx inter-unit
queues, shared-LLC multi-core runs, tied event schedules in the serving
layer), bulk mode raises :class:`BulkFallback` and the caller re-runs on
the reference DES twin.  Equivalence is proven differentially: the DES
path is the reference, and the tests in ``tests/sim`` / ``tests/serve``
assert bit-identical results (timings, stats registries, golden reports).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SystemConfig, DEFAULT_CONFIG
from ..db.column import Column
from ..db.hashtable import HashIndex
from ..errors import SimulationError
from ..mem.bulk import build_probe_plans, make_fast_load
from ..mem.hierarchy import MemoryHierarchy
from ..obs import Counter, StatsRegistry
from .sampling import BatchStats


class BulkFallback(SimulationError):
    """Bulk mode cannot reproduce this run bit-identically; use the DES.

    Raised when a contended resource or an exactly-tied event schedule
    makes the array replay ambiguous.  Callers catch it and re-run the
    unchanged discrete-event path; it never signals a user error.
    """


def bulk_measure_indexing(index: HashIndex, probe_keys: Column, *,
                          core: str = "ooo",
                          config: SystemConfig = DEFAULT_CONFIG,
                          warmup_probes: int = 512,
                          measure_probes: Optional[int] = None,
                          rows: Optional[Sequence[int]] = None,
                          batch_size: int = 128,
                          warm_index: bool = True):
    """Bulk twin of :func:`repro.cpu.timing.measure_indexing`.

    Same signature, same :class:`~repro.cpu.timing.CoreTimingResult`
    contract, bit-identical output — produced by replaying batch-built
    probe plans through scalar recurrences instead of streaming uop
    objects through the core models.
    """
    # Imported here: cpu.timing imports sim.sampling; keep the layering
    # acyclic by resolving the result type and trace constants lazily.
    from ..cpu.timing import CoreTimingResult, warm_hash_index
    from ..cpu.trace import HOST_OPS_PER_HASH_STEP

    memory = MemoryHierarchy(config)
    if warm_index:
        warm_hash_index(memory, index)
    if core == "ooo":
        core_config = config.ooo
    elif core == "inorder":
        core_config = config.inorder
    else:
        raise ValueError(f"unknown core model {core!r} (want 'ooo' or 'inorder')")

    total_rows = len(probe_keys.values)
    if rows is None:
        limit = total_rows if measure_probes is None else min(
            total_rows, warmup_probes + measure_probes)
        rows = range(limit)
    rows = list(rows)
    if len(rows) <= warmup_probes:
        raise ValueError(
            f"need more than {warmup_probes} probes to measure after warm-up")

    plans = build_probe_plans(index, probe_keys, rows)
    hash_alus = len(index.hash_spec.steps) * HOST_OPS_PER_HASH_STEP + 3
    fast_load, flush_loads = make_fast_load(memory)
    stats = BatchStats(batch_size=batch_size)

    if core == "ooo":
        replay = _replay_ooo
    else:
        replay = _replay_inorder
    (completion, measure_start, measured_tuples, uops_executed, loads_issued,
     mem_stall, tlb_stall) = replay(plans, core_config, memory, fast_load,
                                    hash_alus, warmup_probes, stats)
    flush_loads()

    total = completion - measure_start
    mean, half = stats.interval()
    registry = StatsRegistry()
    # The same paths OutOfOrderCore/InOrderCore.register_into publishes.
    prefix = f"cpu.{core}"
    registry.register(f"{prefix}.uops_executed", Counter(uops_executed))
    registry.register(f"{prefix}.loads_issued", Counter(loads_issued))
    registry.register(f"{prefix}.mem_stall_cycles", Counter(mem_stall))
    registry.register(f"{prefix}.tlb_stall_cycles", Counter(tlb_stall))
    memory.register_into(registry, "mem")
    return CoreTimingResult(
        core=core,
        cycles_per_tuple=total / measured_tuples,
        ci_half_width=half,
        tuples=measured_tuples,
        total_cycles=total,
        mem_stall_per_tuple=mem_stall / max(1, uops_executed)
        * (uops_executed / max(1, measured_tuples + warmup_probes)),
        tlb_stall_per_tuple=tlb_stall / max(1, measured_tuples + warmup_probes),
        l1_miss_ratio=memory.stats.l1d.miss_ratio,
        llc_miss_ratio=memory.stats.llc.miss_ratio,
        stats=registry.to_dict(),
    )


def _replay_ooo(plans, cfg, memory, fast_load, hash_alus, warmup, stats):
    """Scalar replay of :meth:`OutOfOrderCore.execute` over probe plans.

    State is exactly the core model's: dispatch time + per-cycle count,
    front-end stall horizon, and — because every dependency is intra-probe
    and the ROB gate only ever reads the retire horizon ``rob_entries``
    positions back — a ring buffer of horizons instead of the full
    ``_all_done``/``_horizons`` lists.  The ring starts at 0.0, so the
    gate test is a no-op until the ROB has filled once and the explicit
    warm-up guard the core model needs is unnecessary here.  Each uop's
    dispatch/retire bookkeeping is inlined into the loop body; the
    executed-uop and issued-load totals come from the per-plan counts.
    """
    width = cfg.issue_width
    rob = cfg.rob_entries
    trap = memory.cfg.tlb.trap_cycles
    penalty = 20  # OutOfOrderCore's default mispredict_penalty
    dt = 0.0      # dispatch_time
    dc = 0        # uops dispatched in the current cycle
    F = 0.0       # front-end stall horizon
    H = 0.0       # retire horizon
    ring = [0.0] * rob
    rix = 0
    uops = 0
    loads = 0
    mem_stall = 0.0
    tlb_stall = 0.0
    measured = 0
    measure_start = 0.0
    add_sample = stats.add
    hash_range = range(hash_alus)

    for probe_number, plan in enumerate(plans):
        before = H
        key_addr, nodes, empty_addr, exit_mispredicts, p_uops, p_loads = plan
        uops += hash_alus + p_uops
        loads += p_loads

        # -- key load (no dependency) ---------------------------------
        if dt < F:
            dt = F
            dc = 0
        if dc >= width:
            dt += 1.0
            dc = 0
        dc += 1
        gate = ring[rix]
        if gate > dt:
            dt = gate
            dc = 1
        ready = dt
        complete, stall, _l1 = fast_load(key_addr, ready)
        if stall > 0.0:
            done = complete + trap
            if done > F:
                F = done
            tlb_stall += stall
        else:
            done = complete
        lost = done - ready - 1.0
        if lost > 0.0:
            mem_stall += lost
        if done > H:
            H = done
        ring[rix] = H
        rix += 1
        if rix == rob:
            rix = 0
        key_done = done

        # -- serial hash-ALU chain ------------------------------------
        dep = key_done
        for _ in hash_range:
            if dt < F:
                dt = F
                dc = 0
            if dc >= width:
                dt += 1.0
                dc = 0
            dc += 1
            gate = ring[rix]
            if gate > dt:
                dt = gate
                dc = 1
            dep = (dt if dt > dep else dep) + 1
            if dep > H:
                H = dep
            ring[rix] = H
            rix += 1
            if rix == rob:
                rix = 0

        if nodes:
            prev = dep
            last = len(nodes) - 1
            for i, (slot_addr, ind_addr, payload_addr, next_addr) \
                    in enumerate(nodes):
                # -- slot load, depends on the previous node pointer --
                if dt < F:
                    dt = F
                    dc = 0
                if dc >= width:
                    dt += 1.0
                    dc = 0
                dc += 1
                gate = ring[rix]
                if gate > dt:
                    dt = gate
                    dc = 1
                ready = dt if dt > prev else prev
                complete, stall, _l1 = fast_load(slot_addr, ready)
                if stall > 0.0:
                    done = complete + trap
                    if done > F:
                        F = done
                    tlb_stall += stall
                else:
                    done = complete
                lost = done - ready - 1.0
                if lost > 0.0:
                    mem_stall += lost
                if done > H:
                    H = done
                ring[rix] = H
                rix += 1
                if rix == rob:
                    rix = 0
                cmp_dep = done

                if ind_addr is not None:
                    # -- address ALU feeding the indirect key load ----
                    if dt < F:
                        dt = F
                        dc = 0
                    if dc >= width:
                        dt += 1.0
                        dc = 0
                    dc += 1
                    gate = ring[rix]
                    if gate > dt:
                        dt = gate
                        dc = 1
                    done = (dt if dt > cmp_dep else cmp_dep) + 1
                    if done > H:
                        H = done
                    ring[rix] = H
                    rix += 1
                    if rix == rob:
                        rix = 0
                    # -- indirect key load ----------------------------
                    if dt < F:
                        dt = F
                        dc = 0
                    if dc >= width:
                        dt += 1.0
                        dc = 0
                    dc += 1
                    gate = ring[rix]
                    if gate > dt:
                        dt = gate
                        dc = 1
                    ready = dt if dt > done else done
                    complete, stall, _l1 = fast_load(ind_addr, ready)
                    if stall > 0.0:
                        done = complete + trap
                        if done > F:
                            F = done
                        tlb_stall += stall
                    else:
                        done = complete
                    lost = done - ready - 1.0
                    if lost > 0.0:
                        mem_stall += lost
                    if done > H:
                        H = done
                    ring[rix] = H
                    rix += 1
                    if rix == rob:
                        rix = 0
                    cmp_dep = done

                # -- compare ALU (slot/indirect value vs probe key) ---
                if dt < F:
                    dt = F
                    dc = 0
                if dc >= width:
                    dt += 1.0
                    dc = 0
                dc += 1
                gate = ring[rix]
                if gate > dt:
                    dt = gate
                    dc = 1
                ready = dt
                if cmp_dep > ready:
                    ready = cmp_dep
                if key_done > ready:
                    ready = key_done
                compare_done = ready + 1
                if compare_done > H:
                    H = compare_done
                ring[rix] = H
                rix += 1
                if rix == rob:
                    rix = 0

                # -- match branch (predicted) -------------------------
                if dt < F:
                    dt = F
                    dc = 0
                if dc >= width:
                    dt += 1.0
                    dc = 0
                dc += 1
                gate = ring[rix]
                if gate > dt:
                    dt = gate
                    dc = 1
                done = (dt if dt > compare_done else compare_done) + 1
                if done > H:
                    H = done
                ring[rix] = H
                rix += 1
                if rix == rob:
                    rix = 0

                if payload_addr is not None:
                    # -- payload load on a match ----------------------
                    if dt < F:
                        dt = F
                        dc = 0
                    if dc >= width:
                        dt += 1.0
                        dc = 0
                    dc += 1
                    gate = ring[rix]
                    if gate > dt:
                        dt = gate
                        dc = 1
                    ready = dt if dt > compare_done else compare_done
                    complete, stall, _l1 = fast_load(payload_addr, ready)
                    if stall > 0.0:
                        done = complete + trap
                        if done > F:
                            F = done
                        tlb_stall += stall
                    else:
                        done = complete
                    lost = done - ready - 1.0
                    if lost > 0.0:
                        mem_stall += lost
                    if done > H:
                        H = done
                    ring[rix] = H
                    rix += 1
                    if rix == rob:
                        rix = 0

                # -- next-pointer load --------------------------------
                if dt < F:
                    dt = F
                    dc = 0
                if dc >= width:
                    dt += 1.0
                    dc = 0
                dc += 1
                gate = ring[rix]
                if gate > dt:
                    dt = gate
                    dc = 1
                ready = dt if dt > prev else prev
                complete, stall, _l1 = fast_load(next_addr, ready)
                if stall > 0.0:
                    done = complete + trap
                    if done > F:
                        F = done
                    tlb_stall += stall
                else:
                    done = complete
                lost = done - ready - 1.0
                if lost > 0.0:
                    mem_stall += lost
                if done > H:
                    H = done
                ring[rix] = H
                rix += 1
                if rix == rob:
                    rix = 0
                prev = done

                # -- loop-exit branch ---------------------------------
                if dt < F:
                    dt = F
                    dc = 0
                if dc >= width:
                    dt += 1.0
                    dc = 0
                dc += 1
                gate = ring[rix]
                if gate > dt:
                    dt = gate
                    dc = 1
                done = (dt if dt > prev else prev) + 1
                if exit_mispredicts and i == last:
                    resume = done + penalty
                    if resume > F:
                        F = resume
                if done > H:
                    H = done
                ring[rix] = H
                rix += 1
                if rix == rob:
                    rix = 0
        else:
            # -- empty bucket: header load + check + exit branch ------
            if dt < F:
                dt = F
                dc = 0
            if dc >= width:
                dt += 1.0
                dc = 0
            dc += 1
            gate = ring[rix]
            if gate > dt:
                dt = gate
                dc = 1
            ready = dt if dt > dep else dep
            complete, stall, _l1 = fast_load(empty_addr, ready)
            if stall > 0.0:
                done = complete + trap
                if done > F:
                    F = done
                tlb_stall += stall
            else:
                done = complete
            lost = done - ready - 1.0
            if lost > 0.0:
                mem_stall += lost
            if done > H:
                H = done
            ring[rix] = H
            rix += 1
            if rix == rob:
                rix = 0
            # sentinel-check ALU
            if dt < F:
                dt = F
                dc = 0
            if dc >= width:
                dt += 1.0
                dc = 0
            dc += 1
            gate = ring[rix]
            if gate > dt:
                dt = gate
                dc = 1
            done = (dt if dt > done else done) + 1
            if done > H:
                H = done
            ring[rix] = H
            rix += 1
            if rix == rob:
                rix = 0
            # exit branch
            if dt < F:
                dt = F
                dc = 0
            if dc >= width:
                dt += 1.0
                dc = 0
            dc += 1
            gate = ring[rix]
            if gate > dt:
                dt = gate
                dc = 1
            branch_done = (dt if dt > done else done) + 1
            if exit_mispredicts:
                resume = branch_done + penalty
                if resume > F:
                    F = resume
            if branch_done > H:
                H = branch_done
            ring[rix] = H
            rix += 1
            if rix == rob:
                rix = 0

        # -- trailer: loop-counter ALU + back-edge branch -------------
        if dt < F:
            dt = F
            dc = 0
        if dc >= width:
            dt += 1.0
            dc = 0
        dc += 1
        gate = ring[rix]
        if gate > dt:
            dt = gate
            dc = 1
        done = dt + 1
        if done > H:
            H = done
        ring[rix] = H
        rix += 1
        if rix == rob:
            rix = 0
        if dt < F:
            dt = F
            dc = 0
        if dc >= width:
            dt += 1.0
            dc = 0
        dc += 1
        gate = ring[rix]
        if gate > dt:
            dt = gate
            dc = 1
        branch_done = (dt if dt > done else done) + 1
        if branch_done > H:
            H = branch_done
        ring[rix] = H
        rix += 1
        if rix == rob:
            rix = 0

        if probe_number == warmup - 1:
            measure_start = H
        elif probe_number >= warmup:
            add_sample(H - before)
            measured += 1

    return (H, measure_start, measured, uops, loads, mem_stall, tlb_stall)


def _replay_inorder(plans, cfg, memory, fast_load, hash_alus, warmup, stats):
    """Scalar replay of :meth:`InOrderCore.execute` over probe plans.

    Mirrors the A8-style restrictions exactly: one memory op per cycle,
    blocking misses serialized through ``last_miss`` (gated on live L1
    residency, checked against the same tag array the loads update), and
    13-cycle mispredict flushes.  As in :func:`_replay_ooo` the per-uop
    bookkeeping is inlined into the loop body and the executed-uop totals
    come from the per-plan counts.
    """
    width = cfg.issue_width
    trap = memory.cfg.tlb.trap_cycles
    penalty = 13  # InOrderCore's default mispredict_penalty
    load_use = 1  # InOrderCore's default load_use_penalty
    l1_entries = memory.l1d.array._entries
    block_bits = memory.l1d.array.block_bits
    it = 0.0      # issue_time
    ic = 0        # uops issued in the current cycle
    last_mem = -1.0
    last_miss = 0.0
    completion = 0.0
    uops = 0
    loads = 0
    mem_stall = 0.0
    tlb_stall = 0.0
    measured = 0
    measure_start = 0.0
    add_sample = stats.add
    hash_range = range(hash_alus)

    for probe_number, plan in enumerate(plans):
        before = completion
        key_addr, nodes, empty_addr, exit_mispredicts, p_uops, p_loads = plan
        uops += hash_alus + p_uops
        loads += p_loads

        # -- key load (no dependency) ---------------------------------
        if ic >= width:
            it += 1.0
            ic = 0
        ic += 1
        ready = it
        if ready <= last_mem:
            ready = last_mem + 1.0
            if ready > it:
                it = ready
                ic = 1
        last_mem = ready
        start = ready
        if key_addr >> block_bits not in l1_entries:
            if last_miss > start:
                start = last_miss
        complete, stall, is_l1 = fast_load(key_addr, start)
        done = complete + load_use
        if stall > 0:
            done += trap
            if done > it:
                it = done
            ic = 0
            tlb_stall += stall
        if not is_l1:
            last_miss = done
            if done > it:
                it = done
            ic = 0
        lost = done - ready - 1.0
        if lost > 0.0:
            mem_stall += lost
        if done > completion:
            completion = done
        key_done = done

        # -- serial hash-ALU chain ------------------------------------
        dep = key_done
        for _ in hash_range:
            if ic >= width:
                it += 1.0
                ic = 0
            ic += 1
            ready = it
            if dep > ready:
                ready = dep
                it = ready
                ic = 1
            dep = ready + 1
            if dep > completion:
                completion = dep

        if nodes:
            prev = dep
            last = len(nodes) - 1
            for i, (slot_addr, ind_addr, payload_addr, next_addr) \
                    in enumerate(nodes):
                # -- slot load ----------------------------------------
                if ic >= width:
                    it += 1.0
                    ic = 0
                ic += 1
                ready = it
                if prev > ready:
                    ready = prev
                    it = ready
                    ic = 1
                if ready <= last_mem:
                    ready = last_mem + 1.0
                    if ready > it:
                        it = ready
                        ic = 1
                last_mem = ready
                start = ready
                if slot_addr >> block_bits not in l1_entries:
                    if last_miss > start:
                        start = last_miss
                complete, stall, is_l1 = fast_load(slot_addr, start)
                done = complete + load_use
                if stall > 0:
                    done += trap
                    if done > it:
                        it = done
                    ic = 0
                    tlb_stall += stall
                if not is_l1:
                    last_miss = done
                    if done > it:
                        it = done
                    ic = 0
                lost = done - ready - 1.0
                if lost > 0.0:
                    mem_stall += lost
                if done > completion:
                    completion = done
                cmp_dep = done

                if ind_addr is not None:
                    # -- address ALU ----------------------------------
                    if ic >= width:
                        it += 1.0
                        ic = 0
                    ic += 1
                    ready = it
                    if cmp_dep > ready:
                        ready = cmp_dep
                        it = ready
                        ic = 1
                    done = ready + 1
                    if done > completion:
                        completion = done
                    # -- indirect key load ----------------------------
                    if ic >= width:
                        it += 1.0
                        ic = 0
                    ic += 1
                    ready = it
                    if done > ready:
                        ready = done
                        it = ready
                        ic = 1
                    if ready <= last_mem:
                        ready = last_mem + 1.0
                        if ready > it:
                            it = ready
                            ic = 1
                    last_mem = ready
                    start = ready
                    if ind_addr >> block_bits not in l1_entries:
                        if last_miss > start:
                            start = last_miss
                    complete, stall, is_l1 = fast_load(ind_addr, start)
                    done = complete + load_use
                    if stall > 0:
                        done += trap
                        if done > it:
                            it = done
                        ic = 0
                        tlb_stall += stall
                    if not is_l1:
                        last_miss = done
                        if done > it:
                            it = done
                        ic = 0
                    lost = done - ready - 1.0
                    if lost > 0.0:
                        mem_stall += lost
                    if done > completion:
                        completion = done
                    cmp_dep = done

                # -- compare ALU --------------------------------------
                if ic >= width:
                    it += 1.0
                    ic = 0
                ic += 1
                ready = it
                if cmp_dep > ready:
                    ready = cmp_dep
                if key_done > ready:
                    ready = key_done
                if ready > it:
                    it = ready
                    ic = 1
                compare_done = ready + 1
                if compare_done > completion:
                    completion = compare_done

                # -- match branch (predicted) -------------------------
                if ic >= width:
                    it += 1.0
                    ic = 0
                ic += 1
                ready = it
                if compare_done > ready:
                    ready = compare_done
                    it = ready
                    ic = 1
                done = ready + 1
                if done > completion:
                    completion = done

                if payload_addr is not None:
                    # -- payload load on a match ----------------------
                    if ic >= width:
                        it += 1.0
                        ic = 0
                    ic += 1
                    ready = it
                    if compare_done > ready:
                        ready = compare_done
                        it = ready
                        ic = 1
                    if ready <= last_mem:
                        ready = last_mem + 1.0
                        if ready > it:
                            it = ready
                            ic = 1
                    last_mem = ready
                    start = ready
                    if payload_addr >> block_bits not in l1_entries:
                        if last_miss > start:
                            start = last_miss
                    complete, stall, is_l1 = fast_load(payload_addr, start)
                    done = complete + load_use
                    if stall > 0:
                        done += trap
                        if done > it:
                            it = done
                        ic = 0
                        tlb_stall += stall
                    if not is_l1:
                        last_miss = done
                        if done > it:
                            it = done
                        ic = 0
                    lost = done - ready - 1.0
                    if lost > 0.0:
                        mem_stall += lost
                    if done > completion:
                        completion = done

                # -- next-pointer load --------------------------------
                if ic >= width:
                    it += 1.0
                    ic = 0
                ic += 1
                ready = it
                if prev > ready:
                    ready = prev
                    it = ready
                    ic = 1
                if ready <= last_mem:
                    ready = last_mem + 1.0
                    if ready > it:
                        it = ready
                        ic = 1
                last_mem = ready
                start = ready
                if next_addr >> block_bits not in l1_entries:
                    if last_miss > start:
                        start = last_miss
                complete, stall, is_l1 = fast_load(next_addr, start)
                done = complete + load_use
                if stall > 0:
                    done += trap
                    if done > it:
                        it = done
                    ic = 0
                    tlb_stall += stall
                if not is_l1:
                    last_miss = done
                    if done > it:
                        it = done
                    ic = 0
                lost = done - ready - 1.0
                if lost > 0.0:
                    mem_stall += lost
                if done > completion:
                    completion = done
                prev = done

                # -- loop-exit branch ---------------------------------
                if ic >= width:
                    it += 1.0
                    ic = 0
                ic += 1
                ready = it
                if prev > ready:
                    ready = prev
                    it = ready
                    ic = 1
                done = ready + 1
                if exit_mispredicts and i == last:
                    stall_until = done + penalty
                    if stall_until > it:
                        it = stall_until
                        ic = 0
                if done > completion:
                    completion = done
        else:
            # -- empty bucket: header load + check + exit branch ------
            if ic >= width:
                it += 1.0
                ic = 0
            ic += 1
            ready = it
            if dep > ready:
                ready = dep
                it = ready
                ic = 1
            if ready <= last_mem:
                ready = last_mem + 1.0
                if ready > it:
                    it = ready
                    ic = 1
            last_mem = ready
            start = ready
            if empty_addr >> block_bits not in l1_entries:
                if last_miss > start:
                    start = last_miss
            complete, stall, is_l1 = fast_load(empty_addr, start)
            done = complete + load_use
            if stall > 0:
                done += trap
                if done > it:
                    it = done
                ic = 0
                tlb_stall += stall
            if not is_l1:
                last_miss = done
                if done > it:
                    it = done
                ic = 0
            lost = done - ready - 1.0
            if lost > 0.0:
                mem_stall += lost
            if done > completion:
                completion = done
            # sentinel-check ALU
            if ic >= width:
                it += 1.0
                ic = 0
            ic += 1
            ready = it
            if done > ready:
                ready = done
                it = ready
                ic = 1
            done = ready + 1
            if done > completion:
                completion = done
            # exit branch
            if ic >= width:
                it += 1.0
                ic = 0
            ic += 1
            ready = it
            if done > ready:
                ready = done
                it = ready
                ic = 1
            branch_done = ready + 1
            if exit_mispredicts:
                stall_until = branch_done + penalty
                if stall_until > it:
                    it = stall_until
                    ic = 0
            if branch_done > completion:
                completion = branch_done

        # -- trailer: loop-counter ALU + back-edge branch -------------
        if ic >= width:
            it += 1.0
            ic = 0
        ic += 1
        done = it + 1
        if done > completion:
            completion = done
        if ic >= width:
            it += 1.0
            ic = 0
        ic += 1
        ready = it
        if done > ready:
            ready = done
            it = ready
            ic = 1
        branch_done = ready + 1
        if branch_done > completion:
            completion = branch_done

        if probe_number == warmup - 1:
            measure_start = completion
        elif probe_number >= warmup:
            add_sample(completion - before)
            measured += 1

    return (completion, measure_start, measured, uops, loads, mem_stall,
            tlb_stall)
