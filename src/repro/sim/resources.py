"""Resource models.

Two families:

* **Analytic resources** (:class:`PipelinedResource`, :class:`OccupancyPool`)
  answer "when can this request be served?" immediately with a timestamp.
  They are used inside the memory hierarchy, where modelling every port
  arbitration as a process would be needlessly slow.  Correctness relies on
  the engine delivering requests in non-decreasing time order.

* **Process-blocking resources** (:class:`BoundedQueue`) suspend the calling
  process.  They model the 2-entry queues between Widx units (Figure 6).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List

from ..errors import SimulationError
from ..obs import Counter, Occupancy
from .engine import Engine
from .events import Event


class PipelinedResource:
    """``servers`` identical servers, each busy ``service`` cycles per grant.

    Models cache ports (2 ports, one access per port per cycle) and
    memory-controller bandwidth (one block transfer per ``service`` cycles).

    Requests may arrive *out of time order*: the out-of-order core models
    issue loads at dataflow-ready times, so a reservation far in the future
    must not block an older request (that ratchet artificially serialized
    multi-core runs).  Grants therefore fill gaps:

    * ``service == 1`` (ports): exact per-cycle occupancy counting — a
      request takes the first integer cycle at/after ``now`` with a free
      port.  O(1) amortized via a pruned occupancy map.
    * ``service > 1`` (controllers): per-server sorted busy-interval lists;
      a request takes the earliest gap of length ``service`` at/after
      ``now``.  Interval lists are pruned behind a sliding watermark.
    """

    __slots__ = ("service", "servers", "grants", "busy_cycles",
                 "_cycle_counts", "_prune_cursor", "_intervals", "_floors",
                 "_max_now", "_horizon")

    def __init__(self, servers: int, service: float) -> None:
        if servers < 1:
            raise SimulationError("resource needs at least one server")
        if service <= 0:
            raise SimulationError("service time must be positive")
        self.service = service
        self.servers = servers
        self.grants = Counter()
        self.busy_cycles = Counter(0.0)
        self._max_now = 0.0
        if service == 1.0:
            self._cycle_counts: dict = {}
            self._prune_cursor = 0
            self._horizon = 10_000.0
        else:
            self._intervals: List[List[tuple]] = [[] for _ in range(servers)]
            self._floors: List[float] = [0.0] * servers
            self._horizon = max(60.0 * service, 2_000.0)

    def describe(self) -> str:
        """One-line occupancy summary for diagnostic dumps."""
        return (f"PipelinedResource(servers={self.servers}, "
                f"service={self.service}, grants={self.grants}, "
                f"busy_cycles={self.busy_cycles})")

    def register_into(self, registry, prefix: str) -> None:
        """Publish grant/busy counters under ``prefix``."""
        registry.register(f"{prefix}.grants", self.grants)
        registry.register(f"{prefix}.busy_cycles", self.busy_cycles)

    def request(self, now: float) -> float:
        """Reserve the earliest capacity at or after ``now``; returns the
        grant (start-of-service) time."""
        if now > self._max_now:
            self._max_now = now
        self.grants.value += 1
        self.busy_cycles.value += self.service
        if self.service == 1.0:
            return self._request_cycle(now)
        return self._request_interval(now)

    # -- ports: exact per-cycle counting --------------------------------

    def _request_cycle(self, now: float) -> float:
        counts = self._cycle_counts
        cycle = int(now)
        if cycle < now:
            cycle += 1
        while counts.get(cycle, 0) >= self.servers:
            cycle += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        # Amortized pruning of cycles no request can reach anymore.
        cutoff = int(self._max_now - self._horizon)
        if self._prune_cursor < cutoff - 50_000:
            for old in range(self._prune_cursor, cutoff):
                counts.pop(old, None)
            self._prune_cursor = cutoff
        return float(cycle)

    # -- controllers: gap-filling busy intervals ------------------------

    def _request_interval(self, now: float) -> float:
        best_time = None
        best_server = 0
        for server in range(self.servers):
            candidate = self._earliest_gap(server, now)
            if best_time is None or candidate < best_time:
                best_time = candidate
                best_server = server
        self._occupy(best_server, best_time)
        return best_time

    def _earliest_gap(self, server: int, now: float) -> float:
        t = max(now, self._floors[server])
        for start, end in self._intervals[server]:
            if t + self.service <= start:
                break
            if end > t:
                t = end
        return t

    def _occupy(self, server: int, start: float) -> None:
        intervals = self._intervals[server]
        entry = (start, start + self.service)
        position = len(intervals)
        for index, (other_start, _other_end) in enumerate(intervals):
            if start < other_start:
                position = index
                break
        intervals.insert(position, entry)
        # Prune behind the watermark: nothing requests that far back.
        cutoff = self._max_now - self._horizon
        while intervals and intervals[0][1] <= cutoff:
            old = intervals.pop(0)
            if old[1] > self._floors[server]:
                self._floors[server] = old[1]


class OccupancyPool:
    """A pool of ``capacity`` slots held for caller-determined durations.

    Models MSHRs (a slot is held from miss issue until fill) and the TLB's
    in-flight translation limit.  Usage is two-phase::

        start = pool.acquire(now)     # earliest time a slot is free
        ...compute how long the slot is held...
        pool.release_at(start + duration)
    """

    __slots__ = ("capacity", "_releases", "usage", "acquisitions", "releases",
                 "wait_cycles", "tracer", "_track")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("pool needs at least one slot")
        self.capacity = capacity
        self._releases: List[float] = []
        self.usage = Occupancy(capacity)
        self.acquisitions = Counter()
        self.releases = Counter()
        self.wait_cycles = Counter(0.0)
        self.tracer = None
        self._track = ""

    @property
    def peak(self) -> int:
        """Highest number of simultaneously held slots observed."""
        return self.usage.peak

    def set_tracer(self, tracer, track: str) -> None:
        """Sample pool occupancy onto ``tracer`` under track ``track``."""
        self.tracer = tracer
        self._track = track

    @property
    def outstanding(self) -> int:
        """Slots acquired but never released — a leak if nonzero at end of
        run (every :meth:`acquire` must pair with a :meth:`release_at`)."""
        return self.acquisitions - self.releases

    def describe(self) -> str:
        """One-line occupancy summary for diagnostic dumps."""
        return (f"OccupancyPool(capacity={self.capacity}, peak={self.peak}, "
                f"acquisitions={self.acquisitions}, "
                f"outstanding={self.outstanding})")

    def occupancy(self, now: float) -> int:
        """Number of slots held at time ``now``."""
        self._expire(now)
        return len(self._releases)

    def _expire(self, now: float) -> None:
        releases = self._releases
        while releases and releases[0] <= now:
            heapq.heappop(releases)

    def acquire(self, now: float) -> float:
        """Claim a slot; returns the earliest time >= ``now`` it is usable.

        The caller MUST follow with :meth:`release_at`.
        """
        self._expire(now)
        releases = self._releases
        if len(releases) < self.capacity:
            start = now
        else:
            start = heapq.heappop(releases)
            self.wait_cycles.value += start - now
        self.acquisitions.value += 1
        if self.tracer is not None:
            self.tracer.sample(self._track, "held", start, len(releases) + 1)
        return start

    def release_at(self, when: float) -> None:
        """Mark the slot acquired by the latest :meth:`acquire` as held until ``when``."""
        self.releases.value += 1
        heapq.heappush(self._releases, when)
        usage = self.usage
        level = len(self._releases)
        usage.samples += 1
        usage.total += level
        if level > usage.peak:
            usage.peak = level

    def register_into(self, registry, prefix: str) -> None:
        """Publish pool counters and occupancy under ``prefix``."""
        registry.register(f"{prefix}.acquisitions", self.acquisitions)
        registry.register(f"{prefix}.releases", self.releases)
        registry.register(f"{prefix}.wait_cycles", self.wait_cycles)
        registry.register(f"{prefix}.usage", self.usage)


class BoundedQueue:
    """A FIFO with finite capacity; put/get suspend the calling process.

    Used for the dispatcher→walker and walker→producer queues.  ``put`` and
    ``get`` return :class:`Event` objects the caller must yield.
    """

    __slots__ = ("engine", "capacity", "name", "_items", "_getters",
                 "_putters", "total_puts", "depth", "closed", "tracer",
                 "_track")

    def __init__(self, engine: Engine, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise SimulationError("queue capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self.total_puts = Counter()
        self.depth = Occupancy(capacity)
        self.closed = False
        self.tracer = None
        self._track = ""

    def set_tracer(self, tracer, track: str) -> None:
        """Sample queue depth onto ``tracer`` under track ``track``."""
        self.tracer = tracer
        self._track = track

    def register_into(self, registry, prefix: str) -> None:
        """Publish put counter and depth occupancy under ``prefix``."""
        registry.register(f"{prefix}.total_puts", self.total_puts)
        registry.register(f"{prefix}.depth", self.depth)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        return len(self._putters)

    def describe(self) -> str:
        """One-line occupancy summary for diagnostic dumps."""
        return (f"BoundedQueue({self.name!r}, items={len(self._items)}/"
                f"{self.capacity}, getters={len(self._getters)}, "
                f"putters={len(self._putters)}, closed={self.closed})")

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires when it is accepted.

        Raises :class:`SimulationError` if the queue is closed: a producer
        must never silently drop items into a stream consumers have already
        seen end (the close/put race would otherwise lose tuples).
        """
        if self.closed:
            raise SimulationError(
                f"put() on closed queue {self.name!r}")
        event = Event()
        items = self._items
        if self._getters:
            # Hand off directly to a waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif len(items) < self.capacity:
            items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        self.total_puts.value += 1
        # Inlined self.depth.record(len(items)) — this is the hottest
        # queue-side accounting in the walker pipelines.
        depth = self.depth
        level = len(items)
        depth.samples += 1
        depth.total += level
        if level > depth.peak:
            depth.peak = level
        if self.tracer is not None:
            self.tracer.sample(self._track, "depth", self.engine.now, level)
        return event

    def get(self) -> Event:
        """Dequeue an item; the returned event carries the item as its value."""
        event = Event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, pending = self._putters.popleft()
                self._items.append(pending)
                put_event.succeed()
            event.succeed(item)
            if self.tracer is not None:
                self.tracer.sample(self._track, "depth", self.engine.now,
                                   len(self._items))
        elif self.closed:
            event.succeed(QUEUE_CLOSED)
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a parked get (fault salvage).

        When a consumer process is fail-stopped while blocked in
        ``get()``, its pending event must leave the waiting line —
        otherwise the next put would hand an item to a corpse.  Returns
        whether the event was found (False = it already fired or never
        parked here).
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True

    def restore(self, item: Any) -> None:
        """Put ``item`` back at the *front* of the queue (fault salvage).

        Used when a consumer died after dequeuing ``item`` but before
        doing any externally-visible work on it: the item returns to the
        head so a surviving consumer processes the stream in the original
        order.  Hands off directly if a consumer is already waiting; may
        transiently exceed capacity otherwise (salvage must not block).
        """
        if self._getters:
            self._getters.popleft().succeed(item)
            return
        self._items.appendleft(item)

    def close(self) -> None:
        """Signal end-of-stream: waiting and future getters receive
        QUEUE_CLOSED, and producers blocked in ``put()`` are woken with
        QUEUE_CLOSED too — their items are rejected, not silently parked
        forever on a queue nobody will drain.  Closing twice is a no-op.
        """
        if self.closed:
            return
        self.closed = True
        while self._getters:
            self._getters.popleft().succeed(QUEUE_CLOSED)
        while self._putters:
            put_event, _rejected = self._putters.popleft()
            put_event.succeed(QUEUE_CLOSED)


class _QueueClosed:
    """Sentinel delivered to getters of a closed, empty queue."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "QUEUE_CLOSED"


QUEUE_CLOSED = _QueueClosed()
