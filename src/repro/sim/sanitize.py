"""End-of-run invariant sanitizer.

A simulation can terminate "successfully" and still have produced garbage:
a leaked MSHR slot means a miss was issued whose fill never completed, an
undrained inter-unit queue means tuples were dispatched but never walked,
and a live process after the event queue empties means a unit silently
wedged.  These checks run after every measurement (wired into
:meth:`repro.widx.machine.WidxMachine.run` and consumed by the harness
runner) so a wedged run fails loudly instead of reporting bogus cycles.

All functions raise :class:`~repro.errors.InvariantViolation` on the first
violated invariant, naming the resource and its end state.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from ..errors import InvariantViolation
from .engine import Engine
from .resources import BoundedQueue, OccupancyPool


def check_engine_drained(engine: Engine) -> None:
    """The event queue must be empty and every process finished."""
    if engine.pending_events:
        raise InvariantViolation(
            f"engine finished with {engine.pending_events} pending event(s)")
    live = engine.live_processes()
    if live:
        names = ", ".join(repr(p.name) for p in live)
        raise InvariantViolation(
            f"engine finished with live process(es): {names}")


def check_queue_drained(queue: BoundedQueue) -> None:
    """A finished run must leave no items or blocked parties in a queue."""
    if len(queue):
        raise InvariantViolation(
            f"queue {queue.name!r} finished with {len(queue)} undrained "
            f"item(s)")
    if queue.waiting_getters or queue.waiting_putters:
        raise InvariantViolation(
            f"queue {queue.name!r} finished with {queue.waiting_getters} "
            f"blocked getter(s) and {queue.waiting_putters} blocked "
            f"putter(s)")


def check_pool_released(name: str, pool: OccupancyPool) -> None:
    """Every acquired slot must have been released (MSHR/TLB leak check)."""
    if pool.outstanding != 0:
        raise InvariantViolation(
            f"pool {name!r} leaked {pool.outstanding} slot(s): "
            f"{pool.acquisitions} acquired, {pool.releases} released")


def hierarchy_pools(hierarchy: Any) -> Iterable[Tuple[str, OccupancyPool]]:
    """The named occupancy pools of a memory hierarchy (duck-typed so the
    core-coupled and LLC-side paths both work)."""
    l1d = getattr(hierarchy, "l1d", None)
    if l1d is not None:
        yield f"{l1d.name} MSHRs", l1d.mshrs
    llc = getattr(hierarchy, "llc", None)
    if llc is not None:
        yield f"{llc.name} MSHRs", llc.mshrs
    tlb = getattr(hierarchy, "tlb", None)
    if tlb is not None:
        yield "TLB page walks", tlb.walks


def check_hierarchy(hierarchy: Any) -> None:
    """Leak-check every occupancy pool in a memory hierarchy."""
    for name, pool in hierarchy_pools(hierarchy):
        check_pool_released(name, pool)


def sanitize_run(engine: Engine,
                 queues: Iterable[Optional[BoundedQueue]] = (),
                 hierarchy: Any = None) -> None:
    """Full post-run sweep: engine drained, queues drained, no pool leaks."""
    check_engine_drained(engine)
    for queue in queues:
        if queue is not None:
            check_queue_drained(queue)
    if hierarchy is not None:
        check_hierarchy(hierarchy)
