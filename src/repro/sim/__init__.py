"""Discrete-event simulation kernel.

A deliberately small simpy-like engine: processes are Python generators that
yield either a cycle delay (int/float) or an :class:`Event` to wait on.  The
memory system and Widx units are co-simulated on one :class:`Engine` so that
shared-resource contention (L1 ports, MSHRs, memory-controller bandwidth) is
resolved in global time order.
"""

from .engine import Engine, Process
from .events import Event
from .resources import OccupancyPool, PipelinedResource, BoundedQueue
from .sampling import BatchStats, confidence_interval

__all__ = [
    "Engine",
    "Process",
    "Event",
    "OccupancyPool",
    "PipelinedResource",
    "BoundedQueue",
    "BatchStats",
    "confidence_interval",
]
