"""Deliberately naive reference engine for differential testing.

:class:`ReferenceEngine` executes the same process/event semantics as the
optimized :class:`~repro.sim.engine.Engine` with none of its machinery:

* the event queue is a plain Python list, and every dispatch does a full
  linear scan for the minimum ``(when, seq)`` entry — no heap, no
  same-cycle batch, no entry pool;
* every resume is a freshly allocated closure — no pooled ``_Entry``
  payload slots.

It subclasses :class:`Engine` so the failure model, deadlock detection,
watchdog hooks and diagnostics are *shared code*, and only the scheduling
data structure differs.  The differential tests in
``tests/sim/test_differential_engine.py`` run identical seeded process
graphs on both engines and assert the dispatch traces, final stats and
failure attribution match event-for-event; the benchmarks in
:mod:`repro.bench` use it as the speedup baseline.

Do not "improve" this class: its value is being obviously correct
(dispatch order is *literally* min-by-(when, seq)), not fast.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..errors import SimulationError, SimulationHang
from .engine import Engine, Process

#: (when, seq, thunk) — seq is unique, so comparisons never reach the thunk.
_RefEntry = Tuple[float, int, Any]


class ReferenceEngine(Engine):
    """Naive list-plus-min-scan engine, semantically identical to Engine."""

    def __init__(self, detect_deadlock: bool = True) -> None:
        super().__init__(detect_deadlock)
        self._ref_queue: List[_RefEntry] = []

    # -- scheduling: every path allocates a closure --------------------

    def _ref_schedule(self, when: float, thunk) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}")
        self._sequence += 1
        self._ref_queue.append((when, self._sequence, thunk))

    def schedule_at(self, when: float, callback) -> None:
        """Schedule ``callback`` at ``when`` on the naive list queue."""
        self._ref_schedule(when, callback)

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self._ref_schedule(self.now, lambda: process._resume(value, None))

    def _schedule_resume_exc(self, process: Process,
                             exc: Optional[BaseException]) -> None:
        self._ref_schedule(self.now, lambda: process._resume(None, exc))

    def _schedule_resume_at(self, process: Process, when: float,
                            value: Any) -> None:
        self._ref_schedule(when, lambda: process._resume(value, None))

    # -- dispatch: full min-scan per event ------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue by literal min-scan; same contract as
        :meth:`repro.sim.engine.Engine.run` (failures re-raised,
        deadlock detected, ``until`` stops early)."""
        queue = self._ref_queue
        while queue:
            best = 0
            for index in range(1, len(queue)):
                if (queue[index][0], queue[index][1]) < (queue[best][0],
                                                         queue[best][1]):
                    best = index
            when = queue[best][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            _when, _seq, thunk = queue.pop(best)
            self.now = when
            self.dispatched.value += 1
            if self.watchdog is not None:
                self.watchdog.check(self)
            thunk()
        self._raise_unhandled_failures()
        if self.detect_deadlock and self._active_processes > 0:
            raise SimulationHang(
                f"deadlock: {self._active_processes} live process(es) with "
                f"an empty event queue", self.diagnostics())
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._ref_queue)
