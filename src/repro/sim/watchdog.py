"""Progress watchdog for the discrete-event engine.

Long campaigns die three ways that an exception never reports:

* **deadlock** — live processes with an empty event queue.  The engine
  itself detects this at the end of :meth:`~repro.sim.engine.Engine.run`
  (no watchdog needed: it is visible in the final state).
* **livelock** — the queue never empties but ``now`` stops advancing
  (e.g. two processes endlessly handing a zero-delay event back and
  forth).  Only visible *while* running, so the watchdog counts events
  dispatched without a time advance.
* **blown budgets** — the run advances but will never finish within the
  campaign's patience.  The watchdog enforces optional simulated-cycle
  and wall-clock ceilings per measurement.

All three raise :class:`~repro.errors.SimulationHang` carrying the
engine's diagnostic dump (runnable processes, pending events, monitored
resource occupancy), so a wedged measurement fails loudly with enough
context to reproduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationHang
from .engine import Engine

#: Livelock threshold: the Widx machine dispatches bursts of same-cycle
#: events (one per unit step), but a bounded number — a million events
#: without the clock moving means nobody is getting anywhere.
DEFAULT_MAX_STALL_EVENTS = 1_000_000


@dataclass(frozen=True)
class WatchdogLimits:
    """Budgets a :class:`Watchdog` enforces (``None`` disables a check)."""

    max_stall_events: Optional[int] = DEFAULT_MAX_STALL_EVENTS
    max_cycles: Optional[float] = None        # simulated-cycle ceiling
    max_wall_seconds: Optional[float] = None  # wall-clock ceiling
    wall_check_interval: int = 4096           # events between clock reads

    def __post_init__(self) -> None:
        if self.max_stall_events is not None and self.max_stall_events < 1:
            raise ValueError("max_stall_events must be >= 1")
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive")
        if self.wall_check_interval < 1:
            raise ValueError("wall_check_interval must be >= 1")


DEFAULT_LIMITS = WatchdogLimits()


class Watchdog:
    """Per-run progress monitor; attach one per :class:`Engine` run.

    The engine calls :meth:`check` once per dispatched event.  The hot
    path is two comparisons; wall-clock reads are amortized over
    ``wall_check_interval`` events.
    """

    def __init__(self, limits: WatchdogLimits = DEFAULT_LIMITS) -> None:
        self.limits = limits
        self._last_now: Optional[float] = None
        self._stall_events = 0
        self._events_since_wall_check = 0
        self._started_wall: Optional[float] = None

    def attach(self, engine: Engine) -> "Watchdog":
        """Install on an engine (returns self for chaining)."""
        engine.watchdog = self
        return self

    def check(self, engine: Engine) -> None:
        """Called by the engine after popping each event."""
        limits = self.limits
        now = engine.now
        if limits.max_stall_events is not None:
            if self._last_now is None or now > self._last_now:
                self._last_now = now
                self._stall_events = 0
            else:
                self._stall_events += 1
                if self._stall_events > limits.max_stall_events:
                    self._hang(engine,
                               f"livelock: {self._stall_events} events "
                               f"dispatched with the clock stuck at t={now}")
        if limits.max_cycles is not None and now > limits.max_cycles:
            self._hang(engine,
                       f"cycle budget exceeded: t={now} > "
                       f"max_cycles={limits.max_cycles}")
        if limits.max_wall_seconds is not None:
            if self._started_wall is None:
                self._started_wall = time.monotonic()
            self._events_since_wall_check += 1
            if self._events_since_wall_check >= limits.wall_check_interval:
                self._events_since_wall_check = 0
                elapsed = time.monotonic() - self._started_wall
                if elapsed > limits.max_wall_seconds:
                    self._hang(engine,
                               f"wall-clock budget exceeded: {elapsed:.1f}s > "
                               f"max_wall_seconds={limits.max_wall_seconds}")

    def _hang(self, engine: Engine, reason: str) -> None:
        raise SimulationHang(reason, engine.diagnostics())
