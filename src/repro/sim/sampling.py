"""SMARTS/SimFlex-style statistical sampling support.

The paper measures indexing throughput by sampling detailed simulation
windows (100K-cycle warm-up, 50K-cycle measurement) and reporting 95%
confidence intervals.  We simulate scaled workloads end-to-end but still
report batch-mean confidence intervals so experiments can state the same
"95% confidence, <5% error" property.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

# Two-sided 97.5% quantiles of Student's t for small degrees of freedom;
# falls back to the normal quantile (1.96) for df > 30.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
    20: 2.086, 25: 2.060, 30: 2.042,
}


def _t_quantile(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T_TABLE:
        return _T_TABLE[df]
    for bound in sorted(_T_TABLE):
        if df <= bound:
            return _T_TABLE[bound]
    return 1.96


def confidence_interval(samples: Sequence[float],
                        confidence: float = 0.95) -> Tuple[float, float]:
    """Return (mean, half-width) of a t-based confidence interval.

    Only ``confidence=0.95`` uses the exact t table; other levels fall back
    to the normal approximation scaled from 1.96.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    mean = sum(samples) / n
    if n == 1:
        return mean, float("inf")
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    t = _t_quantile(n - 1)
    if confidence != 0.95:
        t *= _normal_quantile(confidence) / 1.96
    half_width = t * math.sqrt(variance / n)
    return mean, half_width


def _normal_quantile(confidence: float) -> float:
    """Rough two-sided normal quantile for the given confidence level."""
    table = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}
    if confidence in table:
        return table[confidence]
    # Linear interpolation over the small table; adequate for reporting.
    points = sorted(table.items())
    for (c0, z0), (c1, z1) in zip(points, points[1:]):
        if c0 <= confidence <= c1:
            frac = (confidence - c0) / (c1 - c0)
            return z0 + frac * (z1 - z0)
    raise ValueError(f"unsupported confidence level {confidence}")


@dataclass
class BatchStats:
    """Batch-means accumulator for throughput measurements.

    Feed per-tuple (or per-window) costs; read back the mean and 95% CI over
    batch means, mimicking SMARTS sampling over measurement windows.
    """

    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self._current: List[float] = []
        self._batch_means: List[float] = []
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        self._current.append(value)
        if len(self._current) == self.batch_size:
            self._batch_means.append(sum(self._current) / self.batch_size)
            self._current.clear()

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples recorded")
        return self.total / self.count

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """(mean of batch means, CI half-width); needs >= 2 full batches."""
        batches = list(self._batch_means)
        if self._current:
            batches.append(sum(self._current) / len(self._current))
        return confidence_interval(batches, confidence)

    def relative_error(self) -> float:
        """CI half-width as a fraction of the mean (the paper reports <5%)."""
        mean, half = self.interval()
        if mean == 0:
            return 0.0
        return half / abs(mean)
