"""Events: one-shot synchronization points processes can wait on."""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Event:
    """A one-shot event carrying an optional value.

    Processes wait on an event by yielding it; the engine resumes every
    waiter when the event is succeeded.  Succeeding an event twice is an
    error — events are single-use, like simpy's.

    An event can alternatively *fail* with an exception: waiters then have
    the exception thrown into their generator at the yield point, so a
    process can catch a child's failure with an ordinary try/except.
    """

    __slots__ = ("_callbacks", "_triggered", "value", "failed", "exception")

    def __init__(self) -> None:
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self.value: Any = None
        self.failed = False
        self.exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed, delivering ``exception`` to waiters."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self.failed = True
        self.exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` on trigger (immediately if already fired)."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class CompositeEvent(Event):
    """An event that fires when all of its children have fired.

    If any child fails, the composite fails with that child's exception
    (first failure wins); waiters see the failure immediately rather than
    blocking on children that will never matter.
    """

    __slots__ = ("_pending",)

    def __init__(self, children: List[Event]) -> None:
        super().__init__()
        self._pending = len(children)
        if self._pending == 0:
            self.succeed()
            return
        for child in children:
            child.add_callback(self._child_done)

    def _child_done(self, child: Event) -> None:
        if self.triggered:
            return
        if child.failed:
            self.fail(child.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed()
